//! Communicators: point-to-point messaging, collectives, splitting.

use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;

use crate::datatype::{from_bytes, to_bytes, MpiData};
use crate::world::{Envelope, WorldInner};
use crate::Source;

/// Per-handle traffic counters (this rank, this communicator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes sent through this handle.
    pub bytes_sent: u64,
    /// Bytes received through this handle.
    pub bytes_received: u64,
    /// Messages sent through this handle.
    pub messages_sent: u64,
    /// Messages received through this handle.
    pub messages_received: u64,
}

/// A communicator handle owned by one rank.
///
/// Mirrors MPI semantics: every rank of the communicator must call
/// collectives in the same order; point-to-point messages match on
/// (communicator, source, tag) with FIFO ordering per (source, tag) pair.
pub struct Comm {
    world: Arc<WorldInner>,
    /// Context id isolating this communicator's traffic.
    ctx: u64,
    /// This rank within the communicator.
    rank: usize,
    /// Communicator rank → world rank.
    members: Arc<Vec<usize>>,
    /// Collective sequence number (same progression on every member).
    coll_seq: Cell<u64>,
    /// Child-context allocation counter (same progression on every
    /// member; see [`derive_ctx`]).
    ctx_alloc: Cell<u64>,
    traffic: Cell<Traffic>,
}

/// Internal tag space: bit 63 marks collective-internal messages.
const COLLECTIVE_BIT: u64 = 1 << 63;

fn coll_tag(seq: u64, phase: u64) -> u64 {
    debug_assert!(phase < 256);
    COLLECTIVE_BIT | (seq << 8) | phase
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic child-context derivation: mixes the parent context, the
/// parent's allocation index (how many `split`/`dup` calls preceded this
/// one — synchronized by collective calling order) and the branch (color
/// index within a split; 0 for `dup`).
///
/// Every member computes the same value without any shared counter, which
/// is what makes context allocation work across *process* boundaries: a
/// socket world has no shared memory to host the old global `next_ctx`,
/// and per-process counters would drift apart as soon as disjoint
/// sub-communicators allocated children independently.
fn derive_ctx(parent: u64, alloc_idx: u64, branch: u64) -> u64 {
    splitmix64(splitmix64(parent ^ splitmix64(alloc_idx.wrapping_add(1))).wrapping_add(branch))
}

impl Comm {
    pub(crate) fn new_world(world: Arc<WorldInner>, rank: usize, members: Arc<Vec<usize>>) -> Self {
        Comm {
            world,
            ctx: 0,
            rank,
            members,
            coll_seq: Cell::new(0),
            ctx_alloc: Cell::new(0),
            traffic: Cell::new(Traffic::default()),
        }
    }

    /// This rank's id within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Traffic this handle has generated so far.
    pub fn traffic(&self) -> Traffic {
        self.traffic.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    fn post(&self, dest: usize, tag: u64, payload: Bytes) {
        let world_rank = self.members[dest];
        let mut t = self.traffic.get();
        t.bytes_sent += payload.len() as u64;
        t.messages_sent += 1;
        self.traffic.set(t);
        self.world
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.world.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.world.post(
            world_rank,
            Envelope {
                ctx: self.ctx,
                src: self.rank,
                tag,
                payload,
            },
        );
    }

    fn note_received(&self, payload: &Bytes) {
        let mut t = self.traffic.get();
        t.bytes_received += payload.len() as u64;
        t.messages_received += 1;
        self.traffic.set(t);
    }

    /// Dead-rank check for plain (non-degraded-aware) receives: a receive
    /// that can never be satisfied must fail loudly instead of
    /// deadlocking. For a specific source that means the source itself is
    /// dead; for an any-source receive *any* dead member fails the call,
    /// because collectives built on any-source gathers (e.g. `barrier`)
    /// would otherwise wait forever for the dead member's contribution.
    /// Degraded-mode servers use [`Comm::recv_any_or_death`] instead.
    fn check_dead(&self, dead: &std::collections::BTreeSet<usize>, src: Source) {
        if dead.is_empty() {
            return;
        }
        match src {
            Source::Rank(r) => {
                if dead.contains(&self.members[r]) {
                    panic!("mini-mpi: receive failed: rank {r} died");
                }
            }
            Source::Any => {
                for (r, w) in self.members.iter().enumerate() {
                    if r != self.rank && dead.contains(w) {
                        panic!("mini-mpi: receive failed: rank {r} died (any-source receive)");
                    }
                }
            }
        }
    }

    fn wait_match(&self, src: Source, tag: u64) -> (usize, Bytes) {
        let mailbox = self.world.mailbox(self.members[self.rank]);
        let mut st = mailbox.state.lock();
        loop {
            if let Some((from, payload)) = st.pop(self.ctx, src, tag) {
                drop(st);
                self.note_received(&payload);
                return (from, payload);
            }
            // A dead peer process poisons the mailbox: fail every receive
            // loudly (MPI-abort semantics) instead of deadlocking on a
            // message that can never arrive.
            if let Some(reason) = st.poisoned.clone() {
                drop(st);
                panic!("mini-mpi: receive failed: {reason}");
            }
            // Buffered messages (above) win over death: anything already
            // delivered is still receivable after the sender died.
            self.check_dead(&st.dead, src);
            mailbox.arrived.wait(&mut st);
        }
    }

    fn try_match(&self, src: Source, tag: u64) -> Option<(usize, Bytes)> {
        let mailbox = self.world.mailbox(self.members[self.rank]);
        let mut st = mailbox.state.lock();
        if let Some((from, payload)) = st.pop(self.ctx, src, tag) {
            drop(st);
            self.note_received(&payload);
            return Some((from, payload));
        }
        if let Some(reason) = st.poisoned.clone() {
            drop(st);
            panic!("mini-mpi: receive failed: {reason}");
        }
        None
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send a typed slice to `dest` with a user tag. Eager-buffered: never
    /// blocks (the "network" is process memory).
    pub fn send<T: MpiData>(&self, dest: usize, tag: u32, data: &[T]) {
        assert!(
            dest < self.size(),
            "send to rank {dest} in a {}-rank communicator",
            self.size()
        );
        self.post(dest, tag as u64, to_bytes(data));
    }

    /// Receive a message matching `(src, tag)`; blocks until one arrives.
    pub fn recv<T: MpiData>(&self, src: Source, tag: u32) -> Vec<T> {
        self.recv_with_source(src, tag).0
    }

    /// Like [`Comm::recv`], additionally reporting the actual source rank
    /// (useful with [`Source::Any`]).
    pub fn recv_with_source<T: MpiData>(&self, src: Source, tag: u32) -> (Vec<T>, usize) {
        let (from, payload) = self.wait_match(src, tag as u64);
        (from_bytes(&payload), from)
    }

    /// Non-blocking receive: `Some((data, source))` when a matching
    /// message is already queued, `None` otherwise (MPI_Iprobe+recv).
    /// Used by servers that multiplex several message kinds without
    /// dedicating a thread per tag.
    pub fn try_recv<T: MpiData>(&self, src: Source, tag: u32) -> Option<(Vec<T>, usize)> {
        let (from, payload) = self.try_match(src, tag as u64)?;
        Some((from_bytes(&payload), from))
    }

    /// Communicator-relative ranks currently known dead (heartbeat /
    /// membership layer), ascending. Empty in worlds without heartbeats
    /// and in thread worlds.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let dead = self.world.mailbox(self.members[self.rank]).dead_snapshot();
        if dead.is_empty() {
            return Vec::new();
        }
        self.members
            .iter()
            .enumerate()
            .filter_map(|(r, w)| dead.contains(w).then_some(r))
            .collect()
    }

    /// Degraded-mode any-source receive: block until either a matching
    /// message arrives (`Ok((data, source))`, exactly like
    /// [`Comm::recv_with_source`] with [`Source::Any`]) or a member *not
    /// already listed in `known_dead`* is declared dead
    /// (`Err(newly_dead)`, communicator-relative ranks, ascending).
    ///
    /// Messages already delivered always win over a death report, so a
    /// dead rank's in-flight traffic is fully drained before the caller
    /// learns of the death. This is the receive primitive for servers
    /// that must keep serving survivors — a plain any-source [`Comm::recv`]
    /// fails loudly on the first death instead.
    pub fn recv_any_or_death<T: MpiData>(
        &self,
        tag: u32,
        known_dead: &[usize],
    ) -> Result<(Vec<T>, usize), Vec<usize>> {
        let mailbox = self.world.mailbox(self.members[self.rank]);
        let mut st = mailbox.state.lock();
        loop {
            if let Some((from, payload)) = st.pop(self.ctx, Source::Any, tag as u64) {
                drop(st);
                self.note_received(&payload);
                return Ok((from_bytes(&payload), from));
            }
            if let Some(reason) = st.poisoned.clone() {
                drop(st);
                panic!("mini-mpi: receive failed: {reason}");
            }
            let newly: Vec<usize> = self
                .members
                .iter()
                .enumerate()
                .filter(|&(r, w)| r != self.rank && st.dead.contains(w) && !known_dead.contains(&r))
                .map(|(r, _)| r)
                .collect();
            if !newly.is_empty() {
                return Err(newly);
            }
            mailbox.arrived.wait(&mut st);
        }
    }

    // ------------------------------------------------------------------
    // Collectives
    //
    // All collectives are built from eager p2p messages with internal tags
    // derived from a per-communicator sequence number, so consecutive
    // collectives cannot cross-talk even when ranks drift. Reductions fold
    // contributions in rank order at the root — O(p) messages instead of a
    // binomial tree, chosen for bit-level determinism (floating-point
    // reductions reproduce exactly run to run, which the experiment harness
    // relies on).
    // ------------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let seq = self.next_seq();
        // Gather a token at rank 0, then release everyone.
        if self.rank == 0 {
            for _ in 1..self.size() {
                let _ = self.wait_match(Source::Any, coll_tag(seq, 0));
            }
            for r in 1..self.size() {
                self.post(r, coll_tag(seq, 1), Bytes::new());
            }
        } else {
            self.post(0, coll_tag(seq, 0), Bytes::new());
            let _ = self.wait_match(Source::Rank(0), coll_tag(seq, 1));
        }
    }

    /// Broadcast `data` from `root`; every rank returns the payload.
    /// Binomial-tree dissemination (log₂ p rounds).
    pub fn bcast<T: MpiData>(&self, root: usize, data: &[T]) -> Vec<T> {
        let seq = self.next_seq();
        let p = self.size();
        // Rotate so the root is virtual rank 0.
        let vrank = (self.rank + p - root) % p;
        let payload: Bytes = if self.rank == root {
            to_bytes(data)
        } else {
            // Receive from virtual parent.
            let parent_v = vrank & (vrank - 1); // clear lowest set bit
            let parent = (parent_v + root) % p;
            let (_, payload) = self.wait_match(Source::Rank(parent), coll_tag(seq, 0));
            payload
        };
        // Forward to virtual children: vrank | (1 << k) for k above our
        // lowest set bit (or all bits if we are the root).
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        for k in (0..lowest).rev() {
            let child_v = vrank | (1usize << k);
            if child_v < p && child_v != vrank {
                let child = (child_v + root) % p;
                self.post(child, coll_tag(seq, 0), payload.clone());
            }
        }
        from_bytes(&payload)
    }

    /// Element-wise reduction to `root`. Returns `Some(result)` on the root,
    /// `None` elsewhere. `op(acc, x)` folds one element.
    pub fn reduce<T: MpiData>(
        &self,
        root: usize,
        contribution: &[T],
        op: impl Fn(&mut T, T),
    ) -> Option<Vec<T>> {
        let seq = self.next_seq();
        if self.rank == root {
            let mut acc = contribution.to_vec();
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                let (_, payload) = self.wait_match(Source::Rank(r), coll_tag(seq, 0));
                let other: Vec<T> = from_bytes(&payload);
                assert_eq!(
                    other.len(),
                    acc.len(),
                    "reduce contribution length mismatch"
                );
                for (a, x) in acc.iter_mut().zip(other) {
                    op(a, x);
                }
            }
            Some(acc)
        } else {
            self.post(root, coll_tag(seq, 0), to_bytes(contribution));
            None
        }
    }

    /// Reduction whose result every rank receives.
    pub fn allreduce<T: MpiData>(&self, contribution: &[T], op: impl Fn(&mut T, T)) -> Vec<T> {
        let reduced = self.reduce(0, contribution, op);
        self.bcast(0, reduced.as_deref().unwrap_or(&[]))
    }

    /// Gather variable-length contributions at `root` (MPI_Gatherv).
    /// Returns `Some(per-rank vectors)` on the root, `None` elsewhere.
    pub fn gather<T: MpiData>(&self, root: usize, contribution: &[T]) -> Option<Vec<Vec<T>>> {
        let seq = self.next_seq();
        if self.rank == root {
            let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = contribution.to_vec();
            #[allow(clippy::needless_range_loop)] // skips `root`, fills by rank
            for r in 0..self.size() {
                if r == root {
                    continue;
                }
                let (_, payload) = self.wait_match(Source::Rank(r), coll_tag(seq, 0));
                out[r] = from_bytes(&payload);
            }
            Some(out)
        } else {
            self.post(root, coll_tag(seq, 0), to_bytes(contribution));
            None
        }
    }

    /// Gather whose result every rank receives (MPI_Allgatherv).
    pub fn all_gather<T: MpiData>(&self, contribution: &[T]) -> Vec<Vec<T>> {
        let gathered = self.gather(0, contribution);
        // Broadcast lengths, then the flattened payload.
        let (lens, flat): (Vec<u64>, Vec<T>) = match gathered {
            Some(parts) => {
                let lens = parts.iter().map(|p| p.len() as u64).collect();
                let flat = parts.into_iter().flatten().collect();
                (lens, flat)
            }
            None => (Vec::new(), Vec::new()),
        };
        let lens = self.bcast(0, &lens);
        let flat = self.bcast(0, &flat);
        let mut out = Vec::with_capacity(lens.len());
        let mut offset = 0usize;
        for l in lens {
            let l = l as usize;
            out.push(flat[offset..offset + l].to_vec());
            offset += l;
        }
        out
    }

    /// Scatter per-rank chunks from `root` (MPI_Scatterv). The root passes
    /// `Some(chunks)` (one per rank), everyone else `None`; each rank
    /// returns its chunk.
    pub fn scatter<T: MpiData>(&self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        let seq = self.next_seq();
        if self.rank == root {
            let chunks = chunks.expect("root must provide scatter chunks");
            assert_eq!(
                chunks.len(),
                self.size(),
                "scatter needs one chunk per rank"
            );
            let mut own = Vec::new();
            for (r, chunk) in chunks.into_iter().enumerate() {
                if r == self.rank {
                    own = chunk;
                } else {
                    self.post(r, coll_tag(seq, 0), to_bytes(&chunk));
                }
            }
            own
        } else {
            let (_, payload) = self.wait_match(Source::Rank(root), coll_tag(seq, 0));
            from_bytes(&payload)
        }
    }

    /// Personalized all-to-all exchange (MPI_Alltoallv): `chunks[j]` goes to
    /// rank `j`; the result's element `i` came from rank `i`.
    pub fn alltoall<T: MpiData>(&self, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            chunks.len(),
            self.size(),
            "alltoall needs one chunk per rank"
        );
        let seq = self.next_seq();
        let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
        for (j, chunk) in chunks.into_iter().enumerate() {
            if j == self.rank {
                out[j] = chunk;
            } else {
                self.post(j, coll_tag(seq, 0), to_bytes(&chunk));
            }
        }
        #[allow(clippy::needless_range_loop)] // skips `self.rank`, fills by rank
        for i in 0..self.size() {
            if i == self.rank {
                continue;
            }
            let (_, payload) = self.wait_match(Source::Rank(i), coll_tag(seq, 0));
            out[i] = from_bytes(&payload);
        }
        out
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Partition the communicator by `color`; ranks passing `None` opt out
    /// (MPI_UNDEFINED) and receive `None`. Within a color, new ranks are
    /// ordered by `(key, old rank)`.
    ///
    /// This is how Damaris carves the "clients" communicator and the
    /// "dedicated cores" communicator out of MPI_COMM_WORLD.
    pub fn split(&self, color: Option<u64>, key: i64) -> Option<Comm> {
        // Every member consumes one allocation index, whether or not it
        // participates — calling order keeps the counters in lockstep.
        let alloc_idx = self.ctx_alloc.get();
        self.ctx_alloc.set(alloc_idx + 1);
        // Gather (color+1 (0 = undefined), key) pairs at rank 0.
        let encoded = [color.map_or(0, |c| c + 1) as i64, key, self.rank as i64];
        let gathered = self.gather(0, &encoded);
        // Rank 0 computes the grouping and scatters (ctx, new_rank,
        // member world ranks) to each rank; opted-out ranks get ctx = 0.
        let assignment: Vec<i64> = if let Some(rows) = gathered {
            let mut per_rank: Vec<Vec<i64>> = vec![Vec::new(); self.size()];
            // Distinct colors in ascending order get distinct derived
            // contexts (branch = color index).
            let mut colors: Vec<u64> = rows
                .iter()
                .filter(|r| r[0] != 0)
                .map(|r| r[0] as u64)
                .collect();
            colors.sort_unstable();
            colors.dedup();
            for (ci, &color) in colors.iter().enumerate() {
                let ctx = derive_ctx(self.ctx, alloc_idx, ci as u64);
                let mut members: Vec<(i64, usize)> = rows
                    .iter()
                    .filter(|r| r[0] as u64 == color)
                    .map(|r| (r[1], r[2] as usize))
                    .collect();
                members.sort_unstable();
                let member_old_ranks: Vec<i64> = members.iter().map(|&(_, r)| r as i64).collect();
                for (new_rank, &(_, old_rank)) in members.iter().enumerate() {
                    let mut msg = vec![ctx as i64, new_rank as i64];
                    msg.extend_from_slice(&member_old_ranks);
                    per_rank[old_rank] = msg;
                }
            }
            for row in per_rank.iter_mut() {
                if row.is_empty() {
                    row.push(0); // undefined marker
                }
            }
            self.scatter(0, Some(per_rank))
        } else {
            self.scatter(0, None)
        };

        if assignment[0] == 0 {
            return None;
        }
        let ctx = assignment[0] as u64;
        let new_rank = assignment[1] as usize;
        // Member list maps new communicator ranks to *parent* communicator
        // ranks; translate to world ranks through our own member table.
        let members: Vec<usize> = assignment[2..]
            .iter()
            .map(|&r| self.members[r as usize])
            .collect();
        Some(Comm {
            world: self.world.clone(),
            ctx,
            rank: new_rank,
            members: Arc::new(members),
            coll_seq: Cell::new(0),
            ctx_alloc: Cell::new(0),
            traffic: Cell::new(Traffic::default()),
        })
    }

    /// Duplicate the communicator into a fresh context (MPI_Comm_dup):
    /// same ranks, isolated traffic. Communication-free: every member
    /// derives the same child context from the shared allocation index.
    pub fn dup(&self) -> Comm {
        let alloc_idx = self.ctx_alloc.get();
        self.ctx_alloc.set(alloc_idx + 1);
        Comm {
            world: self.world.clone(),
            ctx: derive_ctx(self.ctx, alloc_idx, 0),
            rank: self.rank,
            members: self.members.clone(),
            coll_seq: Cell::new(0),
            ctx_alloc: Cell::new(0),
            traffic: Cell::new(Traffic::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Source, World};

    #[test]
    fn ring_pass() {
        let out = World::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, &[comm.rank() as u32]);
            comm.recv::<u32>(Source::Rank(prev), 7)[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[10u8]);
                comm.send(1, 2, &[20u8]);
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                assert_eq!(comm.recv::<u8>(Source::Rank(0), 2), vec![20]);
                assert_eq!(comm.recv::<u8>(Source::Rank(0), 1), vec![10]);
            }
        });
    }

    #[test]
    fn any_source_reports_sender() {
        World::run(3, |comm| {
            if comm.rank() == 0 {
                let mut froms = Vec::new();
                for _ in 0..2 {
                    let (_, from) = comm.recv_with_source::<u8>(Source::Any, 0);
                    froms.push(from);
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![1, 2]);
            } else {
                comm.send(0, 0, &[comm.rank() as u8]);
            }
        });
    }

    #[test]
    fn fifo_per_source_and_tag() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 3, &[i]);
                }
            } else {
                for i in 0..10u32 {
                    assert_eq!(comm.recv::<u32>(Source::Rank(0), 3), vec![i]);
                }
            }
        });
    }

    #[test]
    fn out_of_order_tag_stress_10k() {
        // Satellite fix regression test: rank 1 receives 10 000 messages in
        // the *reverse* of their send order, so at peak ~10 000 unmatched
        // envelopes sit in the mailbox. With the old flat-Vec mailbox every
        // wakeup rescanned all of them (O(n²)); the keyed mailbox pops each
        // in O(log n) index maintenance. The test asserts correctness and
        // must finish quickly enough for CI either way.
        const N: u32 = 10_000;
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for tag in 0..N {
                    comm.send(1, tag, &[tag as u64]);
                }
                // Interleaved any-source block at a tag above the burst.
                comm.send(1, N + 1, &[u64::from(N) + 1]);
            } else {
                // Drain in reverse tag order: worst case for a scan-based
                // mailbox, every receive is the last match in the queue.
                for tag in (0..N).rev() {
                    assert_eq!(comm.recv::<u64>(Source::Rank(0), tag), vec![tag as u64]);
                }
                let (v, src) = comm.recv_with_source::<u64>(Source::Any, N + 1);
                assert_eq!((v, src), (vec![u64::from(N) + 1], 0));
            }
        });
    }

    #[test]
    fn try_recv_nonblocking() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                assert!(comm.try_recv::<u8>(Source::Any, 9).is_none());
                comm.send(1, 5, &[42u8]);
                // Handshake so the try_recv below observes the message.
                let _: Vec<u8> = comm.recv(Source::Rank(1), 6);
            } else {
                let data = loop {
                    if let Some((data, src)) = comm.try_recv::<u8>(Source::Rank(0), 5) {
                        assert_eq!(src, 0);
                        break data;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(data, vec![42]);
                comm.send(0, 6, &[1u8]);
            }
        });
    }

    #[test]
    fn bcast_various_roots_and_sizes() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let out = World::run(p, move |comm| {
                    let data: Vec<u64> = if comm.rank() == root {
                        vec![42, root as u64]
                    } else {
                        vec![]
                    };
                    comm.bcast(root, &data)
                });
                for r in out {
                    assert_eq!(r, vec![42, root as u64]);
                }
            }
        }
    }

    #[test]
    fn reduce_sum_matches_reference() {
        let out = World::run(6, |comm| {
            let contrib = vec![comm.rank() as u64, 1];
            comm.reduce(2, &contrib, |a, b| *a += b)
        });
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(res.as_ref().unwrap(), &vec![1 + 2 + 3 + 4 + 5, 6]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = World::run(5, |comm| {
            let contrib = vec![(comm.rank() as i64) * (-1i64).pow(comm.rank() as u32)];
            comm.allreduce(&contrib, |a, b| *a = (*a).max(b))
        });
        for r in out {
            assert_eq!(r, vec![4]); // max of [0, -1, 2, -3, 4]
        }
    }

    #[test]
    fn gather_variable_lengths() {
        let out = World::run(4, |comm| {
            let contrib: Vec<u32> = (0..comm.rank() as u32).collect();
            comm.gather(0, &contrib)
        });
        let root = out[0].as_ref().unwrap();
        assert_eq!(root[0], Vec::<u32>::new());
        assert_eq!(root[3], vec![0, 1, 2]);
        assert!(out[1].is_none());
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        let out = World::run(3, |comm| comm.all_gather(&[comm.rank() as u16; 2]));
        for r in out {
            assert_eq!(r, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
        }
    }

    #[test]
    fn scatter_chunks() {
        let out = World::run(3, |comm| {
            let chunks = if comm.rank() == 1 {
                Some(vec![vec![0u8], vec![10, 11], vec![20, 21, 22]])
            } else {
                None
            };
            comm.scatter(1, chunks)
        });
        assert_eq!(out, vec![vec![0], vec![10, 11], vec![20, 21, 22]]);
    }

    #[test]
    fn alltoall_transpose() {
        let out = World::run(3, |comm| {
            // Rank r sends value 10*r + j to rank j.
            let chunks: Vec<Vec<u32>> = (0..3)
                .map(|j| vec![10 * comm.rank() as u32 + j as u32])
                .collect();
            comm.alltoall(chunks)
        });
        assert_eq!(out[0], vec![vec![0], vec![10], vec![20]]);
        assert_eq!(out[1], vec![vec![1], vec![11], vec![21]]);
        assert_eq!(out[2], vec![vec![2], vec![12], vec![22]]);
    }

    #[test]
    fn split_even_odd() {
        let out = World::run(6, |comm| {
            let sub = comm.split(Some((comm.rank() % 2) as u64), 0).unwrap();
            // Sum of world ranks within my parity group.
            let s = sub.allreduce(&[comm.rank() as u64], |a, b| *a += b);
            (sub.rank(), sub.size(), s[0])
        });
        // Evens: 0+2+4=6; odds: 1+3+5=9.
        assert_eq!(out[0], (0, 3, 6));
        assert_eq!(out[1], (0, 3, 9));
        assert_eq!(out[4], (2, 3, 6));
        assert_eq!(out[5], (2, 3, 9));
    }

    #[test]
    fn split_with_undefined_members() {
        let out = World::run(4, |comm| {
            let color = if comm.rank() == 3 { None } else { Some(0) };
            comm.split(color, -(comm.rank() as i64))
                .map(|sub| (sub.rank(), sub.size()))
        });
        // Key is -rank, so new rank order is reversed: world 2→0, 1→1, 0→2.
        assert_eq!(out[0], Some((2, 3)));
        assert_eq!(out[1], Some((1, 3)));
        assert_eq!(out[2], Some((0, 3)));
        assert_eq!(out[3], None);
    }

    #[test]
    fn dup_isolates_traffic() {
        World::run(2, |comm| {
            let dup = comm.dup();
            if comm.rank() == 0 {
                comm.send(1, 5, &[1u8]);
                dup.send(1, 5, &[2u8]);
            } else {
                // Receive from the dup first: tags match but contexts differ,
                // so we must get the dup message (2), not the comm one (1).
                assert_eq!(dup.recv::<u8>(Source::Rank(0), 5), vec![2]);
                assert_eq!(comm.recv::<u8>(Source::Rank(0), 5), vec![1]);
            }
        });
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        World::run(8, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 8 increments.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn traffic_counters_track_p2p() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0u64; 16]);
            } else {
                let _: Vec<u64> = comm.recv(Source::Rank(0), 0);
            }
            comm.traffic()
        });
        assert_eq!(out[0].bytes_sent, 128);
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[1].bytes_received, 128);
        assert_eq!(out[1].messages_received, 1);
    }

    #[test]
    fn consecutive_collectives_do_not_crosstalk() {
        let out = World::run(4, |comm| {
            let a = comm.allreduce(&[1u32], |x, y| *x += y);
            let b = comm.allreduce(&[2u32], |x, y| *x += y);
            let c = comm.bcast(0, &[comm.rank() as u32]);
            (a[0], b[0], c[0])
        });
        for r in out {
            assert_eq!(r, (4, 8, 0));
        }
    }
}
