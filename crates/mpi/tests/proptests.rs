//! Property tests: collectives agree with sequential reference
//! computations for arbitrary inputs and world sizes.

use mini_mpi::World;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// allreduce(+) equals the element-wise sum of all contributions.
    #[test]
    fn allreduce_sum_matches_reference(
        size in 1usize..9,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Deterministic per-rank contributions derived from the seed.
        let contrib = move |rank: usize| -> Vec<i64> {
            (0..len)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add((rank * 131 + i) as u64);
                    (x >> 17) as i64 % 1000 - 500
                })
                .collect()
        };
        let expected: Vec<i64> = (0..size).map(contrib).fold(vec![0i64; len], |mut acc, v| {
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
            acc
        });
        let results = World::run(size, move |comm| {
            comm.allreduce(&contrib(comm.rank()), |a, b| *a += b)
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// alltoall is a transpose: out[i][..] on rank j == in[j][..] on rank i.
    #[test]
    fn alltoall_is_transpose(size in 1usize..7, seed in any::<u32>()) {
        let cell = move |from: usize, to: usize| -> Vec<u32> {
            vec![seed ^ (from * 100 + to) as u32; (from + to) % 3 + 1]
        };
        let results = World::run(size, move |comm| {
            let chunks: Vec<Vec<u32>> = (0..size).map(|to| cell(comm.rank(), to)).collect();
            comm.alltoall(chunks)
        });
        for (to, received) in results.iter().enumerate() {
            for (from, payload) in received.iter().enumerate() {
                prop_assert_eq!(payload, &cell(from, to), "cell {}→{}", from, to);
            }
        }
    }

    /// bcast delivers the root's payload bit-exactly to every rank.
    #[test]
    fn bcast_delivers_everywhere(
        size in 1usize..9,
        root_pick in any::<usize>(),
        payload in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let root = root_pick % size;
        let expected = payload.clone();
        let results = World::run(size, move |comm| {
            let data = if comm.rank() == root { payload.clone() } else { Vec::new() };
            comm.bcast(root, &data)
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// gather at an arbitrary root reassembles every contribution in order.
    #[test]
    fn gather_reassembles(size in 1usize..8, root_pick in any::<usize>()) {
        let root = root_pick % size;
        let results = World::run(size, move |comm| {
            let contrib: Vec<u16> = vec![comm.rank() as u16; comm.rank() + 1];
            comm.gather(root, &contrib)
        });
        for (rank, res) in results.iter().enumerate() {
            if rank == root {
                let parts = res.as_ref().expect("root gets the data");
                for (r, part) in parts.iter().enumerate() {
                    prop_assert_eq!(part, &vec![r as u16; r + 1]);
                }
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    /// split partitions ranks: each subgroup sums exactly its members.
    #[test]
    fn split_partitions(size in 2usize..9, colors in any::<u64>()) {
        let color_of = move |rank: usize| (colors >> (rank % 16)) & 1;
        let results = World::run(size, move |comm| {
            let sub = comm.split(Some(color_of(comm.rank())), 0).expect("member");
            sub.allreduce(&[comm.rank() as u64], |a, b| *a += b)[0]
        });
        for (rank, &sum) in results.iter().enumerate() {
            let expected: u64 = (0..size)
                .filter(|&r| color_of(r) == color_of(rank))
                .map(|r| r as u64)
                .sum();
            prop_assert_eq!(sum, expected, "rank {}", rank);
        }
    }
}
