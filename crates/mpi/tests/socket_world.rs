//! Multi-process socket-world integration tests.
//!
//! Every test here re-executes this test binary once per rank
//! ([`World::run_spawned_test`]): the spawned child runs the *same* test
//! function, whose `run_spawned_test` call recognises the rank environment
//! and becomes that rank. The `program` string must therefore equal the
//! test function's name.

use mini_mpi::{Comm, Source, SpawnError, SpawnOptions, World};
use proptest::prelude::*;

fn le_u64s(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_le_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn ring_over_sockets() {
    let out = World::run_spawned_test(3, "ring_over_sockets", &[], |comm, _| {
        assert!(World::is_spawned_child(), "rank must see the child env");
        assert!(
            World::spawn_dir().is_some_and(|d| d.is_dir()),
            "rendezvous dir must exist in the child"
        );
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(next, 7, &[comm.rank() as u64]);
        let got = comm.recv::<u64>(Source::Rank(prev), 7)[0];
        le_u64s(&[got])
    })
    .expect("spawned ring must succeed");
    assert_eq!(out.len(), 3);
    assert_eq!(from_le_u64s(&out[0]), vec![2]);
    assert_eq!(from_le_u64s(&out[1]), vec![0]);
    assert_eq!(from_le_u64s(&out[2]), vec![1]);
}

#[test]
fn collectives_and_split_over_sockets() {
    let out = World::run_spawned_test(4, "collectives_and_split_over_sockets", &[], |comm, _| {
        // The Damaris pattern: split the world into clients vs dedicated
        // cores, then exercise collectives in both the parent and child
        // communicators.
        let sum = comm.allreduce(&[comm.rank() as u64 + 1], |a, b| *a += b)[0];
        let root_data = comm.bcast(2, &[comm.rank() as u64 * 10]);
        let sub = comm
            .split(Some((comm.rank() % 2) as u64), 0)
            .expect("all ranks participate");
        let sub_sum = sub.allreduce(&[comm.rank() as u64], |a, b| *a += b)[0];
        let dup = comm.dup();
        if comm.rank() == 0 {
            dup.send(1, 3, &[99u64]);
            comm.send(1, 3, &[11u64]);
        }
        let dup_probe = if comm.rank() == 1 {
            // Context isolation across processes: the dup message must not
            // satisfy a receive on the parent communicator.
            let parent = comm.recv::<u64>(Source::Rank(0), 3)[0];
            let dupped = dup.recv::<u64>(Source::Rank(0), 3)[0];
            parent * 1000 + dupped
        } else {
            0
        };
        le_u64s(&[sum, root_data[0], sub.size() as u64, sub_sum, dup_probe])
    })
    .expect("spawned collectives must succeed");
    for (rank, bytes) in out.iter().enumerate() {
        let vals = from_le_u64s(bytes);
        assert_eq!(vals[0], 10, "allreduce sum");
        assert_eq!(vals[1], 20, "bcast from rank 2");
        assert_eq!(vals[2], 2, "even/odd split halves a 4-rank world");
        let expected_sub = if rank % 2 == 0 { 2 } else { 4 };
        assert_eq!(vals[3], expected_sub, "split-communicator allreduce");
        if rank == 1 {
            assert_eq!(vals[4], 11 * 1000 + 99, "dup context isolation");
        }
    }
}

#[test]
fn tcp_fallback_transport() {
    let opts = SpawnOptions {
        harness_args: true,
        tcp: true,
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(2, "tcp_fallback_transport", &[5], opts, |comm, input| {
        let other = 1 - comm.rank();
        comm.send(other, 1, &[input[0] as u64 + comm.rank() as u64]);
        let got = comm.recv::<u64>(Source::Rank(other), 1)[0];
        le_u64s(&[got])
    })
    .expect("TCP fallback world must succeed");
    assert_eq!(from_le_u64s(&out[0]), vec![6]);
    assert_eq!(from_le_u64s(&out[1]), vec![5]);
}

/// The deterministic rank program used by the transport-equivalence
/// property test: a mix of p2p (in-order and out-of-order tags),
/// collectives, split and dup, all parameterized by the input bytes.
/// Returns the observed values plus the rank's full traffic counters.
fn equivalence_program(comm: &mut Comm, input: &[u8]) -> Vec<u8> {
    let rank = comm.rank();
    let size = comm.size();
    let mut acc: Vec<u64> = Vec::new();

    // Phase 1: ring exchange with an input-derived tag.
    let tag = u32::from(*input.first().unwrap_or(&0));
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    comm.send(
        next,
        tag,
        &[(rank as u64) << 8 | u64::from(input.len() as u8)],
    );
    acc.extend(comm.recv::<u64>(Source::Rank(prev), tag));

    // Phase 2: out-of-order tags — everyone (rank 0 included) sends rank 0
    // two messages; rank 0 drains the higher tag first. Sends are eager,
    // so posting before receiving cannot deadlock.
    comm.send(0, 1_000_000, &[rank as u64 + 7]);
    comm.send(0, 1_000_001, &[rank as u64 + 70]);
    if rank == 0 {
        let mut any_batch = Vec::new();
        for _ in 0..size {
            any_batch.extend(comm.recv::<u64>(Source::Any, 1_000_001));
        }
        any_batch.sort_unstable(); // any-source arrival order is scheduling-dependent
        acc.extend(any_batch);
        for r in 0..size {
            acc.extend(comm.recv::<u64>(Source::Rank(r), 1_000_000));
        }
    }

    // Phase 3: input-wide allreduce.
    let contrib: Vec<u64> = input.iter().map(|&b| u64::from(b) + rank as u64).collect();
    acc.extend(comm.allreduce(&contrib, |a, b| *a += b));

    // Phase 4: split by input parity, reduce within the sub-communicator.
    let color = input.iter().map(|&b| u64::from(b)).sum::<u64>() % 2;
    if let Some(sub) = comm.split(Some(color + rank as u64 % 2), rank as i64) {
        acc.push(sub.size() as u64);
        acc.extend(sub.allreduce(&[rank as u64 + 1], |a, b| *a += b));
    }

    // Phase 5: bcast from an input-selected root through a dup.
    let dup = comm.dup();
    let root = input.get(1).map_or(0, |&b| b as usize % size);
    acc.extend(dup.bcast(
        root,
        &[root as u64 * 1000 + u64::from(input.first().copied().unwrap_or(0))],
    ));

    let t = comm.traffic();
    acc.extend([
        t.bytes_sent,
        t.bytes_received,
        t.messages_sent,
        t.messages_received,
    ]);
    le_u64s(&acc)
}

proptest! {
    // Property: the same rank program produces byte-identical results —
    // including Traffic counters — on the in-process and socket worlds,
    // for arbitrary world sizes and input payloads. (Spawning real
    // processes is expensive, so the case count is deliberately small;
    // every case still covers p2p, out-of-order tags, collectives, split
    // and dup.)
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn equivalence_threads_vs_sockets(
        size in 1usize..=3,
        input in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // Socket world FIRST: a spawned child becomes its rank inside this
        // call and exits, so it never wastes work re-running the thread
        // world for proptest cases that precede its own.
        let sockets = World::run_spawned_test(
            size,
            "equivalence_threads_vs_sockets",
            &input,
            equivalence_program,
        )
        .unwrap_or_else(|e| panic!("socket world failed for size {size}, input {input:?}: {e}"));
        let thread_input = input.clone();
        let threads: Vec<Vec<u8>> = World::run(size, move |comm| {
            equivalence_program(comm, &thread_input)
        });
        prop_assert_eq!(
            threads, sockets,
            "transports diverged for size {}, input {:?}", size, input
        );
    }
}

#[test]
fn rank_death_fails_survivors_without_deadlock() {
    let started = std::time::Instant::now();
    let opts = SpawnOptions {
        harness_args: true,
        timeout: std::time::Duration::from_secs(60),
        ..SpawnOptions::default()
    };
    let err = World::run_spawned_with(
        3,
        "rank_death_fails_survivors_without_deadlock",
        &[],
        opts,
        |comm, _| {
            if comm.rank() == 1 {
                // Die abruptly: no result, no goodbye. The mesh is already
                // established (rendezvous happens before the rank program),
                // so the survivors' readers observe a bare EOF.
                std::process::exit(7);
            }
            // Survivors wait for a message the dead rank can never send.
            // This must fail with a "rank 1 died" error, not deadlock.
            let _ = comm.recv::<u64>(Source::Rank(1), 0);
            le_u64s(&[comm.rank() as u64])
        },
    )
    .expect_err("a dead rank must fail the world");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "rank death must not run into the timeout (deadlock symptom)"
    );
    match err {
        SpawnError::RanksFailed(lines) => {
            let all = lines.join("; ");
            assert!(all.contains("rank 1"), "must name the dead rank: {all}");
            assert_eq!(lines.len(), 3, "survivors abort instead of hanging: {all}");
        }
        other => panic!("expected RanksFailed, got {other}"),
    }
}
