//! Failure-injection tests for the multi-host socket world: seed-list
//! rendezvous, heartbeat failure detection, membership convergence, and
//! reconnect-after-transient-failure — all driven deterministically by
//! the in-process [`mini_mpi::testutil::FaultProxy`] and the
//! `(rank, pid)` spawn hook.
//!
//! Every test re-executes this binary once per rank (the
//! `run_spawned_test` pattern: the `program` string equals the test
//! function name, and child behaviour derives only from the input
//! bytes).

use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use mini_mpi::testutil::{FaultAction, FaultProxy, LinkFault, PidMap};
use mini_mpi::{Comm, Source, SpawnOptions, World};
use proptest::prelude::*;

fn le_u64s(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn from_le_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Poll the communicator's membership view until it equals `expected`
/// (world ranks, ascending) or the deadline passes; returns the elapsed
/// time on success.
fn wait_dead_view(comm: &Comm, expected: &[usize], deadline: Duration) -> Duration {
    let started = Instant::now();
    loop {
        let view = comm.dead_ranks();
        if view == expected {
            return started.elapsed();
        }
        assert!(
            started.elapsed() < deadline,
            "rank {}: membership never converged: have {view:?}, want {expected:?}",
            comm.rank()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Seed-list rendezvous bootstraps a working mesh with no shared-dir
/// endpoint files, and produces the same results as the shared-dir path.
#[test]
fn seed_list_rendezvous_matches_shared_dir() {
    let ring = |comm: &mut Comm, _input: &[u8]| {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(next, 7, &[comm.rank() as u64 * 3 + 1]);
        let got = comm.recv::<u64>(Source::Rank(prev), 7)[0];
        let sum = comm.allreduce(&[comm.rank() as u64], |a, b| *a += b)[0];
        le_u64s(&[got, sum])
    };
    let seeded = SpawnOptions {
        harness_args: true,
        seeds: Some("127.0.0.1:0".into()),
        ..SpawnOptions::default()
    };
    let via_seeds = World::run_spawned_with(
        3,
        "seed_list_rendezvous_matches_shared_dir",
        &[],
        seeded,
        ring,
    )
    .expect("seed-list world must succeed");
    let shared_dir = SpawnOptions {
        harness_args: true,
        ..SpawnOptions::default()
    };
    let via_dir = World::run_spawned_with(
        3,
        "seed_list_rendezvous_matches_shared_dir",
        &[],
        shared_dir,
        ring,
    )
    .expect("shared-dir world must succeed");
    assert_eq!(via_seeds, via_dir, "rendezvous paths must be equivalent");
    assert_eq!(from_le_u64s(&via_seeds[0]), vec![7, 3]);
}

/// With the proxy fronting the seed, every mesh link flows through it:
/// a no-fault run works and the proxy has observed data frames.
#[test]
fn fault_proxy_observes_every_link() {
    let proxy = FaultProxy::new(vec![]).expect("proxy must bind");
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some(proxy.seeds()),
        registry_bind: Some(proxy.registry_bind()),
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 5_000,
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(
        3,
        "fault_proxy_observes_every_link",
        &[],
        opts,
        |comm, _| {
            // Full exchange: every pair sends in both directions, so every
            // proxied link carries dialer-to-listener data frames.
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(peer, 1, &[comm.rank() as u64]);
                }
            }
            let mut sum = 0;
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    sum += comm.recv::<u64>(Source::Rank(peer), 1)[0];
                }
            }
            assert!(comm.dead_ranks().is_empty(), "no faults, no deaths");
            le_u64s(&[sum])
        },
    )
    .expect("proxied world must succeed");
    for (rank, bytes) in out.iter().enumerate() {
        assert_eq!(
            from_le_u64s(bytes)[0],
            3 - rank as u64,
            "0 + 1 + 2 minus own rank"
        );
    }
    // Dialer-to-listener data frames on every link (high dials low).
    for (low, high) in [(0, 1), (0, 2), (1, 2)] {
        assert!(
            proxy.data_frames_seen(low, high) >= 1,
            "link ({low},{high}) must flow through the proxy"
        );
    }
}

/// A transient link drop with heartbeats on: the dialer reconnects with
/// backoff and the sequence-numbered frames resume with nothing lost or
/// duplicated, in both directions.
#[test]
fn transient_drop_is_lossless_after_reconnect() {
    const MSGS: u64 = 50;
    let proxy = FaultProxy::new(vec![LinkFault {
        low: 0,
        high: 1,
        after_data: 3,
        action: FaultAction::Drop,
    }])
    .expect("proxy must bind");
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some(proxy.seeds()),
        registry_bind: Some(proxy.registry_bind()),
        heartbeat_ms: 50,
        heartbeat_timeout_ms: 10_000,
        timeout: Duration::from_secs(60),
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(
        2,
        "transient_drop_is_lossless_after_reconnect",
        &[],
        opts,
        |comm, _| {
            let other = 1 - comm.rank();
            // Both directions cross the dropped connection: rank 1 is the
            // dialer (the redialing side), rank 0 the acceptor.
            for i in 0..MSGS {
                comm.send(other, 4, &[comm.rank() as u64 * 1000 + i]);
            }
            let mut got = Vec::new();
            for _ in 0..MSGS {
                got.extend(comm.recv::<u64>(Source::Rank(other), 4));
            }
            // Exactly-once, in-order delivery despite the mid-stream drop.
            let want: Vec<u64> = (0..MSGS).map(|i| other as u64 * 1000 + i).collect();
            assert_eq!(got, want, "rank {} lost or reordered frames", comm.rank());
            assert!(comm.dead_ranks().is_empty(), "transient drop is not death");
            le_u64s(&[got.len() as u64])
        },
    )
    .expect("world must survive a transient drop");
    assert_eq!(out.len(), 2);
    // The drop fired mid-stream and the retransmitted suffix also flowed
    // through the proxy (a fresh forwarder connection).
    assert!(
        proxy.data_frames_seen(0, 1) >= MSGS as usize,
        "retransmissions must route back through the proxy"
    );
}

/// A delayed link slows frames down but still delivers every one, in
/// order.
#[test]
fn delayed_link_still_delivers_in_order() {
    const MSGS: u64 = 10;
    let proxy = FaultProxy::new(vec![LinkFault {
        low: 0,
        high: 1,
        after_data: 0,
        action: FaultAction::Delay(Duration::from_millis(25)),
    }])
    .expect("proxy must bind");
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some(proxy.seeds()),
        registry_bind: Some(proxy.registry_bind()),
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 10_000,
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(
        2,
        "delayed_link_still_delivers_in_order",
        &[],
        opts,
        |comm, _| {
            if comm.rank() == 1 {
                for i in 0..MSGS {
                    comm.send(0, 2, &[i]);
                }
                le_u64s(&[])
            } else {
                let mut got = Vec::new();
                for _ in 0..MSGS {
                    got.extend(comm.recv::<u64>(Source::Rank(1), 2));
                }
                assert_eq!(got, (0..MSGS).collect::<Vec<_>>());
                le_u64s(&got)
            }
        },
    )
    .expect("delay must not break delivery");
    assert_eq!(from_le_u64s(&out[0]), (0..MSGS).collect::<Vec<_>>());
    assert_eq!(proxy.data_frames_seen(0, 1), MSGS as usize);
}

/// Black-holing every link of one rank (a network partition: connections
/// stay open, frames vanish) gets the victim declared dead by heartbeat
/// timeout within 2x the configured timeout, survivors converge on the
/// identical membership view, and the world completes in degraded mode.
#[test]
fn black_hole_partition_converges_membership() {
    const HB_TIMEOUT_MS: u64 = 1_500;
    const VICTIM: usize = 2;
    // after_data = 1: the victim's first data frame per link (the phase-1
    // exchange) passes; its second (the tag-9 trigger) fires the fault.
    let proxy = FaultProxy::new(
        [0usize, 1]
            .iter()
            .map(|&low| LinkFault {
                low,
                high: VICTIM,
                after_data: 1,
                action: FaultAction::BlackHole,
            })
            .collect(),
    )
    .expect("proxy must bind");
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some(proxy.seeds()),
        registry_bind: Some(proxy.registry_bind()),
        heartbeat_ms: 100,
        heartbeat_timeout_ms: HB_TIMEOUT_MS,
        timeout: Duration::from_secs(60),
        ..SpawnOptions::default()
    };
    let outcome = World::run_spawned_outcome(
        3,
        "black_hole_partition_converges_membership",
        &[],
        opts,
        |comm, _| {
            // Phase 1: every pair exchanges one message (all links warm).
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(peer, 1, &[comm.rank() as u64]);
                }
            }
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    let _ = comm.recv::<u64>(Source::Rank(peer), 1);
                }
            }
            if comm.rank() == VICTIM {
                // Trigger the black hole on both of the victim's links,
                // then wait to observe the partition from the minority
                // side (everyone else appears dead) and die quietly.
                comm.send(0, 9, &[1]);
                comm.send(1, 9, &[1]);
                wait_dead_view(comm, &[0, 1], Duration::from_secs(30));
                std::process::exit(3);
            }
            let detection = wait_dead_view(
                comm,
                &[VICTIM],
                Duration::from_millis(2 * HB_TIMEOUT_MS + 1_000),
            );
            assert!(
                detection < Duration::from_millis(2 * HB_TIMEOUT_MS),
                "rank {}: detection took {detection:?}, budget is 2x timeout",
                comm.rank()
            );
            // Degraded mode: traffic among survivors keeps flowing.
            let other = 1 - comm.rank();
            comm.send(other, 5, &[comm.rank() as u64 + 100]);
            let got = comm.recv::<u64>(Source::Rank(other), 5)[0];
            assert_eq!(got, other as u64 + 100);
            le_u64s(
                &comm
                    .dead_ranks()
                    .iter()
                    .map(|&r| r as u64)
                    .collect::<Vec<_>>(),
            )
        },
    )
    .expect("partition must not wedge the spawn");
    assert_eq!(
        outcome.failed_ranks(),
        vec![VICTIM],
        "only the victim fails"
    );
    let views: Vec<_> = [0, 1]
        .iter()
        .map(|&r| outcome.results[r].clone().expect("survivor result"))
        .collect();
    assert_eq!(views[0], views[1], "survivors must agree byte-for-byte");
    assert_eq!(from_le_u64s(&views[0]), vec![VICTIM as u64]);
}

/// A SIGKILLed rank is declared dead within 2x the heartbeat timeout and
/// the survivors finish in degraded mode; a rank that is merely stalled
/// (SIGSTOP shorter than the timeout) is NOT declared dead and the world
/// completes cleanly. Both use the `(rank, pid)` spawn hook.
#[test]
fn killed_rank_declared_dead_within_twice_timeout() {
    const HB_TIMEOUT_MS: u64 = 1_500;
    const VICTIM: usize = 1;
    let pids = PidMap::new();
    // Kill the victim shortly after it spawns. (In a spawned child this
    // helper sees no pids and gives up harmlessly.)
    {
        let pids = pids.clone();
        std::thread::spawn(move || {
            if pids.wait_pid(VICTIM, Duration::from_secs(20)).is_some() {
                std::thread::sleep(Duration::from_millis(700));
                pids.kill(VICTIM);
            }
        });
    }
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some("127.0.0.1:0".into()),
        heartbeat_ms: 100,
        heartbeat_timeout_ms: HB_TIMEOUT_MS,
        timeout: Duration::from_secs(60),
        on_spawn: Some(pids.hook()),
        ..SpawnOptions::default()
    };
    let outcome = World::run_spawned_outcome(
        3,
        "killed_rank_declared_dead_within_twice_timeout",
        &[],
        opts,
        |comm, _| {
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(peer, 1, &[comm.rank() as u64]);
                }
            }
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    let _ = comm.recv::<u64>(Source::Rank(peer), 1);
                }
            }
            if comm.rank() == VICTIM {
                // Wait for SIGKILL: abrupt crash-stop, no goodbye.
                std::thread::sleep(Duration::from_secs(30));
                unreachable!("the harness kills this rank");
            }
            let detection = wait_dead_view(comm, &[VICTIM], Duration::from_secs(30));
            // The kill lands ~700ms in; detection is bounded by 2x the
            // heartbeat timeout from there.
            assert!(
                detection < Duration::from_millis(700 + 2 * HB_TIMEOUT_MS),
                "rank {}: detection took {detection:?}",
                comm.rank()
            );
            let other = if comm.rank() == 0 { 2 } else { 0 };
            comm.send(other, 5, &[comm.rank() as u64]);
            assert_eq!(comm.recv::<u64>(Source::Rank(other), 5)[0], other as u64);
            le_u64s(
                &comm
                    .dead_ranks()
                    .iter()
                    .map(|&r| r as u64)
                    .collect::<Vec<_>>(),
            )
        },
    )
    .expect("kill must not wedge the spawn");
    assert_eq!(outcome.failed_ranks(), vec![VICTIM]);
    let v0 = outcome.results[0].clone().expect("rank 0 result");
    let v2 = outcome.results[2].clone().expect("rank 2 result");
    assert_eq!(v0, v2, "survivors must agree byte-for-byte");
    assert_eq!(from_le_u64s(&v0), vec![VICTIM as u64]);
}

#[test]
fn stalled_rank_is_not_declared_dead() {
    const VICTIM: usize = 1;
    let pids = PidMap::new();
    // Stall the victim for 600ms — well under the 2.5s heartbeat timeout.
    {
        let pids = pids.clone();
        std::thread::spawn(move || {
            if pids.wait_pid(VICTIM, Duration::from_secs(20)).is_some() {
                std::thread::sleep(Duration::from_millis(400));
                if pids.signal(VICTIM, "STOP") {
                    std::thread::sleep(Duration::from_millis(600));
                    pids.signal(VICTIM, "CONT");
                }
            }
        });
    }
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some("127.0.0.1:0".into()),
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 2_500,
        timeout: Duration::from_secs(60),
        on_spawn: Some(pids.hook()),
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(
        3,
        "stalled_rank_is_not_declared_dead",
        &[],
        opts,
        |comm, _| {
            for round in 0..2u64 {
                for peer in 0..comm.size() {
                    if peer != comm.rank() {
                        comm.send(peer, round as u32, &[comm.rank() as u64]);
                    }
                }
                for peer in 0..comm.size() {
                    if peer != comm.rank() {
                        let _ = comm.recv::<u64>(Source::Rank(peer), round as u32);
                    }
                }
                if round == 0 {
                    // Sit inside the victim's stall window before round 2.
                    std::thread::sleep(Duration::from_millis(1_500));
                }
            }
            assert!(
                comm.dead_ranks().is_empty(),
                "rank {}: a stalled-but-alive peer must not be declared dead: {:?}",
                comm.rank(),
                comm.dead_ranks()
            );
            le_u64s(&[comm.rank() as u64])
        },
    )
    .expect("a short stall must not fail the world");
    assert_eq!(out.len(), 3);
}

/// Ranks finishing far apart — skew of several heartbeat timeouts — must
/// not poison the survivors: the finished rank parks in its teardown
/// barrier and keeps heartbeat-monitoring every link whose goodbye it
/// has not yet received, so the still-working ranks must keep answering
/// its pings after seeing *its* goodbye. Regression test: the reader
/// thread used to exit on an inbound Goodbye, going silent on that link;
/// the finished rank then falsely declared every still-working peer dead
/// at the heartbeat timeout and abandoned its teardown barrier ~450 ms
/// before the workers were done (observable as rank 0's process exiting
/// long before ranks 1/2) instead of holding the barrier until their
/// goodbyes arrived.
#[test]
fn skewed_finish_times_are_not_deaths() {
    let pids = PidMap::new();
    // Per-rank process-exit instants, recorded by watcher threads
    // polling /proc/<pid> (the parent reaps children every few ms, so
    // the entry disappears promptly on exit).
    let exits: Arc<StdMutex<[Option<Instant>; 3]>> = Arc::new(StdMutex::new([None; 3]));
    let watchers: Vec<_> = (0..3)
        .map(|rank| {
            let pids = pids.clone();
            let exits = exits.clone();
            std::thread::spawn(move || {
                let Some(pid) = pids.wait_pid(rank, Duration::from_secs(20)) else {
                    return;
                };
                let proc_path = format!("/proc/{pid}");
                while std::path::Path::new(&proc_path).exists() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                exits.lock().unwrap()[rank] = Some(Instant::now());
            })
        })
        .collect();
    let opts = SpawnOptions {
        harness_args: true,
        seeds: Some("127.0.0.1:0".into()),
        heartbeat_ms: 25,
        heartbeat_timeout_ms: 150,
        timeout: Duration::from_secs(30),
        on_spawn: Some(pids.hook()),
        ..SpawnOptions::default()
    };
    let out = World::run_spawned_with(
        3,
        "skewed_finish_times_are_not_deaths",
        &[],
        opts,
        |comm, _| {
            // Warm-up exchange so every link carries traffic once.
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(peer, 1, &[comm.rank() as u64]);
                }
            }
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    let _ = comm.recv::<u64>(Source::Rank(peer), 1);
                }
            }
            if comm.rank() == 0 {
                // Finish immediately: goodbye goes out while the others
                // keep working for ~4x the heartbeat timeout.
                return le_u64s(&[0]);
            }
            let other = 3 - comm.rank();
            for round in 0..12u64 {
                comm.send(other, 2, &[round]);
                assert_eq!(comm.recv::<u64>(Source::Rank(other), 2)[0], round);
                std::thread::sleep(Duration::from_millis(50));
            }
            assert!(
                comm.dead_ranks().is_empty(),
                "rank {}: an early-finished rank must not get anyone declared dead: {:?}",
                comm.rank(),
                comm.dead_ranks()
            );
            le_u64s(&[comm.rank() as u64])
        },
    )
    .expect("skewed finish times must stay a clean run");
    assert_eq!(from_le_u64s(&out[1]), vec![1]);
    assert_eq!(from_le_u64s(&out[2]), vec![2]);
    for w in watchers {
        w.join().unwrap();
    }
    let exits = exits.lock().unwrap();
    let rank0 = exits[0].expect("rank 0 exit must be recorded");
    let last = exits
        .iter()
        .map(|e| e.expect("every exit must be recorded"))
        .max()
        .unwrap();
    // Rank 0 holds the teardown barrier until ranks 1/2 say goodbye
    // (~600 ms after its own finish), so all three processes exit close
    // together. Pre-fix, rank 0 bailed out ~450 ms early.
    let gap = last.duration_since(rank0);
    assert!(
        gap < Duration::from_millis(300),
        "rank 0 left the teardown barrier {gap:?} before the workers \
         finished — it must wait for their goodbyes, not declare them dead"
    );
}

proptest! {
    // Property: for a random kill schedule (any non-empty proper subset
    // of ranks crash-stops after the warm-up exchange), every survivor
    // converges on the byte-identical membership view, the outcome names
    // exactly the victims, and the world finishes in bounded time.
    // (Process spawns are expensive: few cases, small worlds.)
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn membership_agreement_under_random_kill_schedules(
        size in 3usize..=4,
        mask_seed in 1u32..1_000_000,
    ) {
        let full = (1u32 << size) - 1;
        let mask = {
            // Any non-empty proper subset of ranks.
            let m = mask_seed % full;
            if m == 0 { 1 } else { m }
        };
        let victims: Vec<usize> = (0..size).filter(|r| mask & (1 << r) != 0).collect();
        let input: Vec<u8> = std::iter::once(mask as u8).collect();
        let started = Instant::now();
        let opts = SpawnOptions {
            harness_args: true,
            seeds: Some("127.0.0.1:0".into()),
            heartbeat_ms: 100,
            heartbeat_timeout_ms: 1_000,
            timeout: Duration::from_secs(60),
            ..SpawnOptions::default()
        };
        let outcome = World::run_spawned_outcome(
            size,
            "membership_agreement_under_random_kill_schedules",
            &input,
            opts,
            |comm, input| {
                let mask = u32::from(input[0]);
                let victims: Vec<usize> =
                    (0..comm.size()).filter(|r| mask & (1 << r) != 0).collect();
                // Warm-up: every rank posts to every peer over the
                // established mesh, but only survivor↔survivor
                // deliveries are awaited — a victim's crash-stop races
                // its writer-thread flush, so nothing may depend on a
                // victim's frames arriving.
                for peer in 0..comm.size() {
                    if peer != comm.rank() {
                        comm.send(peer, 1, &[comm.rank() as u64]);
                    }
                }
                if victims.contains(&comm.rank()) {
                    // Crash-stop: no result, no goodbye.
                    std::process::exit(9);
                }
                for peer in 0..comm.size() {
                    if peer != comm.rank() && !victims.contains(&peer) {
                        let _ = comm.recv::<u64>(Source::Rank(peer), 1);
                    }
                }
                wait_dead_view(comm, &victims, Duration::from_secs(30));
                le_u64s(&comm.dead_ranks().iter().map(|&r| r as u64).collect::<Vec<_>>())
            },
        )
        .expect("kills must not wedge the spawn");
        prop_assert!(
            started.elapsed() < Duration::from_secs(60),
            "bounded time: took {:?}", started.elapsed()
        );
        prop_assert_eq!(outcome.failed_ranks(), victims.clone(), "exactly the victims fail");
        let survivor_views: Vec<Vec<u8>> = (0..size)
            .filter(|r| !victims.contains(r))
            .map(|r| outcome.results[r].clone().expect("survivor result"))
            .collect();
        for view in &survivor_views {
            prop_assert_eq!(
                view.clone(),
                survivor_views[0].clone(),
                "survivors diverged on membership"
            );
            prop_assert_eq!(
                from_le_u64s(view),
                victims.iter().map(|&v| v as u64).collect::<Vec<_>>(),
                "membership view must name exactly the victims"
            );
        }
    }
}
