//! End-to-end tests of the streaming server against the client library:
//! live fan-out, snapshot catch-up, variable filtering, and the lag
//! policy under a stalled consumer.

use std::sync::Arc;
use std::time::Duration;

use damaris_serve::{
    Payload, PublishBlock, ServeOptions, StreamServer, Subscriber, SubscriberEvent,
};

fn opts(queue_frames: usize) -> ServeOptions {
    ServeOptions {
        listen: "127.0.0.1:0".to_string(),
        queue_frames,
        simulation: "stream-test".to_string(),
        addr_file: None,
    }
}

fn owned(bytes: Vec<u8>) -> Payload {
    Payload::Owned(Arc::new(bytes))
}

fn block(var: &str, source: u64, bytes: Vec<u8>) -> PublishBlock {
    PublishBlock {
        variable: var.to_string(),
        source,
        payload: owned(bytes),
    }
}

/// Read events until (and including) the given iteration's boundary.
fn read_iteration(sub: &mut Subscriber, iteration: u64) -> Vec<SubscriberEvent> {
    let mut out = Vec::new();
    loop {
        let ev = sub.next_event().expect("stream alive");
        let done = matches!(
            &ev,
            SubscriberEvent::IterationEnd { iteration: it, .. } if *it == iteration
        );
        out.push(ev);
        if done {
            return out;
        }
    }
}

#[test]
fn live_stream_reaches_subscriber_and_ends_with_bye() {
    let server = StreamServer::bind(opts(64)).unwrap();
    let mut sub = Subscriber::connect(server.local_addr()).unwrap();
    assert_eq!(sub.simulation(), "stream-test");
    sub.subscribe(&[]).unwrap();

    // Iteration 0 may arrive live or as catch-up, depending on when the
    // poll thread registers the subscription — either way, exactly once.
    server.publish(
        0,
        vec![block("u", 0, vec![1; 16]), block("u", 1, vec![2; 16])],
    );
    let it0 = read_iteration(&mut sub, 0);
    assert_eq!(it0.len(), 3, "two DATA + one ITER_END: {it0:?}");
    assert!(matches!(
        &it0[0],
        SubscriberEvent::Data { variable, iteration: 0, source: 0, bytes }
            if variable == "u" && bytes == &vec![1; 16]
    ));
    assert!(matches!(
        &it0[2],
        SubscriberEvent::IterationEnd {
            iteration: 0,
            blocks: 2
        }
    ));

    // Once iteration 0 arrived the subscription is registered, so later
    // iterations stream live and in order.
    server.publish(1, vec![block("u", 0, vec![3; 8])]);
    server.publish(2, vec![block("u", 0, vec![4; 8])]);
    let it1 = read_iteration(&mut sub, 1);
    assert_eq!(it1.len(), 2);
    let it2 = read_iteration(&mut sub, 2);
    assert!(matches!(
        &it2[0],
        SubscriberEvent::Data { iteration: 2, bytes, .. } if bytes == &vec![4; 8]
    ));

    let stats = server.stats();
    assert_eq!(stats.iterations_published, 3);
    assert_eq!(stats.subscribers_peak, 1);
    assert_eq!(stats.frames_dropped, 0);

    server.shutdown(Duration::from_secs(5));
    assert_eq!(sub.next_event().unwrap(), SubscriberEvent::Bye);
}

#[test]
fn late_joiner_catches_up_from_latest_snapshot_only() {
    let server = StreamServer::bind(opts(64)).unwrap();
    // Two iterations pass before anyone is listening.
    server.publish(0, vec![block("u", 0, vec![0xaa; 32])]);
    server.publish(1, vec![block("u", 0, vec![0xbb; 32])]);

    let mut sub = Subscriber::connect(server.local_addr()).unwrap();
    sub.subscribe(&[]).unwrap();
    // Catch-up is the most recent completed iteration — 1, not 0.
    let caught = read_iteration(&mut sub, 1);
    assert_eq!(caught.len(), 2);
    assert!(matches!(
        &caught[0],
        SubscriberEvent::Data { iteration: 1, bytes, .. } if bytes == &vec![0xbb; 32]
    ));

    // Then the live stream continues.
    server.publish(2, vec![block("u", 0, vec![0xcc; 32])]);
    let live = read_iteration(&mut sub, 2);
    assert!(matches!(
        &live[0],
        SubscriberEvent::Data { iteration: 2, bytes, .. } if bytes == &vec![0xcc; 32]
    ));
    assert_eq!(server.stats().snapshots_served, 1);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn subscription_filters_variables_but_boundaries_keep_full_counts() {
    let server = StreamServer::bind(opts(64)).unwrap();
    server.publish(
        0,
        vec![
            block("u", 0, vec![1; 8]),
            block("v", 0, vec![2; 8]),
            block("v", 1, vec![3; 8]),
        ],
    );
    let mut sub = Subscriber::connect(server.local_addr()).unwrap();
    sub.subscribe(&["v"]).unwrap();
    let events = read_iteration(&mut sub, 0);
    let datas: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            SubscriberEvent::Data {
                variable, source, ..
            } => Some((variable.clone(), *source)),
            _ => None,
        })
        .collect();
    assert_eq!(datas, vec![("v".to_string(), 0), ("v".to_string(), 1)]);
    // The boundary advertises the published count, not the filtered one.
    assert!(matches!(
        events.last().unwrap(),
        SubscriberEvent::IterationEnd { blocks: 3, .. }
    ));
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn stalled_consumer_lags_and_resumes_without_blocking_publisher() {
    const BLOCK: usize = 256 << 10;
    let server = StreamServer::bind(opts(4)).unwrap();
    let mut sub = Subscriber::connect(server.local_addr()).unwrap();
    sub.subscribe(&[]).unwrap();
    server.publish(0, vec![block("u", 0, vec![0; 64])]);
    let _ = read_iteration(&mut sub, 0); // subscription confirmed

    // Stop reading and bury the subscriber: far more bytes than the
    // socket buffers + 4-frame queue can hold.
    for it in 1..=80u64 {
        server.publish(it, vec![block("u", 0, vec![it as u8; BLOCK])]);
    }
    let stats = server.stats();
    assert!(
        stats.frames_dropped > 0,
        "a stalled consumer must shed load: {stats:?}"
    );
    // The lag policy promise: publish never blocks on a dead socket. A
    // blocked publisher would show seconds here, not microseconds (50 ms
    // leaves room for a noisy CI scheduler).
    assert!(
        stats.publish_ns_max < 50_000_000,
        "publish path not bounded: max {} ns",
        stats.publish_ns_max
    );

    // Resume reading while fresh iterations arrive: the stream comes
    // back with an explicit LAG, then whole iterations only.
    let mut events = Vec::new();
    for it in 81..=120u64 {
        server.publish(it, vec![block("u", 0, vec![it as u8; 1024])]);
        while let Some(ev) = sub.try_next().expect("stream alive") {
            events.push(ev);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown(Duration::from_secs(5));
    loop {
        match sub.try_next() {
            Ok(Some(SubscriberEvent::Bye)) => break,
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => break,
        }
    }

    let lag = events
        .iter()
        .find_map(|e| match e {
            SubscriberEvent::Lag {
                dropped_frames,
                resume_iteration,
            } => Some((*dropped_frames, *resume_iteration)),
            _ => None,
        })
        .expect("an explicit LAG frame must precede the resumed stream");
    assert!(lag.0 > 0, "LAG reports what was missed");
    assert!(lag.1 > 1, "stream resumed past the dropped prefix");

    // Drop-to-latest delivers whole iterations or nothing: every DATA
    // run is terminated by its own iteration's boundary.
    let mut current: Option<u64> = None;
    for ev in &events {
        match ev {
            SubscriberEvent::Data { iteration, .. } => {
                assert!(
                    current.is_none() || current == Some(*iteration),
                    "interleaved iterations: {events:?}"
                );
                current = Some(*iteration);
            }
            SubscriberEvent::IterationEnd { iteration, .. } => {
                if let Some(cur) = current {
                    assert_eq!(cur, *iteration, "boundary closes its own iteration");
                }
                current = None;
            }
            SubscriberEvent::Lag { .. } | SubscriberEvent::Bye => {}
        }
    }
    assert!(server.stats().lag_events >= 1);
}
