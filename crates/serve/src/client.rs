//! The subscriber client library (`serve::Subscriber`).
//!
//! A thin, dependency-free consumer of the frame protocol: connect, read
//! HELLO, send SUBSCRIBE, then pull [`SubscriberEvent`]s — blocking
//! ([`Subscriber::next_event`]) or polled ([`Subscriber::try_next`], for
//! callers multiplexing many subscriptions on a few threads).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{decode, encode_bye, encode_subscribe, Message, PROTOCOL_VERSION};

/// What a subscriber receives from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriberEvent {
    /// One block of one subscribed variable.
    Data {
        /// Variable name.
        variable: String,
        /// Simulation time step.
        iteration: u64,
        /// Writing client rank, 0-based (identical across worlds).
        source: u64,
        /// Block payload bytes.
        bytes: Vec<u8>,
    },
    /// All of an iteration's frames have been delivered.
    IterationEnd {
        /// The completed iteration.
        iteration: u64,
        /// DATA frames the server published for it (before any
        /// per-subscriber filtering).
        blocks: u64,
    },
    /// This subscriber fell behind; iterations were dropped
    /// (drop-to-latest — the publisher never blocks).
    Lag {
        /// DATA frames missed.
        dropped_frames: u64,
        /// First iteration delivered after the gap.
        resume_iteration: u64,
    },
    /// The server is closing the stream.
    Bye,
}

/// A connected subscriber. See the crate docs for a usage example.
pub struct Subscriber {
    stream: TcpStream,
    buf: Vec<u8>,
    simulation: String,
    nonblocking: bool,
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl Subscriber {
    /// Connect and read the server's HELLO (blocking).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Subscriber> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut sub = Subscriber {
            stream,
            buf: Vec::new(),
            simulation: String::new(),
            nonblocking: false,
        };
        match sub.read_message_blocking()? {
            Message::Hello {
                version,
                simulation,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(proto_err("protocol version mismatch"));
                }
                sub.simulation = simulation;
            }
            _ => return Err(proto_err("expected HELLO")),
        }
        Ok(sub)
    }

    /// Simulation name announced by the server.
    pub fn simulation(&self) -> &str {
        &self.simulation
    }

    /// Subscribe to the named variables (empty = every variable). A late
    /// subscriber first receives a snapshot of the most recent completed
    /// iteration, then the live stream.
    pub fn subscribe(&mut self, vars: &[&str]) -> io::Result<()> {
        self.write_all_ignoring_wouldblock(&encode_subscribe(vars))
    }

    /// Tell the server we are leaving, without waiting for its BYE.
    pub fn bye(&mut self) -> io::Result<()> {
        self.write_all_ignoring_wouldblock(&encode_bye())
    }

    /// Next event, blocking until one arrives. `Err(UnexpectedEof)` when
    /// the server goes away without a BYE.
    pub fn next_event(&mut self) -> io::Result<SubscriberEvent> {
        if self.nonblocking {
            self.stream.set_nonblocking(false)?;
            self.nonblocking = false;
        }
        let msg = self.read_message_blocking()?;
        Self::to_event(msg)
    }

    /// Poll for an event without blocking; `Ok(None)` when nothing is
    /// ready yet.
    pub fn try_next(&mut self) -> io::Result<Option<SubscriberEvent>> {
        if !self.nonblocking {
            self.stream.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        loop {
            if let Some((msg, used)) = decode(&self.buf)? {
                self.buf.drain(..used);
                return Self::to_event(msg).map(Some);
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn to_event(msg: Message) -> io::Result<SubscriberEvent> {
        Ok(match msg {
            Message::Data {
                variable,
                iteration,
                source,
                bytes,
            } => SubscriberEvent::Data {
                variable,
                iteration,
                source,
                bytes,
            },
            Message::IterEnd { iteration, blocks } => {
                SubscriberEvent::IterationEnd { iteration, blocks }
            }
            Message::Lag {
                dropped_frames,
                resume_iteration,
            } => SubscriberEvent::Lag {
                dropped_frames,
                resume_iteration,
            },
            Message::Bye => SubscriberEvent::Bye,
            Message::Hello { .. } | Message::Subscribe { .. } => {
                return Err(proto_err("unexpected frame mid-stream"))
            }
        })
    }

    fn read_message_blocking(&mut self) -> io::Result<Message> {
        loop {
            if let Some((msg, used)) = decode(&self.buf)? {
                self.buf.drain(..used);
                return Ok(msg);
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Write a small control frame even if the stream is in nonblocking
    /// mode (spin briefly on WouldBlock — control frames are tens of
    /// bytes, far below any socket buffer).
    fn write_all_ignoring_wouldblock(&mut self, mut bytes: &[u8]) -> io::Result<()> {
        while !bytes.is_empty() {
            match self.stream.write(bytes) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => bytes = &bytes[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}
