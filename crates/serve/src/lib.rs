//! Subscriber streaming tier: serve live iterations to many concurrent
//! consumers.
//!
//! The paper's dedicated core stops at files; this crate makes the same
//! core a *publisher*. Every completed iteration's blocks are streamed as
//! length-prefixed frames over TCP to any number of subscribers —
//! dashboards, steering tools, downstream pipelines — with
//! per-subscriber bounded queues (a slow consumer lags and is told so; it
//! never slows the simulation) and snapshot catch-up for late joiners.
//!
//! Three pieces:
//!
//! * [`protocol`] — the frame protocol (HELLO / SUBSCRIBE / DATA /
//!   ITER-END / LAG / BYE) with hostile-length validation.
//! * [`StreamServer`] — the fan-out server: one nonblocking poll thread
//!   owns the sockets; [`StreamServer::publish`] runs on the dedicated
//!   core's event path and only bumps refcounts into bounded queues.
//! * [`Subscriber`] — the client library.
//!
//! The server is transport-only: it takes [`ServeOptions`] and
//! [`PublishBlock`]s and knows nothing about XML configuration or the
//! `VariableStore` — `damaris_core` wires it in as a `ServePlugin`
//! (thread world, zero-copy [`Payload::Shm`] out of the shared segment)
//! and a `ServeSink` (process mode, owned copies).
//!
//! ```no_run
//! use damaris_serve::{Subscriber, SubscriberEvent};
//!
//! let mut sub = Subscriber::connect("127.0.0.1:7070")?;
//! sub.subscribe(&["pressure"])?;
//! loop {
//!     match sub.next_event()? {
//!         SubscriberEvent::Data { variable, iteration, bytes, .. } => {
//!             println!("{variable}@{iteration}: {} bytes", bytes.len());
//!         }
//!         SubscriberEvent::Bye => break,
//!         _ => {}
//!     }
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod protocol;

mod client;
mod server;

pub use client::{Subscriber, SubscriberEvent};
pub use protocol::{Message, Payload, PROTOCOL_VERSION};
pub use server::{PublishBlock, ServeOptions, ServeStats, StreamServer};
