//! Wire protocol for the subscriber streaming tier.
//!
//! Every message is one length-prefixed frame, little-endian throughout:
//!
//! ```text
//! [u32 len] [u8 kind] [body …]          len counts kind + body
//! ```
//!
//! | kind | name      | direction | body |
//! |------|-----------|-----------|------|
//! | 1    | HELLO     | S → C     | `u32 version`, `u16 n`, simulation name |
//! | 2    | SUBSCRIBE | C → S     | `u16 count`, count × (`u16 n`, var name); 0 = all |
//! | 3    | DATA      | S → C     | `u16 n`, var name, `u64 iteration`, `u64 source`, `u64 len`, bytes |
//! | 4    | ITER_END  | S → C     | `u64 iteration`, `u64 blocks` |
//! | 5    | LAG       | S → C     | `u64 dropped_frames`, `u64 resume_iteration` |
//! | 6    | BYE       | both      | empty |
//!
//! Frames are decoded from a byte buffer without copying the payload until
//! a complete frame is present; the length field is validated against
//! [`MAX_FRAME`] *before* any allocation (the mini-mpi rule: never trust a
//! peer-supplied length).

use std::io;
use std::sync::Arc;

use damaris_shm::BlockRef;

/// Protocol version carried in HELLO.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's `len` field (kind + body). A frame claiming
/// more than this is a protocol error, not an allocation request.
pub const MAX_FRAME: usize = 256 << 20;

pub(crate) const KIND_HELLO: u8 = 1;
pub(crate) const KIND_SUBSCRIBE: u8 = 2;
pub(crate) const KIND_DATA: u8 = 3;
pub(crate) const KIND_ITER_END: u8 = 4;
pub(crate) const KIND_LAG: u8 = 5;
pub(crate) const KIND_BYE: u8 = 6;

/// A DATA frame's payload: either a zero-copy view into the shared
/// segment (thread world — the bytes stay in shm until the last
/// subscriber frame referencing them is sent) or an owned copy (process
/// mode, where the sink only sees borrowed views of the mapping).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Refcounted view into the shared segment.
    Shm(BlockRef),
    /// Owned bytes, shared between subscriber queues.
    Owned(Arc<Vec<u8>>),
}

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Shm(b) => b.as_slice(),
            Payload::Owned(v) => v,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One encoded outbound frame: pre-built header bytes plus an optional
/// out-of-line payload. Shared as `Arc<Frame>` across subscriber queues so
/// a 1000-way fan-out clones one refcount, not one buffer.
#[derive(Debug)]
pub struct Frame {
    header: Vec<u8>,
    payload: Option<Payload>,
}

fn header(kind: u8, body_capacity: usize) -> Vec<u8> {
    let mut h = Vec::with_capacity(5 + body_capacity);
    h.extend_from_slice(&[0, 0, 0, 0, kind]);
    h
}

/// Patch the length prefix once the full frame size is known.
fn seal(mut h: Vec<u8>, payload_len: usize) -> Vec<u8> {
    let len = (h.len() - 4 + payload_len) as u32;
    h[..4].copy_from_slice(&len.to_le_bytes());
    h
}

fn push_str(h: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "name too long for the wire");
    h.extend_from_slice(&(s.len() as u16).to_le_bytes());
    h.extend_from_slice(s.as_bytes());
}

impl Frame {
    /// Server greeting.
    pub fn hello(simulation: &str) -> Frame {
        let mut h = header(KIND_HELLO, 6 + simulation.len());
        h.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        push_str(&mut h, simulation);
        Frame {
            header: seal(h, 0),
            payload: None,
        }
    }

    /// One block of one variable at one iteration.
    pub fn data(variable: &str, iteration: u64, source: u64, payload: Payload) -> Frame {
        let mut h = header(KIND_DATA, 26 + variable.len());
        push_str(&mut h, variable);
        h.extend_from_slice(&iteration.to_le_bytes());
        h.extend_from_slice(&source.to_le_bytes());
        h.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        Frame {
            header: seal(h, payload.len()),
            payload: Some(payload),
        }
    }

    /// Iteration boundary; `blocks` is the published DATA frame count.
    pub fn iter_end(iteration: u64, blocks: u64) -> Frame {
        let mut h = header(KIND_ITER_END, 16);
        h.extend_from_slice(&iteration.to_le_bytes());
        h.extend_from_slice(&blocks.to_le_bytes());
        Frame {
            header: seal(h, 0),
            payload: None,
        }
    }

    /// Slow-consumer notice: `dropped_frames` DATA frames were skipped;
    /// the live stream resumes at `resume_iteration`.
    pub fn lag(dropped_frames: u64, resume_iteration: u64) -> Frame {
        let mut h = header(KIND_LAG, 16);
        h.extend_from_slice(&dropped_frames.to_le_bytes());
        h.extend_from_slice(&resume_iteration.to_le_bytes());
        Frame {
            header: seal(h, 0),
            payload: None,
        }
    }

    /// Clean close (either direction).
    pub fn bye() -> Frame {
        Frame {
            header: seal(header(KIND_BYE, 0), 0),
            payload: None,
        }
    }

    /// Header bytes (length prefix, kind, fixed fields).
    pub fn header_bytes(&self) -> &[u8] {
        &self.header
    }

    /// Out-of-line payload bytes (empty slice for header-only frames).
    pub fn payload_bytes(&self) -> &[u8] {
        self.payload.as_ref().map(Payload::as_slice).unwrap_or(&[])
    }

    /// Total wire size of the frame.
    pub fn wire_len(&self) -> usize {
        self.header.len() + self.payload.as_ref().map(Payload::len).unwrap_or(0)
    }

    /// True for DATA frames (the only kind the lag policy may drop).
    pub fn is_data(&self) -> bool {
        self.header[4] == KIND_DATA
    }
}

/// Encode a client SUBSCRIBE frame. An empty list subscribes to every
/// variable.
pub fn encode_subscribe(vars: &[&str]) -> Vec<u8> {
    let mut h = header(
        KIND_SUBSCRIBE,
        2 + vars.iter().map(|v| 2 + v.len()).sum::<usize>(),
    );
    h.extend_from_slice(&(vars.len() as u16).to_le_bytes());
    for v in vars {
        push_str(&mut h, v);
    }
    seal(h, 0)
}

/// Encode a BYE frame as raw bytes (client side).
pub fn encode_bye() -> Vec<u8> {
    seal(header(KIND_BYE, 0), 0)
}

/// A decoded inbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Server greeting.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Simulation name from the configuration.
        simulation: String,
    },
    /// Client subscription request; empty = all variables.
    Subscribe {
        /// Requested variable names.
        vars: Vec<String>,
    },
    /// One block of one variable.
    Data {
        /// Variable name.
        variable: String,
        /// Simulation time step.
        iteration: u64,
        /// Writing client rank (0-based, identical across worlds).
        source: u64,
        /// Block payload.
        bytes: Vec<u8>,
    },
    /// Iteration boundary.
    IterEnd {
        /// Completed iteration.
        iteration: u64,
        /// DATA frames published for it.
        blocks: u64,
    },
    /// The subscriber fell behind and iterations were dropped.
    Lag {
        /// DATA frames this subscriber missed.
        dropped_frames: u64,
        /// First iteration delivered after the gap.
        resume_iteration: u64,
    },
    /// Clean close.
    Bye,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    )
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(bad("truncated body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("name is not utf-8"))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad("trailing bytes in body"));
        }
        Ok(())
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame,
/// `Ok(Some((message, consumed)))` on success, and an error for malformed
/// or oversized frames (the connection should be dropped).
pub fn decode(buf: &[u8]) -> io::Result<Option<(Message, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(bad("length out of range"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let kind = buf[4];
    let mut r = Reader {
        buf: &buf[5..4 + len],
        pos: 0,
    };
    let msg = match kind {
        KIND_HELLO => {
            let version = r.u32()?;
            let simulation = r.string()?;
            Message::Hello {
                version,
                simulation,
            }
        }
        KIND_SUBSCRIBE => {
            let count = r.u16()? as usize;
            let mut vars = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                vars.push(r.string()?);
            }
            Message::Subscribe { vars }
        }
        KIND_DATA => {
            let variable = r.string()?;
            let iteration = r.u64()?;
            let source = r.u64()?;
            let n = r.u64()? as usize;
            let bytes = r.take(n)?.to_vec();
            Message::Data {
                variable,
                iteration,
                source,
                bytes,
            }
        }
        KIND_ITER_END => Message::IterEnd {
            iteration: r.u64()?,
            blocks: r.u64()?,
        },
        KIND_LAG => Message::Lag {
            dropped_frames: r.u64()?,
            resume_iteration: r.u64()?,
        },
        KIND_BYE => Message::Bye,
        other => return Err(bad(&format!("unknown kind {other}"))),
    };
    r.done()?;
    Ok(Some((msg, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(f: &Frame) -> Vec<u8> {
        let mut v = f.header_bytes().to_vec();
        v.extend_from_slice(f.payload_bytes());
        v
    }

    #[test]
    fn frames_round_trip() {
        let cases: Vec<(Frame, Message)> = vec![
            (
                Frame::hello("sim"),
                Message::Hello {
                    version: PROTOCOL_VERSION,
                    simulation: "sim".into(),
                },
            ),
            (
                Frame::data("u", 7, 3, Payload::Owned(Arc::new(vec![1, 2, 3]))),
                Message::Data {
                    variable: "u".into(),
                    iteration: 7,
                    source: 3,
                    bytes: vec![1, 2, 3],
                },
            ),
            (
                Frame::iter_end(7, 16),
                Message::IterEnd {
                    iteration: 7,
                    blocks: 16,
                },
            ),
            (
                Frame::lag(40, 9),
                Message::Lag {
                    dropped_frames: 40,
                    resume_iteration: 9,
                },
            ),
            (Frame::bye(), Message::Bye),
        ];
        for (frame, want) in cases {
            let bytes = wire(&frame);
            assert_eq!(frame.wire_len(), bytes.len());
            let (got, used) = decode(&bytes).unwrap().expect("complete");
            assert_eq!(used, bytes.len());
            assert_eq!(got, want);
        }
    }

    #[test]
    fn subscribe_encodes_and_decodes() {
        let bytes = encode_subscribe(&["u", "pressure"]);
        let (msg, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(
            msg,
            Message::Subscribe {
                vars: vec!["u".into(), "pressure".into()]
            }
        );
        let (msg, _) = decode(&encode_subscribe(&[])).unwrap().unwrap();
        assert_eq!(msg, Message::Subscribe { vars: vec![] });
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = wire(&Frame::data(
            "v",
            1,
            0,
            Payload::Owned(Arc::new(vec![9; 64])),
        ));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).unwrap().is_none(), "cut at {cut}");
        }
        // Two frames back to back: the first decode consumes exactly one.
        let mut two = bytes.clone();
        two.extend_from_slice(&wire(&Frame::bye()));
        let (_, used) = decode(&two).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        let (msg, _) = decode(&two[used..]).unwrap().unwrap();
        assert_eq!(msg, Message::Bye);
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // Oversized length claim.
        let mut b = Vec::new();
        b.extend_from_slice(&(u32::MAX).to_le_bytes());
        b.push(KIND_BYE);
        assert!(decode(&b).is_err());
        // Zero-length frame (no kind byte).
        assert!(decode(&0u32.to_le_bytes()).is_err());
        // Unknown kind.
        let mut b = Vec::new();
        b.extend_from_slice(&1u32.to_le_bytes());
        b.push(99);
        assert!(decode(&b).is_err());
        // Truncated body: DATA claiming more payload than the frame holds.
        let mut b = Vec::new();
        b.extend_from_slice(&12u32.to_le_bytes());
        b.push(KIND_DATA);
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'u');
        b.extend_from_slice(&[0; 8]);
        assert!(decode(&b).is_err());
    }
}
