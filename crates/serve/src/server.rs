//! The streaming server: a nonblocking TCP fan-out beside the dedicated
//! core.
//!
//! One poll thread owns every socket (no external async runtime — sockets
//! are `set_nonblocking(true)` and the loop makes a pass over accept /
//! read / write, sleeping briefly only when nothing moved, the same idiom
//! as mini-mpi's writer threads). The publisher — the dedicated core's
//! plugin or sink, at iteration completion — never touches a socket: it
//! encodes each block once into an `Arc<Frame>` and appends the arcs to
//! per-subscriber bounded queues, so the publish path is a handful of
//! refcount bumps and queue pushes regardless of subscriber count.
//!
//! **Lag policy.** The publisher never blocks. A subscriber whose queue
//! cannot take a whole iteration gets none of it: the iteration is
//! dropped for that subscriber, and once space frees up a LAG frame
//! (dropped frame count + resume iteration) precedes the next delivered
//! iteration. Iterations are therefore delivered whole or not at all —
//! `drop-to-latest`, never `block-publisher`.
//!
//! **Catch-up.** The most recent published iteration is retained (the
//! frames hold [`Payload::Shm`] clones, i.e. the bytes stay in the shared
//! segment); a subscriber that joins late receives it as a snapshot
//! before the live stream.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::protocol::{decode, Frame, Message, Payload};

/// Server configuration (the `<serve>` XML element, decoupled from the
/// configuration crate).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, `addr:port` (port 0 = ephemeral).
    pub listen: String,
    /// Per-subscriber bounded send queue, in frames (≥ 1).
    pub queue_frames: usize,
    /// Simulation name sent in HELLO.
    pub simulation: String,
    /// When set, the bound address is written here (write + rename, so
    /// readers never observe a partial file) — ephemeral-port discovery
    /// for dashboards and tests.
    pub addr_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            queue_frames: 256,
            simulation: String::new(),
            addr_file: None,
        }
    }
}

/// One block handed to [`StreamServer::publish`].
#[derive(Debug)]
pub struct PublishBlock {
    /// Variable name (what subscribers filter on).
    pub variable: String,
    /// Writing client rank, 0-based.
    pub source: u64,
    /// Block bytes (zero-copy shm view or owned copy).
    pub payload: Payload,
}

/// Counter snapshot; see [`StreamServer::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub subscribers_connected: u64,
    /// Currently connected subscribers.
    pub subscribers_current: u64,
    /// High-water mark of concurrent subscribers.
    pub subscribers_peak: u64,
    /// Iterations published.
    pub iterations_published: u64,
    /// DATA frames built by the publisher (per iteration, not per
    /// subscriber).
    pub data_frames_published: u64,
    /// Frames fully written to sockets (all kinds, summed over
    /// subscribers).
    pub frames_sent: u64,
    /// Bytes written to sockets.
    pub bytes_sent: u64,
    /// LAG frames delivered (one per drop gap per subscriber).
    pub lag_events: u64,
    /// DATA frames dropped by the lag policy (summed over subscribers).
    pub frames_dropped: u64,
    /// Snapshot catch-ups served to late joiners.
    pub snapshots_served: u64,
    /// Publish calls.
    pub publishes: u64,
    /// Total nanoseconds spent inside `publish` — the dedicated core's
    /// event path pays exactly this, sockets pay the rest.
    pub publish_ns_total: u64,
    /// Worst single `publish` call in nanoseconds (the bound the
    /// slow-consumer test asserts on).
    pub publish_ns_max: u64,
}

#[derive(Default)]
struct StatsInner {
    subscribers_connected: AtomicU64,
    subscribers_current: AtomicU64,
    subscribers_peak: AtomicU64,
    iterations_published: AtomicU64,
    data_frames_published: AtomicU64,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    lag_events: AtomicU64,
    frames_dropped: AtomicU64,
    snapshots_served: AtomicU64,
    publishes: AtomicU64,
    publish_ns_total: AtomicU64,
    publish_ns_max: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServeStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeStats {
            subscribers_connected: ld(&self.subscribers_connected),
            subscribers_current: ld(&self.subscribers_current),
            subscribers_peak: ld(&self.subscribers_peak),
            iterations_published: ld(&self.iterations_published),
            data_frames_published: ld(&self.data_frames_published),
            frames_sent: ld(&self.frames_sent),
            bytes_sent: ld(&self.bytes_sent),
            lag_events: ld(&self.lag_events),
            frames_dropped: ld(&self.frames_dropped),
            snapshots_served: ld(&self.snapshots_served),
            publishes: ld(&self.publishes),
            publish_ns_total: ld(&self.publish_ns_total),
            publish_ns_max: ld(&self.publish_ns_max),
        }
    }
}

/// A published DATA frame plus the variable name subscribers filter on.
struct DataFrame {
    variable: String,
    frame: Arc<Frame>,
}

/// One published iteration, kept for snapshot catch-up.
struct Publication {
    iteration: u64,
    data: Vec<DataFrame>,
    end: Arc<Frame>,
}

/// Per-subscriber state, shared between the poll thread (drains the
/// queue into the socket) and the publisher (fills it).
#[derive(Default)]
struct SubState {
    /// Encoded frames awaiting transmission, oldest first.
    queue: VecDeque<Arc<Frame>>,
    /// Bytes of `queue.front()` already written (partial writes).
    write_pos: usize,
    /// `None` until SUBSCRIBE arrives; `Some(empty)` = every variable.
    vars: Option<Vec<String>>,
    /// Highest iteration already offered to this subscriber (enqueued
    /// *or* dropped). Closes the catch-up/live race: the SUBSCRIBE
    /// handler and the publisher may both see the same publication, and
    /// exactly one of them wins.
    last_iter: Option<u64>,
    /// DATA frames dropped since the last LAG frame was queued.
    dropped: u64,
    /// In a drop gap: the next delivered iteration is preceded by LAG.
    lagging: bool,
    /// Socket gone (error / BYE / EOF); the poll thread reaps it.
    closed: bool,
}

impl SubState {
    fn wants(&self, variable: &str) -> bool {
        match &self.vars {
            None => false,
            Some(v) if v.is_empty() => true,
            Some(v) => v.iter().any(|w| w == variable),
        }
    }
}

struct Inner {
    stats: StatsInner,
    /// Live subscriber states; the poll thread owns the sockets.
    subs: Mutex<Vec<Arc<Mutex<SubState>>>>,
    /// Most recent published iteration, for catch-up.
    latest: Mutex<Option<Arc<Publication>>>,
    queue_frames: usize,
    simulation: String,
    closing: AtomicBool,
}

impl Inner {
    /// Queue one whole iteration onto a subscriber, or none of it.
    fn enqueue(&self, s: &mut SubState, publication: &Publication) -> bool {
        if s.last_iter
            .is_some_and(|last| publication.iteration <= last)
        {
            return false;
        }
        s.last_iter = Some(publication.iteration);
        let wanted: Vec<&Arc<Frame>> = publication
            .data
            .iter()
            .filter(|d| s.wants(&d.variable))
            .map(|d| &d.frame)
            .collect();
        let need = wanted.len() + 1 + usize::from(s.lagging);
        if self.queue_frames.saturating_sub(s.queue.len()) < need {
            // Whole-iteration drop: the subscriber either sees an
            // iteration completely or not at all.
            s.lagging = true;
            s.dropped += wanted.len() as u64;
            self.stats
                .frames_dropped
                .fetch_add(wanted.len() as u64, Ordering::Relaxed);
            return false;
        }
        if s.lagging {
            s.queue
                .push_back(Arc::new(Frame::lag(s.dropped, publication.iteration)));
            s.lagging = false;
            s.dropped = 0;
            self.stats.lag_events.fetch_add(1, Ordering::Relaxed);
        }
        for f in wanted {
            s.queue.push_back(Arc::clone(f));
        }
        s.queue.push_back(Arc::clone(&publication.end));
        true
    }
}

/// The subscriber-facing streaming server. See the module docs for the
/// threading model and lag policy.
pub struct StreamServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    poll: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StreamServer {
    /// Bind, write the `addr_file` if configured, and start the poll
    /// thread.
    pub fn bind(opts: ServeOptions) -> io::Result<StreamServer> {
        let listener = TcpListener::bind(&opts.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        if let Some(path) = &opts.addr_file {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, format!("{local_addr}\n"))?;
            std::fs::rename(&tmp, path)?;
        }
        let inner = Arc::new(Inner {
            stats: StatsInner::default(),
            subs: Mutex::new(Vec::new()),
            latest: Mutex::new(None),
            queue_frames: opts.queue_frames.max(1),
            simulation: opts.simulation.clone(),
            closing: AtomicBool::new(false),
        });
        let poll_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("damaris-serve".to_string())
            .spawn(move || poll_loop(poll_inner, listener))?;
        Ok(StreamServer {
            inner,
            local_addr,
            poll: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (resolves `listen="…:0"` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats.snapshot()
    }

    /// Publish one completed iteration to every subscriber.
    ///
    /// Runs on the dedicated core's event path: it encodes each block
    /// header once, retains the iteration for catch-up, and appends arcs
    /// to subscriber queues — no socket I/O, no blocking, bounded work.
    pub fn publish(&self, iteration: u64, blocks: Vec<PublishBlock>) {
        let start = Instant::now();
        let data: Vec<DataFrame> = blocks
            .into_iter()
            .map(|b| DataFrame {
                frame: Arc::new(Frame::data(&b.variable, iteration, b.source, b.payload)),
                variable: b.variable,
            })
            .collect();
        let publication = Arc::new(Publication {
            iteration,
            end: Arc::new(Frame::iter_end(iteration, data.len() as u64)),
            data,
        });
        let st = &self.inner.stats;
        st.iterations_published.fetch_add(1, Ordering::Relaxed);
        st.data_frames_published
            .fetch_add(publication.data.len() as u64, Ordering::Relaxed);
        // Retain for late joiners, then fan out. Subscribers are locked
        // one at a time; each enqueue is refcount bumps + queue pushes.
        *self.inner.latest.lock() = Some(Arc::clone(&publication));
        let subs: Vec<_> = self.inner.subs.lock().clone();
        for sub in subs {
            let mut s = sub.lock();
            if !s.closed && s.vars.is_some() {
                self.inner.enqueue(&mut s, &publication);
            }
        }
        let ns = start.elapsed().as_nanos() as u64;
        st.publishes.fetch_add(1, Ordering::Relaxed);
        st.publish_ns_total.fetch_add(ns, Ordering::Relaxed);
        st.publish_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Stop serving: queue BYE to every subscriber, give the poll thread
    /// until `drain` to flush, then close everything and join. Idempotent.
    pub fn shutdown(&self, drain: Duration) {
        let Some(handle) = self.poll.lock().take() else {
            return;
        };
        // Queue a BYE for every live subscriber; the poll thread keeps
        // draining until queues are empty or the deadline passes.
        {
            let subs = self.inner.subs.lock();
            for sub in subs.iter() {
                let mut s = sub.lock();
                if !s.closed {
                    s.queue.push_back(Arc::new(Frame::bye()));
                }
            }
        }
        self.inner.closing.store(true, Ordering::Release);
        let deadline = Instant::now() + drain;
        // The poll thread exits once drained; enforce the deadline here
        // so a wedged consumer cannot hold shutdown hostage.
        while Instant::now() < deadline && !handle.is_finished() {
            std::thread::sleep(Duration::from_millis(1));
        }
        for sub in self.inner.subs.lock().iter() {
            sub.lock().closed = true;
        }
        let _ = handle.join();
        // Release the retained iteration (and its shm references).
        *self.inner.latest.lock() = None;
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_millis(200));
    }
}

/// One connection as seen by the poll thread.
struct Conn {
    stream: TcpStream,
    state: Arc<Mutex<SubState>>,
    read_buf: Vec<u8>,
}

fn poll_loop(inner: Arc<Inner>, listener: TcpListener) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let closing = inner.closing.load(Ordering::Acquire);
        let mut progress = false;

        // Accept every pending connection (unless shutting down).
        if !closing {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let state = Arc::new(Mutex::new(SubState::default()));
                        state
                            .lock()
                            .queue
                            .push_back(Arc::new(Frame::hello(&inner.simulation)));
                        inner.subs.lock().push(Arc::clone(&state));
                        let st = &inner.stats;
                        st.subscribers_connected.fetch_add(1, Ordering::Relaxed);
                        let now = st.subscribers_current.fetch_add(1, Ordering::Relaxed) + 1;
                        st.subscribers_peak.fetch_max(now, Ordering::Relaxed);
                        conns.push(Conn {
                            stream,
                            state,
                            read_buf: Vec::new(),
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        for conn in &mut conns {
            if conn.state.lock().closed {
                continue;
            }
            match service_conn(&inner, conn, closing) {
                Ok(moved) => progress |= moved,
                Err(_) => conn.state.lock().closed = true,
            }
        }

        // Reap closed connections.
        let before = conns.len();
        conns.retain(|c| !c.state.lock().closed);
        if conns.len() != before {
            let gone = (before - conns.len()) as u64;
            inner
                .stats
                .subscribers_current
                .fetch_sub(gone, Ordering::Relaxed);
            inner.subs.lock().retain(|s| !s.lock().closed);
            progress = true;
        }

        if closing {
            // Drained (or force-closed by shutdown's deadline)? Exit.
            let done = conns.iter().all(|c| {
                let s = c.state.lock();
                s.closed || s.queue.is_empty()
            });
            if done {
                for c in &conns {
                    let _ = c.stream.shutdown(std::net::Shutdown::Both);
                }
                inner.stats.subscribers_current.store(0, Ordering::Relaxed);
                return;
            }
        }

        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Read what the peer sent, then write what we owe it. Returns whether
/// any bytes moved; `Err` closes the connection.
fn service_conn(inner: &Inner, conn: &mut Conn, closing: bool) -> io::Result<bool> {
    let mut progress = false;

    // Inbound: SUBSCRIBE / BYE.
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed its end. Anything still queued is moot.
                conn.state.lock().closed = true;
                return Ok(true);
            }
            Ok(n) => {
                progress = true;
                conn.read_buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut consumed = 0;
    while let Some((msg, used)) = decode(&conn.read_buf[consumed..])? {
        consumed += used;
        match msg {
            Message::Subscribe { vars } => {
                let mut s = conn.state.lock();
                s.vars = Some(vars);
                // Snapshot catch-up: the latest completed iteration,
                // queued ahead of any live publication (unless we are
                // already shutting down).
                if !closing {
                    let latest = inner.latest.lock().clone();
                    if let Some(publication) = latest {
                        if inner.enqueue(&mut s, &publication) {
                            inner.stats.snapshots_served.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Message::Bye => {
                conn.state.lock().closed = true;
                return Ok(true);
            }
            // Anything else from a client is a protocol error.
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected frame from subscriber",
                ))
            }
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }

    // Outbound: drain the frame queue as far as the socket allows.
    let mut s = conn.state.lock();
    'frames: while let Some(frame) = s.queue.front().cloned() {
        let header = frame.header_bytes();
        let payload = frame.payload_bytes();
        let total = header.len() + payload.len();
        while s.write_pos < total {
            let (src, off) = if s.write_pos < header.len() {
                (header, s.write_pos)
            } else {
                (payload, s.write_pos - header.len())
            };
            match conn.stream.write(&src[off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    progress = true;
                    s.write_pos += n;
                    inner
                        .stats
                        .bytes_sent
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'frames,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        s.queue.pop_front();
        s.write_pos = 0;
        inner.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
    Ok(progress)
}
