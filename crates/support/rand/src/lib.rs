//! Minimal in-tree stand-in for the `rand` crate (0.9-style API).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`] and [`Rng::random`] for the primitive
//! types this workspace draws. Deterministic for a given seed, which is
//! all the simulators need; no cryptographic claims.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl StandardUniform for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` using 24 bits.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing random-value methods (rand 0.9 naming).
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
