//! Regex-subset string generation backing `impl Strategy for &str`.
//!
//! Supports the constructs the workspace's property tests use:
//! literals, escapes (`\r`, `\n`, `\t`, `\\`), character classes with
//! ranges / negation / `&&`-intersection (`[a-z]`, `[^\r]`,
//! `[ -~&&[^\r]]`), the Unicode-category shorthand `\PC` ("not control",
//! generated as printable ASCII), and the quantifiers `{n}`, `{m,n}`,
//! `?`, `*`, `+`.
//!
//! Generation draws from an ASCII universe (tab, LF, CR, 0x20–0x7E);
//! generating a subset of a pattern's language is sound for property
//! tests — every produced string still matches the pattern.

use crate::TestRng;

/// All characters a class may draw from.
fn universe() -> impl Iterator<Item = char> {
    ['\t', '\n', '\r']
        .into_iter()
        .chain((0x20u8..=0x7e).map(|b| b as char))
}

/// A set of candidate characters.
#[derive(Debug, Clone)]
struct CharSet(Vec<char>);

impl CharSet {
    fn from_pred(pred: impl Fn(char) -> bool) -> Self {
        CharSet(universe().filter(|&c| pred(c)).collect())
    }

    fn singleton(c: char) -> Self {
        CharSet(vec![c])
    }

    fn intersect(&self, other: &CharSet) -> CharSet {
        CharSet(
            self.0
                .iter()
                .copied()
                .filter(|c| other.0.contains(c))
                .collect(),
        )
    }
}

/// One atom of the pattern plus its repetition bounds.
#[derive(Debug, Clone)]
struct Group {
    set: CharSet,
    min: usize,
    max: usize,
}

/// A compiled pattern: a sequence of repeated character sets.
#[derive(Debug, Clone)]
pub struct Pattern {
    groups: Vec<Group>,
}

impl Pattern {
    /// Compile the supported regex subset; panics on constructs outside
    /// it, which is what a typo in a test strategy should do.
    pub fn compile(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut groups = Vec::new();
        while i < chars.len() {
            let set = parse_atom(&chars, &mut i);
            let (min, max) = parse_quantifier(&chars, &mut i);
            groups.push(Group { set, min, max });
        }
        Pattern { groups }
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for g in &self.groups {
            let n = g.min + rng.below((g.max - g.min + 1) as u64) as usize;
            if g.set.0.is_empty() {
                continue; // empty class can only match zero occurrences
            }
            for _ in 0..n {
                out.push(g.set.0[rng.below(g.set.0.len() as u64) as usize]);
            }
        }
        out
    }
}

fn parse_atom(chars: &[char], i: &mut usize) -> CharSet {
    match chars[*i] {
        '[' => {
            *i += 1;
            parse_class(chars, i)
        }
        '\\' => {
            *i += 1;
            let set = parse_escape(chars, i);
            *i += 1;
            set
        }
        '.' => {
            *i += 1;
            CharSet::from_pred(|c| c != '\n')
        }
        c => {
            *i += 1;
            CharSet::singleton(c)
        }
    }
}

/// Escapes, with `*i` on the escape's identifying character.
fn parse_escape(chars: &[char], i: &mut usize) -> CharSet {
    match chars[*i] {
        'r' => CharSet::singleton('\r'),
        'n' => CharSet::singleton('\n'),
        't' => CharSet::singleton('\t'),
        // \PC / \pC Unicode one-letter category (only C, control, is used):
        // \PC = NOT control → printable; \pC = control.
        'P' | 'p' => {
            let negated = chars[*i] == 'P';
            *i += 1;
            assert!(
                chars.get(*i) == Some(&'C'),
                "only the C (control) category is supported in \\p/\\P"
            );
            if negated {
                CharSet::from_pred(|c| !c.is_control())
            } else {
                CharSet::from_pred(|c| c.is_control())
            }
        }
        c
        @ ('\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '-' | '^' | '$' | '*' | '+' | '?') => {
            CharSet::singleton(c)
        }
        other => panic!("unsupported escape \\{other} in string strategy"),
    }
}

/// Parse a class body after `[`, consuming the closing `]`.
fn parse_class(chars: &[char], i: &mut usize) -> CharSet {
    let negated = chars.get(*i) == Some(&'^');
    if negated {
        *i += 1;
    }
    let mut members: Vec<char> = Vec::new();
    let mut intersections: Vec<CharSet> = Vec::new();
    loop {
        match chars.get(*i) {
            None => panic!("unterminated character class"),
            Some(']') => {
                *i += 1;
                break;
            }
            Some('&') if chars.get(*i + 1) == Some(&'&') => {
                *i += 2;
                // Intersection operand: a nested class or a bare item run.
                let rhs = if chars.get(*i) == Some(&'[') {
                    *i += 1;
                    parse_class(chars, i)
                } else {
                    // Bare items up to `]` form the operand.
                    let mut inner = Vec::new();
                    while chars.get(*i).is_some_and(|&c| c != ']') {
                        collect_class_item(chars, i, &mut inner);
                    }
                    CharSet(inner)
                };
                intersections.push(rhs);
            }
            Some(_) => collect_class_item(chars, i, &mut members),
        }
    }
    let mut set = if negated {
        CharSet::from_pred(|c| !members.contains(&c))
    } else {
        CharSet(members)
    };
    for rhs in &intersections {
        set = set.intersect(rhs);
    }
    set
}

/// One item inside a class: a literal, an escape, or a `a-z` range.
fn collect_class_item(chars: &[char], i: &mut usize, out: &mut Vec<char>) {
    let lo = match chars[*i] {
        '\\' => {
            *i += 1;
            let set = parse_escape(chars, i);
            *i += 1;
            // Multi-char escapes (\PC) contribute all their members and
            // cannot open a range.
            if set.0.len() != 1 {
                out.extend(set.0);
                return;
            }
            set.0[0]
        }
        c => {
            *i += 1;
            c
        }
    };
    // Range if a `-` follows and is not the final char before `]`.
    if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&c| c != ']') {
        *i += 1;
        let hi = match chars[*i] {
            '\\' => {
                *i += 1;
                let set = parse_escape(chars, i);
                *i += 1;
                assert!(set.0.len() == 1, "range upper bound must be a single char");
                set.0[0]
            }
            c => {
                *i += 1;
                c
            }
        };
        out.extend(universe().filter(|&c| c >= lo && c <= hi));
    } else {
        out.push(lo);
    }
}

/// Parse an optional quantifier; defaults to exactly one.
fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            *i += 1;
            let mut min = String::new();
            while chars[*i].is_ascii_digit() {
                min.push(chars[*i]);
                *i += 1;
            }
            let min: usize = min.parse().expect("quantifier lower bound");
            let max = if chars[*i] == ',' {
                *i += 1;
                let mut max = String::new();
                while chars[*i].is_ascii_digit() {
                    max.push(chars[*i]);
                    *i += 1;
                }
                max.parse().expect("quantifier upper bound")
            } else {
                min
            };
            assert!(chars[*i] == '}', "unterminated quantifier");
            *i += 1;
            (min, max)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::compile(pattern).generate(&mut TestRng::from_seed(seed))
    }

    #[test]
    fn simple_classes_and_quantifiers() {
        for seed in 0..50 {
            let s = gen("[a-z][a-z0-9]{0,6}", seed);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn xml_name_pattern() {
        for seed in 0..50 {
            let s = gen("[a-zA-Z_][a-zA-Z0-9_.-]{0,11}", seed);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(s.len() <= 12);
        }
    }

    #[test]
    fn intersection_excludes() {
        for seed in 0..100 {
            let s = gen("[ -~&&[^\r]]{0,24}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn not_control_category() {
        let mut long = false;
        for seed in 0..30 {
            let s = gen("\\PC{0,200}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.len() <= 200);
            long |= s.len() > 50;
        }
        assert!(long, "quantifier must reach long strings");
    }

    #[test]
    fn literals_and_escapes() {
        assert_eq!(gen("abc", 0), "abc");
        assert_eq!(gen("a\\.b", 0), "a.b");
        let s = gen("x{3}", 1);
        assert_eq!(s, "xxx");
    }
}
