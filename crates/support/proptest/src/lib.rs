//! Minimal in-tree stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`any`],
//! [`Just`], regex-subset string strategies (`impl Strategy for &str`),
//! [`collection::vec`], [`option::of`], the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*` macros and [`ProptestConfig`].
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is printed as generated
//! (each case runs under a deterministic per-test RNG, so failures
//! reproduce exactly on re-run).

use std::rc::Rc;

pub mod strings;

/// Deterministic xoshiro256++ RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test name), so each
    /// test gets an independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping (bias < 2^-64, irrelevant
        // for test generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the whole workspace's
        // property suites fast while still exploring meaningfully.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
///
/// Unlike real proptest there is no shrinking: `generate` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` generates leaves; `recurse` lifts a
    /// strategy for depth-`d` values into one for depth-`d+1` values.
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility but unused (sizes are bounded by the closure itself).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---- primitive strategies ------------------------------------------------

/// Types with a full-range uniform generator, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` a quarter of the time, otherwise `Some`.
    pub struct OptionStrategy<S>(S);

    /// `Option<T>` from an inner value strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    /// Interpret the string as a regex (the subset in
    /// [`strings::Pattern`]) and generate matching strings.
    fn generate(&self, rng: &mut TestRng) -> String {
        strings::Pattern::compile(self).generate(rng)
    }
}

// ---- macros --------------------------------------------------------------

/// Define property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current generated case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The usual `use proptest::prelude::*;` import set.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_option_and_oneof() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut saw_none = false;
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            let o = Strategy::generate(&crate::option::of(1usize..3), &mut rng);
            saw_none |= o.is_none();
            let c = Strategy::generate(&prop_oneof![Just(1), Just(2)], &mut rng);
            assert!(c == 1 || c == 2);
        }
        assert!(saw_none, "option::of must sometimes yield None");
        // Exact-size form.
        let exact = crate::collection::vec(any::<u8>(), 7usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 7);
    }

    #[test]
    fn flat_map_and_map_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = (2usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&s, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn recursive_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(4);
        let mut saw_node = false;
        for _ in 0..100 {
            match Strategy::generate(&s, &mut rng) {
                Tree::Leaf(v) => assert!(v < 10),
                Tree::Node(_) => saw_node = true,
            }
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, assume, trailing comma.
        #[test]
        fn macro_smoke((a, b) in (0u8..10, 0u8..10), flag in any::<bool>(),) {
            prop_assume!(a != 9);
            prop_assert!(a < 9 && b < 10);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
