//! Minimal in-tree stand-in for `rayon`.
//!
//! `par_iter`/`par_chunks`/`into_par_iter` & friends return ordinary
//! `std` iterators, so every downstream adapter (`map`, `zip`,
//! `enumerate`, `for_each`, `collect`) works unchanged — the work just
//! runs sequentially. Numerically this is *more* deterministic than real
//! rayon; the proxy-app step functions only rely on element-wise
//! independence, not on actual parallel speedup, for correctness.

/// The subset of `rayon::prelude` this workspace imports.
pub mod prelude {
    /// `into_par_iter()` for any owned iterable (ranges, vectors).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v[9], 18);
        let mut out = vec![0usize; 4];
        out.par_iter_mut()
            .zip(v.par_iter())
            .for_each(|(o, &x)| *o = x + 1);
        assert_eq!(out, vec![1, 3, 5, 7]);
        let sums: Vec<usize> = v.par_chunks(5).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![20, 70]);
        let mut buf = vec![1usize; 6];
        buf.par_chunks_mut(3)
            .enumerate()
            .for_each(|(i, c)| c[0] = i);
        assert_eq!(buf, vec![0, 1, 1, 1, 1, 1]);
    }
}
