//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc`-backed immutable byte buffer: cheap clones,
//! `Deref<Target = [u8]>`. That is the whole surface `mini-mpi` uses for
//! zero-copy message payloads.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(c.len(), 3);
        assert!(Bytes::new().is_empty());
    }
}
