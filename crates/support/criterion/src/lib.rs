//! Minimal in-tree stand-in for `criterion`.
//!
//! Provides the group/bencher API surface `benches/micro.rs` uses and a
//! simple measurement loop: warm up briefly, take `sample_size` samples of
//! an adaptively sized batch, report the median ns/iter (and derived
//! throughput when declared) on stdout. No plots, no statistics beyond the
//! median — enough to compare transports and codecs on one machine.

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the closure under test; runs and times the workload.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f`, storing the median ns/iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + batch sizing: aim for samples of ≥ ~1 ms each.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as usize;
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if started.elapsed() > budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (report nothing extra; rows were printed as run).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id, b.ns_per_iter);
        match self.throughput {
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                let gbps = n as f64 / b.ns_per_iter; // bytes/ns == GB/s
                line.push_str(&format!("  ({gbps:.3} GB/s)"));
            }
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let meps = n as f64 / b.ns_per_iter * 1e3; // Melem/s
                line.push_str(&format!("  ({meps:.1} Melem/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group-runner function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        g.throughput(Throughput::Bytes(8));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("enc", "rle").to_string(), "enc/rle");
        assert_eq!(BenchmarkId::from_parameter("8MiB").to_string(), "8MiB");
    }
}
