//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The container building this workspace has no registry access, so the
//! subset of `parking_lot` the workspace uses — `Mutex`, `RwLock`,
//! `Condvar` with `wait`/`wait_for`/`wait_until` taking `&mut` guards —
//! is provided here over `std::sync`. Poisoning is swallowed
//! (`parking_lot` has none): a panicking critical section does not poison
//! the lock for everyone else.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutex with `parking_lot`'s non-poisoning `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condvar.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |inner| {
            self.0.wait(inner).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |inner| {
            let (inner, res) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            inner
        });
        WaitTimeoutResult(timed_out)
    }

    /// Block until notified or the deadline `until` passed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }

    /// std's condvar consumes and returns the guard; parking_lot mutates it
    /// in place. Bridge the two by moving the inner guard through `f`.
    /// Sound because `f` (a std condvar wait) never panics with the lock
    /// held in our non-poisoning configuration.
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
    ) {
        // SAFETY: `guard.0` is a valid initialized guard; the value read
        // out is moved into `f`, which returns a replacement written back
        // before anyone can observe the gap, so no guard is ever dropped
        // twice or leaked (`f` never unwinds, per the doc above).
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = f(inner);
            std::ptr::write(&mut guard.0, inner);
        }
    }
}

/// Reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        assert!(cv.wait_until(&mut g, Instant::now()).timed_out());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicked holder");
    }
}
