//! Property tests for the analysis kernels: conservation, bounds and
//! panic-freedom on arbitrary grids.

use insitu::kernels::{histogram, isosurface, render, slice, Grid3};
use proptest::prelude::*;

fn grid_strategy() -> impl Strategy<Value = (Vec<f64>, usize, usize, usize)> {
    (2usize..10, 2usize..10, 2usize..8).prop_flat_map(|(nx, ny, nz)| {
        proptest::collection::vec(-1e6f64..1e6, nx * ny * nz)
            .prop_map(move |data| (data, nx, ny, nz))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Histogram conserves the sample count and covers the value range.
    #[test]
    fn histogram_conserves_counts((data, nx, ny, nz) in grid_strategy(), bins in 1usize..64) {
        let g = Grid3::new(&data, nx, ny, nz);
        let h = histogram(&g, bins);
        prop_assert_eq!(h.total(), (nx * ny * nz) as u64);
        prop_assert!(h.min <= h.max);
        prop_assert_eq!(h.counts.len(), bins.max(1));
    }

    /// Isosurface census is bounded by grid geometry: at most all cells
    /// active, at most 12 crossed edges per active cell.
    #[test]
    fn isosurface_bounds((data, nx, ny, nz) in grid_strategy(), iso in -1e6f64..1e6) {
        let g = Grid3::new(&data, nx, ny, nz);
        let census = isosurface(&g, iso);
        let cells = (nx - 1) * (ny - 1) * (nz - 1);
        prop_assert_eq!(census.total_cells, cells);
        prop_assert!(census.active_cells <= cells);
        prop_assert!(census.crossed_edges <= census.active_cells * 12);
        if census.active_cells > 0 {
            prop_assert!(census.crossed_edges >= census.active_cells * 3,
                "a crossed cell has at least 3 crossed edges");
        }
    }

    /// The isovalue below the minimum (or above the maximum) yields an
    /// empty surface.
    #[test]
    fn isosurface_outside_range_is_empty((data, nx, ny, nz) in grid_strategy()) {
        let g = Grid3::new(&data, nx, ny, nz);
        let (min, max) = g.min_max();
        prop_assert_eq!(isosurface(&g, min - 1.0).active_cells, 0);
        prop_assert_eq!(isosurface(&g, max + 1.0).active_cells, 0);
    }

    /// Rendering normalizes into [0, 1] and the framebuffer matches the
    /// grid footprint.
    #[test]
    fn render_normalized((data, nx, ny, nz) in grid_strategy()) {
        let g = Grid3::new(&data, nx, ny, nz);
        let fb = render(&g);
        prop_assert_eq!(fb.width, nx);
        prop_assert_eq!(fb.height, ny);
        prop_assert_eq!(fb.pixels.len(), nx * ny);
        prop_assert!(fb.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // The global maximum column must be fully bright somewhere unless
        // the field is constant.
        let (min, max) = g.min_max();
        if max > min {
            prop_assert!(fb.pixels.iter().any(|&p| p >= 1.0 - 1e-6));
        }
    }

    /// Slices reproduce exactly the stored plane.
    #[test]
    fn slice_matches_storage((data, nx, ny, nz) in grid_strategy(), pick in any::<usize>()) {
        let g = Grid3::new(&data, nx, ny, nz);
        let k = pick % nz;
        let plane = slice(&g, k);
        prop_assert_eq!(plane.len(), nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                prop_assert_eq!(plane[j * nx + i], g.at(i, j, k));
            }
        }
    }
}
