//! Axis-aligned plane extraction.

use super::Grid3;

/// Extract the `k`-th z-plane as a row-major `ny × nx` vector.
///
/// Panics if `k` is out of range — slicing past the grid is a caller bug.
pub fn slice(grid: &Grid3<'_>, k: usize) -> Vec<f64> {
    assert!(k < grid.nz, "slice {k} out of range (nz = {})", grid.nz);
    let plane = grid.nx * grid.ny;
    grid.data[k * plane..(k + 1) * plane].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_the_right_plane() {
        let data: Vec<f64> = (0..27).map(|v| v as f64).collect();
        let g = Grid3::new(&data, 3, 3, 3);
        assert_eq!(slice(&g, 0), (0..9).map(|v| v as f64).collect::<Vec<_>>());
        assert_eq!(slice(&g, 2), (18..27).map(|v| v as f64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let data = vec![0.0; 8];
        let g = Grid3::new(&data, 2, 2, 2);
        let _ = slice(&g, 2);
    }
}
