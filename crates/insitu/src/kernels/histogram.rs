//! Value histograms (the "statistical analysis" workload class).

use super::Grid3;

/// A fixed-bin histogram over a value range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub min: f64,
    /// Exclusive upper bound of the last bin (values == max land in the
    /// last bin).
    pub max: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Histogram `grid` into `bins` equal-width bins over its own min..max
/// range (a degenerate range puts everything in bin 0).
pub fn histogram(grid: &Grid3<'_>, bins: usize) -> Histogram {
    let bins = bins.max(1);
    let (min, max) = grid.min_max();
    let mut counts = vec![0u64; bins];
    let width = max - min;
    for &v in grid.data {
        let bin = if width <= 0.0 {
            0
        } else {
            (((v - min) / width * bins as f64) as usize).min(bins - 1)
        };
        counts[bin] += 1;
    }
    Histogram { min, max, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ramp_spreads_evenly() {
        let data: Vec<f64> = (0..100).map(|v| v as f64).collect();
        let g = Grid3::new(&data, 100, 1, 1);
        let h = histogram(&g, 10);
        assert_eq!(h.total(), 100);
        assert!(h.counts.iter().all(|&c| c == 10), "{:?}", h.counts);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 99.0);
    }

    #[test]
    fn constant_field_one_bin() {
        let data = vec![5.0; 64];
        let g = Grid3::new(&data, 4, 4, 4);
        let h = histogram(&g, 8);
        assert_eq!(h.counts[0], 64);
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let data = vec![0.0, 1.0];
        let g = Grid3::new(&data, 2, 1, 1);
        let h = histogram(&g, 4);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn cm1_like_field_mode_is_base_state() {
        let mut data = vec![300.0; 1000];
        for v in data.iter_mut().take(50) {
            *v = 302.0;
        }
        let g = Grid3::new(&data, 10, 10, 10);
        let h = histogram(&g, 20);
        assert_eq!(h.mode_bin(), 0, "base state dominates");
        assert_eq!(h.counts[19], 50);
    }
}
