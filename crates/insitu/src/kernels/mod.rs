//! Analysis kernels shared by both coupling styles.

pub mod histogram;
pub mod isosurface;
pub mod render;
pub mod slice;

pub use histogram::{histogram, Histogram};
pub use isosurface::{isosurface, IsoCensus};
pub use render::{render, Framebuffer};
pub use slice::slice;

/// A borrowed 3-D scalar grid, C order with `x` fastest
/// (`idx = (k·ny + j)·nx + i`).
#[derive(Debug, Clone, Copy)]
pub struct Grid3<'a> {
    /// Values, length `nx · ny · nz`.
    pub data: &'a [f64],
    /// Extent in x (fastest).
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z (slowest).
    pub nz: usize,
}

impl<'a> Grid3<'a> {
    /// Wrap a slice, checking the extents.
    ///
    /// Panics if `data.len() != nx·ny·nz` — a layout mismatch is a caller
    /// bug, not a runtime condition.
    pub fn new(data: &'a [f64], nx: usize, ny: usize, nz: usize) -> Self {
        assert_eq!(
            data.len(),
            nx * ny * nz,
            "grid extents do not match data length"
        );
        Grid3 { data, nx, ny, nz }
    }

    /// Value at `(i, j, k)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(k * self.ny + j) * self.nx + i]
    }

    /// Minimum and maximum value (`(0, 0)` for an empty grid).
    pub fn min_max(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in self.data {
            min = min.min(v);
            max = max.max(v);
        }
        if self.data.is_empty() {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_order() {
        let data: Vec<f64> = (0..24).map(|v| v as f64).collect();
        let g = Grid3::new(&data, 2, 3, 4);
        assert_eq!(g.at(0, 0, 0), 0.0);
        assert_eq!(g.at(1, 0, 0), 1.0, "x fastest");
        assert_eq!(g.at(0, 1, 0), 2.0);
        assert_eq!(g.at(0, 0, 1), 6.0);
        assert_eq!(g.at(1, 2, 3), 23.0);
    }

    #[test]
    fn min_max() {
        let data = vec![3.0, -1.0, 7.0, 0.0];
        let g = Grid3::new(&data, 4, 1, 1);
        assert_eq!(g.min_max(), (-1.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "extents do not match")]
    fn extent_mismatch_panics() {
        let data = vec![0.0; 5];
        let _ = Grid3::new(&data, 2, 2, 2);
    }
}
