//! Software renderer: orthographic maximum-intensity projection (MIP)
//! along z — the "compute an image from in-memory data" workload that
//! VisIt-style coupling performs synchronously.

use rayon::prelude::*;

use super::Grid3;

/// A grayscale framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    /// Width (grid x).
    pub width: usize,
    /// Height (grid y).
    pub height: usize,
    /// Row-major intensities in `[0, 1]`.
    pub pixels: Vec<f32>,
}

impl Framebuffer {
    /// Encode as a binary PGM image (P5), the simplest portable format.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.pixels
                .iter()
                .map(|&p| (p.clamp(0.0, 1.0) * 255.0) as u8),
        );
        out
    }

    /// Mean intensity (test/telemetry diagnostic).
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }
}

/// Render `grid` by casting one ray per (i, j) column, keeping the maximum
/// value, normalized into the grid's own min..max range.
pub fn render(grid: &Grid3<'_>) -> Framebuffer {
    let (min, max) = grid.min_max();
    let range = if max > min { max - min } else { 1.0 };
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let mut pixels = vec![0.0f32; nx * ny];
    pixels.par_chunks_mut(nx).enumerate().for_each(|(j, row)| {
        for (i, px) in row.iter_mut().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for k in 0..nz {
                best = best.max(grid.at(i, j, k));
            }
            *px = (((best - min) / range) as f32).clamp(0.0, 1.0);
        }
    });
    Framebuffer {
        width: nx,
        height: ny,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_column_lights_one_pixel() {
        let mut data = vec![0.0; 4 * 4 * 4];
        // Column (2, 1): one hot voxel at k = 3.
        data[(3 * 4 + 1) * 4 + 2] = 10.0;
        let g = Grid3::new(&data, 4, 4, 4);
        let fb = render(&g);
        assert_eq!(fb.width, 4);
        assert_eq!(fb.height, 4);
        assert_eq!(fb.pixels[4 + 2], 1.0, "hot column saturates");
        assert_eq!(fb.pixels[0], 0.0, "cold column dark");
    }

    #[test]
    fn constant_field_renders_flat() {
        let data = vec![7.0; 8 * 8 * 8];
        let fb = render(&Grid3::new(&data, 8, 8, 8));
        assert!(
            fb.pixels.iter().all(|&p| p == 0.0),
            "degenerate range → dark"
        );
    }

    #[test]
    fn pgm_encoding_wellformed() {
        let data = vec![0.0, 1.0, 0.5, 0.25];
        let fb = render(&Grid3::new(&data, 2, 2, 1));
        let pgm = fb.to_pgm();
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(pgm.len(), b"P5\n2 2\n255\n".len() + 4);
    }

    #[test]
    fn mean_diagnostic() {
        let fb = Framebuffer {
            width: 2,
            height: 1,
            pixels: vec![0.0, 1.0],
        };
        assert_eq!(fb.mean(), 0.5);
    }
}
