//! Marching-cubes-style isosurface census.
//!
//! This kernel performs the classification phase of marching cubes over
//! every cell of the grid: build the 8-bit case index from the corner
//! signs, count surface-crossing cells and crossed edges (where the full
//! algorithm would interpolate vertices). It is the cost- and
//! access-pattern-faithful core of what VisIt does when asked for an
//! isosurface, which is what the §V.C experiments measure.

use rayon::prelude::*;

use super::Grid3;

/// Result of classifying a grid against an isovalue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IsoCensus {
    /// Cells the surface passes through (case index not 0 or 255).
    pub active_cells: usize,
    /// Cell edges with a sign change (vertex-interpolation sites).
    pub crossed_edges: usize,
    /// Total cells inspected.
    pub total_cells: usize,
}

impl IsoCensus {
    /// Estimated triangle count: the canonical marching-cubes tables emit
    /// close to one triangle per interpolated vertex in aggregate
    /// (each triangle uses 3 edge vertices, each interior edge is shared
    /// by up to 4 cells).
    pub fn triangle_estimate(&self) -> usize {
        self.crossed_edges / 2
    }
}

/// The 12 edges of a cell as corner-index pairs (marching-cubes numbering).
const CELL_EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// Classify every cell of `grid` against `isovalue`. Parallelized over
/// z-slabs with rayon (the dedicated core may itself be a small pool).
pub fn isosurface(grid: &Grid3<'_>, isovalue: f64) -> IsoCensus {
    if grid.nx < 2 || grid.ny < 2 || grid.nz < 2 {
        return IsoCensus::default();
    }
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let partial: Vec<IsoCensus> = (0..nz - 1)
        .into_par_iter()
        .map(|k| {
            let mut census = IsoCensus::default();
            for j in 0..ny - 1 {
                for i in 0..nx - 1 {
                    // Corner values in marching-cubes order.
                    let corners = [
                        grid.at(i, j, k),
                        grid.at(i + 1, j, k),
                        grid.at(i + 1, j + 1, k),
                        grid.at(i, j + 1, k),
                        grid.at(i, j, k + 1),
                        grid.at(i + 1, j, k + 1),
                        grid.at(i + 1, j + 1, k + 1),
                        grid.at(i, j + 1, k + 1),
                    ];
                    let mut case = 0u8;
                    for (bit, &v) in corners.iter().enumerate() {
                        if v >= isovalue {
                            case |= 1 << bit;
                        }
                    }
                    census.total_cells += 1;
                    if case != 0 && case != 0xff {
                        census.active_cells += 1;
                        for &(a, b) in &CELL_EDGES {
                            if (corners[a] >= isovalue) != (corners[b] >= isovalue) {
                                census.crossed_edges += 1;
                            }
                        }
                    }
                }
            }
            census
        })
        .collect();
    partial
        .into_iter()
        .fold(IsoCensus::default(), |acc, c| IsoCensus {
            active_cells: acc.active_cells + c.active_cells,
            crossed_edges: acc.crossed_edges + c.crossed_edges,
            total_cells: acc.total_cells + c.total_cells,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Signed-distance sphere field.
    fn sphere(n: usize, radius: f64) -> Vec<f64> {
        let c = (n - 1) as f64 / 2.0;
        let mut data = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let d =
                        ((i as f64 - c).powi(2) + (j as f64 - c).powi(2) + (k as f64 - c).powi(2))
                            .sqrt();
                    data.push(d - radius);
                }
            }
        }
        data
    }

    #[test]
    fn uniform_field_has_no_surface() {
        let data = vec![1.0; 8 * 8 * 8];
        let g = Grid3::new(&data, 8, 8, 8);
        let census = isosurface(&g, 0.5);
        assert_eq!(census.active_cells, 0);
        assert_eq!(census.crossed_edges, 0);
        assert_eq!(census.total_cells, 7 * 7 * 7);
    }

    #[test]
    fn sphere_surface_scales_with_radius_squared() {
        let n = 40;
        let small = {
            let d = sphere(n, 6.0);
            isosurface(&Grid3::new(&d, n, n, n), 0.0)
        };
        let large = {
            let d = sphere(n, 12.0);
            isosurface(&Grid3::new(&d, n, n, n), 0.0)
        };
        let ratio = large.active_cells as f64 / small.active_cells as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "surface cells should scale ≈ r² (4×), got {ratio:.2}"
        );
        assert!(large.triangle_estimate() > large.active_cells / 2);
    }

    #[test]
    fn plane_surface_cell_count_exact() {
        // Field = k: the isosurface k = 2.5 crosses exactly one cell layer.
        let n = 8;
        let mut data = Vec::new();
        for k in 0..n {
            for _ in 0..n * n {
                data.push(k as f64);
            }
        }
        let g = Grid3::new(&data, n, n, n);
        let census = isosurface(&g, 2.5);
        assert_eq!(
            census.active_cells,
            (n - 1) * (n - 1),
            "one full cell layer"
        );
        // Each active cell crosses its 4 vertical edges.
        assert_eq!(census.crossed_edges, (n - 1) * (n - 1) * 4);
    }

    #[test]
    fn degenerate_grids_are_empty() {
        let data = vec![0.0; 4];
        assert_eq!(
            isosurface(&Grid3::new(&data, 4, 1, 1), 0.5),
            IsoCensus::default()
        );
    }
}
