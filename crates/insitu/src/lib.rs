//! # insitu
//!
//! In-situ analysis and visualization for the Damaris reproduction —
//! everything §V of the paper needs:
//!
//! * [`kernels`] — the analysis workloads themselves: marching-cubes-style
//!   isosurface cell census, histograms, plane slicing, and a software
//!   max-intensity-projection renderer. These are the tasks that run
//!   either *synchronously* (VisIt-style, stopping the simulation) or
//!   *asynchronously* on dedicated cores (the Damaris way).
//! * [`libsim`] — a faithful imitation of the VisIt *libsim* coupling
//!   model: the simulation implements a wide adaptor interface (metadata,
//!   mesh, variable and command callbacks) and periodically *stops* to
//!   let the visualization run. This is the §V.C baseline whose
//!   instrumentation burden exceeds one hundred lines per application.
//! * [`plugin`] — [`plugin::InSituPlugin`], the Damaris-side coupling: the
//!   same kernels packaged as a dedicated-core plugin; the simulation's
//!   instrumentation stays at one `write` per variable.
//!
//! The §V.C.2 usability experiment (E9) counts instrumentation lines of
//! both couplings on the same proxy applications; the §V.C.1 performance
//! experiment (E7) runs the same kernels under both couplings and compares
//! the impact on simulation run time.

pub mod kernels;
pub mod libsim;
pub mod plugin;

pub use kernels::{histogram, isosurface, render, slice, Grid3};
pub use libsim::{LibSimAdaptor, MeshData, SimulationMetaData, SyncVisItSession, VariableData};
pub use plugin::{AnalysisRecord, InSituPlugin};
