//! VisIt-*libsim*-style synchronous coupling — the §V.C baseline.
//!
//! VisIt's libsim requires the simulation to implement a wide adaptor
//! surface: metadata callbacks describing the simulation, every mesh and
//! every variable; data callbacks producing each mesh and variable on
//! demand; a command callback; and an explicit "visualization step" the
//! simulation must call — **stopping itself** — whenever images are due.
//! The paper measures two consequences: the instrumentation burden
//! ("all these examples require more than a hundred lines of code with the
//! VisIt API", §V.C.2) and the synchronous stalls that keep the approach
//! from scaling (§V.C.1).
//!
//! This module reproduces that coupling shape honestly: implementing
//! [`LibSimAdaptor`] for a real simulation genuinely takes ~100 lines
//! (see `examples/nek_insitu.rs`), and [`SyncVisItSession::timestep`]
//! really blocks the caller while analysis and rendering run.

use crate::kernels::{histogram, isosurface, render, Grid3, Histogram, IsoCensus};

/// Metadata for one mesh, as libsim's `VisIt_MeshMetaData` would carry.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshMetaData {
    /// Mesh name.
    pub name: String,
    /// Topological dimension (2 or 3).
    pub topological_dim: usize,
    /// Number of domains (ranks) the mesh is split over.
    pub num_domains: usize,
    /// Axis labels.
    pub axis_labels: [String; 3],
    /// Axis units.
    pub axis_units: [String; 3],
}

/// Metadata for one variable (`VisIt_VariableMetaData`).
#[derive(Debug, Clone, PartialEq)]
pub struct VariableMetaData {
    /// Variable name.
    pub name: String,
    /// Mesh the variable lives on.
    pub mesh: String,
    /// Physical units.
    pub units: String,
    /// Whether values sit on nodes (true) or cells (false).
    pub nodal: bool,
}

/// Top-level simulation metadata (`VisIt_SimulationMetaData`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationMetaData {
    /// Simulation name.
    pub name: String,
    /// Current cycle (iteration).
    pub cycle: u64,
    /// Current simulated time.
    pub time: f64,
    /// Declared meshes.
    pub meshes: Vec<MeshMetaData>,
    /// Declared variables.
    pub variables: Vec<VariableMetaData>,
    /// Commands the UI could trigger.
    pub commands: Vec<String>,
}

/// A rectilinear mesh payload (`VisIt_RectilinearMesh`).
#[derive(Debug, Clone, PartialEq)]
pub struct MeshData {
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates.
    pub y: Vec<f64>,
    /// Z coordinates.
    pub z: Vec<f64>,
}

/// A variable payload (`VisIt_VariableData`): flat values plus grid shape.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableData {
    /// Values, C order, x fastest.
    pub values: Vec<f64>,
    /// Grid extents `(nx, ny, nz)`.
    pub shape: (usize, usize, usize),
}

/// The adaptor interface a simulation must implement to couple with the
/// synchronous visualization — the direct analogue of the libsim callback
/// registration set (`VisItSetGetMetaData`, `VisItSetGetMesh`,
/// `VisItSetGetVariable`, `VisItSetGetDomainList`,
/// `VisItSetCommandCallback`, …).
pub trait LibSimAdaptor {
    /// Produce the full simulation metadata (called every step).
    fn get_metadata(&self) -> SimulationMetaData;

    /// Produce a mesh by name.
    fn get_mesh(&self, name: &str) -> Option<MeshData>;

    /// Produce a variable by name.
    fn get_variable(&self, name: &str) -> Option<VariableData>;

    /// Which domains (rank-local pieces) this process owns for a mesh —
    /// libsim requires this for parallel rendering.
    fn get_domain_list(&self, mesh: &str) -> Vec<usize>;

    /// Execute a UI command (e.g. "halt", "step", "dump").
    fn execute_command(&mut self, command: &str);
}

/// Result of one synchronous visualization step.
#[derive(Debug, Clone)]
pub struct VisStepReport {
    /// Iteration analyzed.
    pub cycle: u64,
    /// Per-variable isosurface censuses.
    pub isosurfaces: Vec<(String, IsoCensus)>,
    /// Per-variable histograms.
    pub histograms: Vec<(String, Histogram)>,
    /// Rendered image mean intensities (one per variable).
    pub image_means: Vec<(String, f32)>,
    /// Seconds the *simulation* was stopped while this ran.
    pub blocked_seconds: f64,
}

/// The synchronous in-situ session: owns the analysis configuration and
/// pulls everything through the adaptor, on the simulation's own thread.
pub struct SyncVisItSession {
    /// Histogram bins.
    pub bins: usize,
    /// Isovalue as a fraction of each variable's value range.
    pub iso_fraction: f64,
    /// Set by [`SyncVisItSession::initialize`]; mirrors libsim's
    /// `VisItSetupEnvironment` + `VisItInitializeSocketAndDumpSimFile`
    /// prerequisite.
    sim_file: Option<String>,
    reports: Vec<VisStepReport>,
}

impl Default for SyncVisItSession {
    fn default() -> Self {
        SyncVisItSession {
            bins: 32,
            iso_fraction: 0.5,
            sim_file: None,
            reports: Vec::new(),
        }
    }
}

impl SyncVisItSession {
    /// New session with default analysis settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mandatory setup before the first [`SyncVisItSession::timestep`]:
    /// libsim requires the simulation to set up the environment and dump a
    /// `.sim2` connection file before the viewer can attach.
    pub fn initialize(&mut self, sim_name: &str) {
        self.sim_file = Some(format!("{sim_name}.sim2"));
    }

    /// The connection-file name recorded at initialization.
    pub fn sim_file(&self) -> Option<&str> {
        self.sim_file.as_deref()
    }

    /// Run one synchronous visualization step: the simulation is stopped
    /// until this returns (that stall is the §V.C.1 measurement).
    ///
    /// Panics if [`SyncVisItSession::initialize`] was never called — the
    /// same hard failure a real libsim coupling produces.
    pub fn timestep<A: LibSimAdaptor>(&mut self, adaptor: &mut A) -> &VisStepReport {
        assert!(
            self.sim_file.is_some(),
            "initialize() must be called before timestep()"
        );
        let t0 = std::time::Instant::now();
        let meta = adaptor.get_metadata();
        let mut isosurfaces = Vec::new();
        let mut histograms = Vec::new();
        let mut image_means = Vec::new();
        for vmeta in &meta.variables {
            // Pull the domain list and mesh as VisIt would (even though
            // the MIP renderer only needs extents, the data must be
            // produced).
            let _domains = adaptor.get_domain_list(&vmeta.mesh);
            let _mesh = adaptor.get_mesh(&vmeta.mesh);
            let Some(var) = adaptor.get_variable(&vmeta.name) else {
                continue;
            };
            let (nx, ny, nz) = var.shape;
            let grid = Grid3::new(&var.values, nx, ny, nz);
            let (min, max) = grid.min_max();
            let iso = min + (max - min) * self.iso_fraction;
            isosurfaces.push((vmeta.name.clone(), isosurface(&grid, iso)));
            histograms.push((vmeta.name.clone(), histogram(&grid, self.bins)));
            image_means.push((vmeta.name.clone(), render(&grid).mean()));
        }
        self.reports.push(VisStepReport {
            cycle: meta.cycle,
            isosurfaces,
            histograms,
            image_means,
            blocked_seconds: t0.elapsed().as_secs_f64(),
        });
        self.reports.last().expect("just pushed")
    }

    /// All step reports so far.
    pub fn reports(&self) -> &[VisStepReport] {
        &self.reports
    }

    /// Total seconds the simulation has been stopped by visualization.
    pub fn total_blocked_seconds(&self) -> f64 {
        self.reports.iter().map(|r| r.blocked_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-test adaptor: a ramp field on an 8³ grid.
    struct ToyAdaptor {
        cycle: u64,
        commands_run: Vec<String>,
    }

    impl LibSimAdaptor for ToyAdaptor {
        fn get_metadata(&self) -> SimulationMetaData {
            SimulationMetaData {
                name: "toy".into(),
                cycle: self.cycle,
                time: self.cycle as f64 * 0.5,
                meshes: vec![MeshMetaData {
                    name: "grid".into(),
                    topological_dim: 3,
                    num_domains: 1,
                    axis_labels: ["x".into(), "y".into(), "z".into()],
                    axis_units: ["m".into(), "m".into(), "m".into()],
                }],
                variables: vec![VariableMetaData {
                    name: "ramp".into(),
                    mesh: "grid".into(),
                    units: "K".into(),
                    nodal: true,
                }],
                commands: vec!["halt".into()],
            }
        }

        fn get_mesh(&self, name: &str) -> Option<MeshData> {
            (name == "grid").then(|| MeshData {
                x: (0..8).map(|v| v as f64).collect(),
                y: (0..8).map(|v| v as f64).collect(),
                z: (0..8).map(|v| v as f64).collect(),
            })
        }

        fn get_variable(&self, name: &str) -> Option<VariableData> {
            (name == "ramp").then(|| VariableData {
                values: (0..512).map(|v| v as f64).collect(),
                shape: (8, 8, 8),
            })
        }

        fn get_domain_list(&self, _mesh: &str) -> Vec<usize> {
            vec![0]
        }

        fn execute_command(&mut self, command: &str) {
            self.commands_run.push(command.to_string());
        }
    }

    #[test]
    fn timestep_runs_all_kernels_and_blocks() {
        let mut adaptor = ToyAdaptor {
            cycle: 4,
            commands_run: vec![],
        };
        let mut session = SyncVisItSession::new();
        session.initialize("toy");
        assert_eq!(session.sim_file(), Some("toy.sim2"));
        let report = session.timestep(&mut adaptor);
        assert_eq!(report.cycle, 4);
        assert_eq!(report.isosurfaces.len(), 1);
        assert!(
            report.isosurfaces[0].1.active_cells > 0,
            "ramp crosses mid-value"
        );
        assert_eq!(report.histograms[0].1.total(), 512);
        assert!(report.blocked_seconds > 0.0);
        assert_eq!(session.reports().len(), 1);
        assert!(session.total_blocked_seconds() > 0.0);
    }

    #[test]
    fn missing_variable_is_skipped() {
        struct Empty;
        impl LibSimAdaptor for Empty {
            fn get_metadata(&self) -> SimulationMetaData {
                SimulationMetaData {
                    name: "e".into(),
                    cycle: 0,
                    time: 0.0,
                    meshes: vec![],
                    variables: vec![VariableMetaData {
                        name: "ghost".into(),
                        mesh: "none".into(),
                        units: String::new(),
                        nodal: true,
                    }],
                    commands: vec![],
                }
            }
            fn get_mesh(&self, _: &str) -> Option<MeshData> {
                None
            }
            fn get_variable(&self, _: &str) -> Option<VariableData> {
                None
            }
            fn get_domain_list(&self, _: &str) -> Vec<usize> {
                vec![0]
            }
            fn execute_command(&mut self, _: &str) {}
        }
        let mut session = SyncVisItSession::new();
        session.initialize("empty");
        let report = session.timestep(&mut Empty);
        assert!(report.isosurfaces.is_empty());
    }

    #[test]
    fn command_callback_plumbed() {
        let mut adaptor = ToyAdaptor {
            cycle: 0,
            commands_run: vec![],
        };
        adaptor.execute_command("halt");
        assert_eq!(adaptor.commands_run, vec!["halt"]);
    }
}
