//! The Damaris-side in-situ coupling: the same kernels as [`crate::libsim`],
//! packaged as a dedicated-core plugin.
//!
//! §V.C: "We have embedded the VisIt visualization software in Damaris and
//! leveraged the high level description of data structures in the XML
//! files to seamlessly connect any simulation to this visualization
//! backend. […] By using dedicated cores, all analysis and visualization
//! operations run in parallel with the simulation without impacting it."
//!
//! The XML data description supplies the grid shapes, so — unlike the
//! libsim adaptor — the simulation contributes *nothing* beyond its
//! ordinary `write` calls.

use damaris_core::plugins::{IterationCtx, Plugin};
use damaris_xml::schema::ElemType;
use parking_lot::Mutex;

use crate::kernels::{histogram, isosurface, render, Grid3, IsoCensus};

/// What the plugin computed for one iteration.
#[derive(Debug, Clone)]
pub struct AnalysisRecord {
    /// Iteration analyzed.
    pub iteration: u64,
    /// Per-(variable, source) isosurface censuses.
    pub isosurfaces: Vec<(String, IsoCensus)>,
    /// Mean image intensity per variable block.
    pub image_means: Vec<(String, f32)>,
    /// Histogram mode bin per variable block.
    pub mode_bins: Vec<(String, usize)>,
    /// Seconds of dedicated-core time spent (the simulation saw none of
    /// this).
    pub seconds: f64,
}

/// In-situ analysis plugin for the Damaris dedicated cores.
///
/// Action parameters:
/// * `iso_fraction` — isovalue as a fraction of each block's value range
///   (default 0.5),
/// * `bins` — histogram bins (default 32),
/// * `min_dims` — only analyze variables with at least this many
///   dimensions (default 3; keeps 1-D diagnostics out of the renderer).
#[derive(Debug, Default)]
pub struct InSituPlugin {
    records: Mutex<Vec<AnalysisRecord>>,
}

impl InSituPlugin {
    /// New plugin with empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analysis history (clone).
    pub fn records(&self) -> Vec<AnalysisRecord> {
        self.records.lock().clone()
    }

    /// Total dedicated-core seconds spent analyzing.
    pub fn total_seconds(&self) -> f64 {
        self.records.lock().iter().map(|r| r.seconds).sum()
    }
}

impl Plugin for InSituPlugin {
    fn name(&self) -> &str {
        "insitu"
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> Result<(), String> {
        let t0 = std::time::Instant::now();
        let iso_fraction: f64 = match ctx.action.param("iso_fraction") {
            Some(s) => s.parse().map_err(|_| format!("bad iso_fraction '{s}'"))?,
            None => 0.5,
        };
        let bins: usize = match ctx.action.param("bins") {
            Some(s) => s.parse().map_err(|_| format!("bad bins '{s}'"))?,
            None => 32,
        };
        let min_dims: usize = match ctx.action.param("min_dims") {
            Some(s) => s.parse().map_err(|_| format!("bad min_dims '{s}'"))?,
            None => 3,
        };

        let mut record = AnalysisRecord {
            iteration: ctx.iteration,
            isosurfaces: Vec::new(),
            image_means: Vec::new(),
            mode_bins: Vec::new(),
            seconds: 0.0,
        };
        for block in ctx.blocks {
            let layout = ctx.config.layout_of_id(block.variable);
            if layout.dimensions.len() < min_dims {
                continue;
            }
            // Normalize to 3-D: trailing dims beyond 3 are folded into z.
            let dims = &layout.dimensions;
            let (nz, ny, nx) = match dims.len() {
                3 => (dims[0], dims[1], dims[2]),
                n => (dims[..n - 2].iter().product(), dims[n - 2], dims[n - 1]),
            };
            let values: Vec<f64> = match layout.elem_type {
                ElemType::F64 => block.data.as_pod::<f64>().to_vec(),
                ElemType::F32 => block
                    .data
                    .as_pod::<f32>()
                    .iter()
                    .map(|&v| v as f64)
                    .collect(),
                _ => continue,
            };
            let grid = Grid3::new(&values, nx, ny, nz);
            let (min, max) = grid.min_max();
            let iso = min + (max - min) * iso_fraction;
            let tag = format!(
                "{}/rank{}",
                ctx.config.var_name(block.variable),
                block.source
            );
            record
                .isosurfaces
                .push((tag.clone(), isosurface(&grid, iso)));
            record.image_means.push((tag.clone(), render(&grid).mean()));
            record
                .mode_bins
                .push((tag, histogram(&grid, bins).mode_bin()));
        }
        record.seconds = t0.elapsed().as_secs_f64();
        self.records.lock().push(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_core::store::StoredBlock;
    use damaris_shm::SharedSegment;
    use damaris_xml::schema::{Action, Configuration, Trigger};

    fn config() -> Configuration {
        Configuration::from_str(
            r#"<simulation name="t"><data>
                 <layout name="vol" type="f64" dimensions="8,8,8"/>
                 <layout name="line" type="f64" dimensions="16"/>
                 <variable name="field" layout="vol"/>
                 <variable name="diag" layout="line"/>
               </data></simulation>"#,
        )
        .unwrap()
    }

    fn action(params: Vec<(&str, &str)>) -> Action {
        Action {
            name: "viz".into(),
            plugin: "insitu".into(),
            trigger: Trigger::EndOfIteration { frequency: 1 },
            params: params
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    fn sphere_block(seg: &SharedSegment, cfg: &Configuration, var: &str) -> StoredBlock {
        let mut vals = Vec::with_capacity(512);
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    let d = ((i as f64 - 3.5).powi(2)
                        + (j as f64 - 3.5).powi(2)
                        + (k as f64 - 3.5).powi(2))
                    .sqrt();
                    vals.push(d);
                }
            }
        }
        let mut b = seg.allocate(512 * 8).unwrap();
        b.write_pod(&vals);
        StoredBlock {
            variable: cfg.registry().var_id(var).unwrap(),
            source: 0,
            iteration: 1,
            data: b.freeze(),
        }
    }

    #[test]
    fn analyzes_3d_blocks_only() {
        let cfg = config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let mut blocks = vec![sphere_block(&seg, &cfg, "field")];
        let mut b = seg.allocate(16 * 8).unwrap();
        b.write_pod(&[1.0f64; 16]);
        blocks.push(StoredBlock {
            variable: cfg.registry().var_id("diag").unwrap(),
            source: 0,
            iteration: 1,
            data: b.freeze(),
        });
        let plugin = InSituPlugin::new();
        let act = action(vec![]);
        let ctx = IterationCtx {
            iteration: 1,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: std::path::Path::new("/tmp"),
            action: &act,
        };
        plugin.on_iteration(&ctx).unwrap();
        let records = plugin.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].isosurfaces.len(), 1, "1-D diagnostic skipped");
        assert!(
            records[0].isosurfaces[0].1.active_cells > 0,
            "sphere surface found"
        );
        assert!(plugin.total_seconds() >= 0.0);
    }

    #[test]
    fn params_validated() {
        let cfg = config();
        let seg = SharedSegment::new(1 << 16).unwrap();
        let blocks = vec![sphere_block(&seg, &cfg, "field")];
        let plugin = InSituPlugin::new();
        let act = action(vec![("bins", "lots")]);
        let ctx = IterationCtx {
            iteration: 1,
            node_id: 0,
            simulation: "t",
            blocks: &blocks,
            config: &cfg,
            output_dir: std::path::Path::new("/tmp"),
            action: &act,
        };
        assert!(plugin.on_iteration(&ctx).is_err());
    }
}
