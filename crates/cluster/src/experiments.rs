//! Parameter sweeps behind every table and figure of the paper's
//! evaluation (§IV, §V.C.1). Each function returns typed rows; the
//! `damaris-bench` crate renders them next to the paper's numbers.

use crate::metrics::RunMetrics;
use crate::platform::Platform;
use crate::run::run;
use crate::strategy::{DamarisOptions, Scheduler, Strategy};
use crate::workload::Workload;

/// The scales of the paper's Kraken weak-scaling study.
pub const KRAKEN_SCALES: [usize; 5] = [576, 1152, 2304, 4608, 9216];

/// One row of the E1 weak-scaling table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Total cores.
    pub ranks: usize,
    /// Strategy name.
    pub strategy: String,
    /// Application run time (virtual seconds).
    pub wall_seconds: f64,
    /// Sim-visible I/O share of run time.
    pub io_fraction: f64,
    /// Sim-visible I/O seconds per dump (mean).
    pub io_per_dump: f64,
}

/// E1 (§IV.A): weak scaling of CM1 under the three strategies.
///
/// Paper anchors: at 9216 cores the collective I/O phase reaches ~800 s ≈
/// 70 % of run time; Damaris scales near-perfectly and is 3.5× faster than
/// collective end to end.
pub fn e1_scalability(dumps: u64, seed: u64) -> Vec<E1Row> {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    let mut rows = Vec::new();
    for &ranks in &KRAKEN_SCALES {
        for strategy in [
            Strategy::FilePerProcess,
            Strategy::Collective,
            Strategy::damaris_greedy(),
        ] {
            let m = run(&platform, &workload, ranks, strategy, seed);
            rows.push(E1Row {
                ranks,
                strategy: m.strategy.clone(),
                wall_seconds: m.wall_seconds,
                io_fraction: m.io_fraction(),
                io_per_dump: m.io_seconds() / dumps.max(1) as f64,
            });
        }
    }
    rows
}

/// The headline speedup: Damaris vs collective at full scale.
pub fn e1_speedup(dumps: u64, seed: u64) -> f64 {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    let damaris = run(&platform, &workload, 9216, Strategy::damaris_greedy(), seed);
    let collective = run(&platform, &workload, 9216, Strategy::Collective, seed);
    damaris.speedup_over(&collective)
}

/// One row of the E2 variability table.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Strategy name.
    pub strategy: String,
    /// Fastest per-rank write (s).
    pub min: f64,
    /// Median per-rank write (s).
    pub median: f64,
    /// 99th percentile (s).
    pub p99: f64,
    /// Slowest per-rank write (s).
    pub max: f64,
    /// max/min spread.
    pub spread: f64,
}

/// E2 (§IV.B): the distribution of sim-visible per-rank write times.
///
/// Paper anchors: baselines spread over "several orders of magnitude" with
/// hundreds of seconds of unpredictability; Damaris writes cost the shm
/// memcpy (~0.1 s), independent of scale.
pub fn e2_variability(ranks: usize, dumps: u64, seed: u64) -> Vec<E2Row> {
    let platform = Platform::kraken(); // jitter and background ON
    let workload = Workload::cm1(dumps);
    [
        Strategy::FilePerProcess,
        Strategy::Collective,
        Strategy::damaris_greedy(),
    ]
    .into_iter()
    .map(|s| {
        let m = run(&platform, &workload, ranks, s, seed);
        let j = m.jitter();
        E2Row {
            strategy: m.strategy,
            min: j.min,
            median: j.median,
            p99: j.p99,
            max: j.max,
            spread: j.spread,
        }
    })
    .collect()
}

/// E2 companion: Damaris sim-side write cost across scales (must be flat).
pub fn e2_scale_independence(dumps: u64, seed: u64) -> Vec<(usize, f64)> {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    KRAKEN_SCALES
        .iter()
        .map(|&ranks| {
            let m = run(
                &platform,
                &workload,
                ranks,
                Strategy::damaris_greedy(),
                seed,
            );
            (ranks, m.jitter().median)
        })
        .collect()
}

/// One row of the E3 throughput table.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Strategy name.
    pub strategy: String,
    /// Aggregate burst throughput (GB/s).
    pub throughput_gbps: f64,
    /// Files created per dump.
    pub files_per_dump: usize,
}

/// E3 (§IV.C): aggregate throughput at 9216 cores.
///
/// Paper anchors: 0.5 GB/s collective, < 1.7 GB/s file-per-process,
/// ~10 GB/s Damaris.
pub fn e3_throughput(dumps: u64, seed: u64) -> Vec<E3Row> {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    [
        Strategy::Collective,
        Strategy::FilePerProcess,
        Strategy::damaris_greedy(),
    ]
    .into_iter()
    .map(|s| {
        let m = run(&platform, &workload, 9216, s, seed);
        E3Row {
            strategy: m.strategy,
            throughput_gbps: m.agg_throughput / 1e9,
            files_per_dump: m.files_per_dump,
        }
    })
    .collect()
}

/// E4 (§IV.D): dedicated-core idle fraction across scales.
///
/// Paper anchor: 92–99 % idle on Kraken with CM1.
pub fn e4_idle_time(dumps: u64, seed: u64) -> Vec<(usize, f64)> {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    KRAKEN_SCALES
        .iter()
        .map(|&ranks| {
            let m = run(
                &platform,
                &workload,
                ranks,
                Strategy::damaris_greedy(),
                seed,
            );
            (ranks, m.dedicated_idle.expect("damaris run reports idle"))
        })
        .collect()
}

/// One row of the E6 scheduling table.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Aggregate burst throughput (GB/s).
    pub throughput_gbps: f64,
}

/// E6 (§IV.D): I/O scheduling strategies for the dedicated cores.
///
/// Paper anchor: smarter scheduling lifts Damaris from ~10 to 12.7 GB/s.
pub fn e6_scheduling(dumps: u64, seed: u64) -> Vec<E6Row> {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    [
        Scheduler::Greedy,
        Scheduler::Staggered { groups: 3 },
        Scheduler::TokenBucket {
            concurrent: platform.pfs.n_osts,
        },
        Scheduler::Balanced,
    ]
    .into_iter()
    .map(|sched| {
        let m = run(
            &platform,
            &workload,
            9216,
            Strategy::Damaris(DamarisOptions {
                scheduler: sched,
                ..Default::default()
            }),
            seed,
        );
        E6Row {
            scheduler: sched.name(),
            throughput_gbps: m.agg_throughput / 1e9,
        }
    })
    .collect()
}

/// One row of the E7 in-situ scalability table.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Total cores.
    pub ranks: usize,
    /// Per-dump simulation overhead of synchronous (VisIt-style) in-situ.
    pub sync_overhead_s: f64,
    /// Per-dump simulation overhead of Damaris dedicated-core in-situ.
    pub damaris_overhead_s: f64,
    /// Run-time inflation of the synchronous coupling vs pure compute.
    pub sync_slowdown: f64,
    /// Run-time inflation of the Damaris coupling vs pure compute.
    pub damaris_slowdown: f64,
}

/// E7 (§V.C.1): Nek5000 with in-situ visualization on Grid'5000,
/// synchronous VisIt-style coupling vs Damaris dedicated cores.
///
/// Paper anchor: Damaris ran at full cluster scale (800 cores) with no
/// impact; synchronous VisIt "did not scale that far".
pub fn e7_insitu(dumps: u64, analysis_seconds: f64, seed: u64) -> Vec<E7Row> {
    let platform = Platform::grid5000();
    let workload = Workload::nek(dumps);
    let pure_compute = workload.compute_per_dump() * dumps as f64;
    [96usize, 192, 384, 768]
        .into_iter()
        .map(|ranks| {
            let sync = run(
                &platform,
                &workload,
                ranks,
                Strategy::SyncInSitu { analysis_seconds },
                seed,
            );
            let dam = run(
                &platform,
                &workload,
                ranks,
                Strategy::Damaris(DamarisOptions {
                    plugin_seconds_per_dump: analysis_seconds,
                    ..Default::default()
                }),
                seed,
            );
            E7Row {
                ranks,
                sync_overhead_s: sync.io_seconds() / dumps.max(1) as f64,
                damaris_overhead_s: dam.io_seconds() / dumps.max(1) as f64,
                sync_slowdown: sync.wall_seconds / pure_compute,
                damaris_slowdown: dam.wall_seconds / pure_compute,
            }
        })
        .collect()
}

/// E5 companion at scale: Damaris with and without in-spare-time
/// compression — run time must be unchanged while written bytes shrink.
pub fn e5_compression_at_scale(dumps: u64, ratio: f64, seed: u64) -> (RunMetrics, RunMetrics) {
    let platform = Platform::kraken();
    let workload = Workload::cm1(dumps);
    let plain = run(&platform, &workload, 9216, Strategy::damaris_greedy(), seed);
    let compressed = run(
        &platform,
        &workload,
        9216,
        Strategy::Damaris(DamarisOptions {
            compression_ratio: ratio,
            // Compressing ~540 MB of smooth f64 data takes the dedicated
            // core a few seconds — still far below the ~340 s dump period.
            plugin_seconds_per_dump: 5.0,
            ..Default::default()
        }),
        seed,
    );
    (plain, compressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_cover_all_scales_and_strategies() {
        let rows = e1_scalability(1, 1);
        assert_eq!(rows.len(), KRAKEN_SCALES.len() * 3);
        // Damaris wall time stays near-flat across the sweep.
        let damaris: Vec<f64> = rows
            .iter()
            .filter(|r| r.strategy.starts_with("damaris"))
            .map(|r| r.wall_seconds)
            .collect();
        let spread = damaris.iter().cloned().fold(f64::MIN, f64::max)
            / damaris.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 1.15,
            "Damaris weak scaling should be near-perfect: {spread:.3}"
        );
        // Collective degrades with scale.
        let coll: Vec<f64> = rows
            .iter()
            .filter(|r| r.strategy == "collective")
            .map(|r| r.wall_seconds)
            .collect();
        assert!(coll.last().unwrap() > coll.first().unwrap());
    }

    #[test]
    fn e2_damaris_flat_across_scales() {
        let medians = e2_scale_independence(1, 2);
        let (min, max) = medians
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, m)| {
                (lo.min(m), hi.max(m))
            });
        assert!(max / min < 1.05, "shm write cost must not depend on scale");
    }

    #[test]
    fn e3_ordering() {
        let rows = e3_throughput(1, 3);
        assert_eq!(rows[0].strategy, "collective");
        assert!(rows[0].throughput_gbps < rows[1].throughput_gbps);
        assert!(rows[1].throughput_gbps < rows[2].throughput_gbps);
        assert_eq!(rows[2].files_per_dump, 768);
        assert_eq!(rows[1].files_per_dump, 9216);
        assert_eq!(rows[0].files_per_dump, 1);
    }

    #[test]
    fn e6_balanced_wins() {
        let rows = e6_scheduling(1, 4);
        let greedy = rows
            .iter()
            .find(|r| r.scheduler == "greedy")
            .unwrap()
            .throughput_gbps;
        let balanced = rows
            .iter()
            .find(|r| r.scheduler == "balanced")
            .unwrap()
            .throughput_gbps;
        assert!(
            balanced > greedy,
            "balanced {balanced:.1} vs greedy {greedy:.1}"
        );
    }

    #[test]
    fn e7_sync_degrades_damaris_flat() {
        let rows = e7_insitu(2, 1.0, 5);
        assert!(rows.last().unwrap().sync_overhead_s > rows.first().unwrap().sync_overhead_s);
        for r in &rows {
            assert!(
                r.damaris_overhead_s < 0.3,
                "damaris overhead {:.2}s",
                r.damaris_overhead_s
            );
            assert!(r.sync_slowdown > r.damaris_slowdown);
        }
    }

    #[test]
    fn e5_scale_model() {
        let (plain, compressed) = e5_compression_at_scale(1, 6.0, 6);
        assert!(compressed.bytes_written * 5 < plain.bytes_written);
        assert!(compressed.wall_seconds <= plain.wall_seconds * 1.01);
        assert!(compressed.dedicated_idle.unwrap() > 0.85);
    }
}
