//! # cluster-sim
//!
//! A virtual-time simulator of large HPC clusters that replays the Damaris
//! paper's evaluation (§IV, §V.C.1) at its original scales — up to 9216
//! cores on a Kraken-class Cray XT5 and 800 cores on a Grid'5000-class
//! cluster — on one laptop.
//!
//! The real middleware in `damaris-core` runs with threads, real shared
//! memory and real files; this crate reuses *the same strategy logic*
//! (dedicated cores, shm staging cost, skip policy, the `sched` planners)
//! but replaces wall-clock execution with a calibrated model:
//!
//! * compute phases advance virtual time by the workload's per-step cost
//!   (CM1's compute is famously predictable — §IV.B);
//! * I/O phases go through [`pfs_sim`]'s Lustre-like queueing model (MDS
//!   storms, stream interference, shared-file extent locks, log-normal
//!   jitter, background traffic);
//! * collective I/O additionally pays two-phase aggregation over the
//!   interconnect model.
//!
//! The three strategies of the paper are implemented side by side:
//!
//! | strategy | files per dump | sim-visible I/O cost |
//! |---|---|---|
//! | [`Strategy::FilePerProcess`] | one per rank | full write latency |
//! | [`Strategy::Collective`] | one shared | aggregation + shared write |
//! | [`Strategy::Damaris`] | one per node | one shm memcpy (~0.1 s) |
//!
//! [`experiments`] packages the parameter sweeps behind every table and
//! figure (E1–E7); the `damaris-bench` crate prints them.
//!
//! ```
//! use cluster_sim::{run, Platform, Strategy, Workload};
//!
//! let platform = Platform::kraken();
//! let workload = Workload::cm1(2); // 2 dumps, weak-scaled CM1
//! let ranks = 1152;
//! let damaris = run(&platform, &workload, ranks, Strategy::damaris_greedy(), 7);
//! let collective = run(&platform, &workload, ranks, Strategy::Collective, 7);
//! assert!(damaris.wall_seconds < collective.wall_seconds,
//!         "dedicated cores must beat collective I/O");
//! ```

pub mod experiments;
pub mod metrics;
pub mod platform;
pub mod run;
pub mod strategy;
pub mod workload;

pub use metrics::RunMetrics;
pub use platform::Platform;
pub use run::run;
pub use strategy::{DamarisOptions, Scheduler, Strategy, TransportKind, WorldKind};
pub use workload::Workload;
