//! Workload descriptions: what the simulated application does.

/// A weak-scaling simulation workload (per-core work fixed as ranks grow).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Name for tables.
    pub name: &'static str,
    /// Number of output dumps to simulate.
    pub dumps: u64,
    /// Simulation steps between dumps.
    pub steps_per_dump: u64,
    /// Seconds one step takes with *all* cores of a node computing.
    pub compute_seconds_per_step: f64,
    /// Bytes each core contributes per dump.
    pub bytes_per_core: u64,
}

impl Workload {
    /// CM1 as the paper ran it on Kraken: ~34 s steps, a dump every 9
    /// steps (≈ 306 s of compute between dumps), 45 MiB per core per dump.
    /// With collective I/O phases of 680–800 s this puts the I/O share of
    /// run time at ≈ 70 %, the §IV.A operating point.
    pub fn cm1(dumps: u64) -> Self {
        Workload {
            name: "cm1",
            dumps,
            steps_per_dump: 9,
            compute_seconds_per_step: 34.0,
            bytes_per_core: 45 << 20,
        }
    }

    /// Nek5000 as the §V.C in-situ campaign ran it: short steps, a dump
    /// (= analysis trigger) every step, smaller per-core data.
    pub fn nek(dumps: u64) -> Self {
        Workload {
            name: "nek5000",
            dumps,
            steps_per_dump: 1,
            compute_seconds_per_step: 4.0,
            bytes_per_core: 8 << 20,
        }
    }

    /// Compute seconds between two dumps (full node computing).
    pub fn compute_per_dump(&self) -> f64 {
        self.compute_seconds_per_step * self.steps_per_dump as f64
    }

    /// Total bytes one dump moves for `ranks` cores.
    pub fn dump_bytes(&self, ranks: usize) -> u64 {
        self.bytes_per_core * ranks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm1_operating_point() {
        let w = Workload::cm1(10);
        assert_eq!(w.compute_per_dump(), 306.0);
        // 9216 cores × 45 MiB ≈ 405 GiB per dump.
        let gib = w.dump_bytes(9216) as f64 / (1u64 << 30) as f64;
        assert!((400.0..420.0).contains(&gib), "dump = {gib:.0} GiB");
    }

    #[test]
    fn nek_dumps_every_step() {
        let w = Workload::nek(5);
        assert_eq!(w.steps_per_dump, 1);
        assert_eq!(w.compute_per_dump(), 4.0);
    }
}
