//! Platform presets: the machines of the paper's evaluation.

use pfs_sim::PfsConfig;

/// A cluster: nodes × cores, interconnect, storage.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Platform name (appears in tables).
    pub name: &'static str,
    /// Cores per SMP node.
    pub cores_per_node: usize,
    /// Per-node injection bandwidth into the interconnect (bytes/s).
    pub injection_bw: f64,
    /// Small-message latency (s) — used by collective aggregation.
    pub latency: f64,
    /// Effective per-core bandwidth of a memcpy into the node's shared
    /// segment while all compute cores copy simultaneously (bytes/s).
    /// Calibrated so a 45 MB per-core write costs ≈ 0.1 s, the §IV.B
    /// number.
    pub shm_bw: f64,
    /// Storage model configuration.
    pub pfs: PfsConfig,
}

impl Platform {
    /// Kraken-class Cray XT5: 12 cores/node, SeaStar2+ interconnect,
    /// Lustre (§IV's platform).
    pub fn kraken() -> Self {
        Platform {
            name: "kraken",
            cores_per_node: 12,
            injection_bw: 2.0e9,
            latency: 5.0e-6,
            shm_bw: 0.5e9,
            pfs: PfsConfig::kraken_lustre(),
        }
    }

    /// Grid'5000-class commodity cluster: 24 cores/node, 10 GbE-ish
    /// interconnect, PVFS (§V.C's platform).
    pub fn grid5000() -> Self {
        Platform {
            name: "grid5000",
            cores_per_node: 24,
            injection_bw: 1.25e9,
            latency: 2.0e-5,
            shm_bw: 0.8e9,
            pfs: PfsConfig::grid5000_pvfs(),
        }
    }

    /// Power5-class cluster: 16 cores/node (the paper's third platform;
    /// used by cross-platform sanity tests).
    pub fn power5() -> Self {
        Platform {
            name: "power5",
            cores_per_node: 16,
            injection_bw: 1.0e9,
            latency: 1.0e-5,
            shm_bw: 0.6e9,
            pfs: PfsConfig::grid5000_pvfs().with_osts(48),
        }
    }

    /// Nodes needed for `ranks` cores (every node fully populated).
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Disable storage jitter and background traffic (calibration runs).
    pub fn without_jitter(mut self) -> Self {
        self.pfs = self.pfs.without_jitter();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for p in [Platform::kraken(), Platform::grid5000(), Platform::power5()] {
            assert!(p.cores_per_node >= 12);
            assert!(p.injection_bw > 0.0);
            assert!(p.shm_bw > 0.0);
            assert!(p.pfs.n_osts > 0);
        }
        assert_eq!(
            Platform::kraken().cores_per_node,
            12,
            "XT5 had 12 cores/node"
        );
        assert_eq!(Platform::grid5000().cores_per_node, 24);
    }

    #[test]
    fn nodes_for_rounds_up() {
        let k = Platform::kraken();
        assert_eq!(k.nodes_for(9216), 768);
        assert_eq!(k.nodes_for(13), 2);
        assert_eq!(k.nodes_for(12), 1);
    }

    #[test]
    fn shm_cost_matches_paper_order() {
        // §IV.B: writing one core's output to shared memory ≈ 0.1 s.
        let k = Platform::kraken();
        let seconds = (45.0 * (1 << 20) as f64) / k.shm_bw;
        assert!((0.05..0.2).contains(&seconds), "shm write = {seconds:.3}s");
    }
}
