//! The three I/O strategies and the dedicated-core scheduling/placement
//! options.

use pfs_sim::FileSpec;

pub use damaris_shm::transport::TransportKind;
pub use damaris_xml::schema::{AllocatorKind, WorldKind};

/// How the dedicated cores time and place their node-file writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Write as soon as the node's data is staged (the Damaris default
    /// that reaches ~10 GB/s in §IV.C).
    Greedy,
    /// Stagger nodes into waves (`groups`) — no coordination at run time.
    Staggered {
        /// Number of waves.
        groups: usize,
    },
    /// Global admission control: at most `concurrent` node writes at once.
    TokenBucket {
        /// Maximum simultaneous writers.
        concurrent: usize,
    },
    /// Placement-aware scheduling: balance bytes across storage targets by
    /// splitting the excess node files (those that would make some OST
    /// serve one more full file than the rest) over two OSTs. This is the
    /// "more elaborate scheduling" that lifts throughput to ≈ 12.7 GB/s
    /// (§IV.D).
    Balanced,
}

impl Scheduler {
    /// Name for benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Greedy => "greedy",
            Scheduler::Staggered { .. } => "staggered",
            Scheduler::TokenBucket { .. } => "token-bucket",
            Scheduler::Balanced => "balanced",
        }
    }

    /// Plan write start times given per-node readiness and an estimated
    /// single-file write duration. Delegates to `damaris_core::sched` so
    /// the DES and the real middleware share one implementation.
    pub fn plan_starts(&self, ready: &[f64], est_write_s: f64) -> Vec<f64> {
        use damaris_core::sched::{Greedy, IoScheduler, Staggered, TokenBucket};
        match self {
            Scheduler::Greedy | Scheduler::Balanced => Greedy.plan_starts(ready, est_write_s),
            Scheduler::Staggered { groups } => {
                Staggered { groups: *groups }.plan_starts(ready, est_write_s)
            }
            Scheduler::TokenBucket { concurrent } => TokenBucket {
                concurrent: *concurrent,
            }
            .plan_starts(ready, est_write_s),
        }
    }

    /// Decide file specs for one dump of `nodes` node files over `n_osts`
    /// targets. `dump` rotates placement so multi-dump runs spread load.
    pub fn place_files(&self, nodes: usize, n_osts: usize, dump: u64) -> Vec<FileSpec> {
        match self {
            Scheduler::Balanced => balanced_placement(nodes, n_osts, dump),
            _ => (0..nodes)
                .map(|node| FileSpec {
                    // Rotate the starting OST each dump so the integer
                    // imbalance (e.g. 768 files on 336 OSTs) moves around.
                    id: (node as u64) + dump * nodes as u64,
                    shared: false,
                    stripe_count: 1,
                    needs_create: true,
                })
                .collect(),
        }
    }
}

/// Byte-balancing placement: with `nodes = q·n_osts + r`, the first
/// `q·n_osts` files go one-per-OST round-robin (stripe 1); the `r` excess
/// files are striped over 2 OSTs each, aimed at the least-loaded targets,
/// so no OST serves a whole extra file.
fn balanced_placement(nodes: usize, n_osts: usize, dump: u64) -> Vec<FileSpec> {
    let q = nodes / n_osts;
    let bulk = q * n_osts;
    let rotation = (dump as usize * 97) % n_osts.max(1);
    let mut specs: Vec<FileSpec> = (0..bulk)
        .map(|node| FileSpec {
            id: ((node + rotation) % n_osts + (node / n_osts) * n_osts) as u64,
            shared: false,
            stripe_count: 1,
            needs_create: true,
        })
        .collect();
    // Excess files: stripe 2, spread across OST pairs that only hold the
    // bulk load. Choose starting OSTs spaced evenly around the ring.
    let excess = nodes - bulk;
    for e in 0..excess {
        let start = if excess == 0 {
            0
        } else {
            (e * 2 * n_osts / (excess * 2).max(1)) % n_osts
        };
        let ost = (start + rotation) % n_osts;
        specs.push(FileSpec {
            // id ≡ ost (mod n_osts) places the first stripe there; keep
            // ids unique by adding a multiple of n_osts above the bulk.
            id: (ost + (q + 1 + e / n_osts.max(1)) * n_osts) as u64,
            shared: false,
            stripe_count: 2,
            needs_create: true,
        });
    }
    specs
}

/// Options of the Damaris strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamarisOptions {
    /// Cores per node handed to data management.
    pub dedicated_cores: usize,
    /// Write scheduling/placement.
    pub scheduler: Scheduler,
    /// How many staged dumps the shared segment can hold before
    /// backpressure (buffer size ÷ node dump bytes).
    pub buffer_dumps: usize,
    /// Drop iterations instead of blocking when the buffer is full
    /// (§V.C.1's choice).
    pub skip_when_full: bool,
    /// Bytes shrink factor applied by an in-spare-time compression plugin
    /// before writing (1.0 = off) — the §IV.D compression experiment.
    pub compression_ratio: f64,
    /// Dedicated-core seconds of plugin work per dump (e.g. in-situ
    /// analysis); 0 for pure I/O.
    pub plugin_seconds_per_dump: f64,
    /// Event-transport implementation: a mutex queue's post cost grows
    /// with the number of contending compute cores, the sharded
    /// transport's stays flat (mirrors `damaris_shm::transport`).
    pub transport: TransportKind,
    /// Shared-memory allocator: the first-fit mutex free list serializes
    /// a node's clients per block allocation, the size-class allocator's
    /// lock-free pop stays flat (mirrors `damaris_shm::SharedSegment`).
    pub allocator: AllocatorKind,
    /// Rank realization: `Threads` posts events through in-memory queues;
    /// `Processes` crosses a Unix-domain socket per event (mirrors
    /// `mini_mpi::World::run_spawned` + `damaris_core::process`, with
    /// costs calibrated from `BENCH_mpi_transport.json`).
    pub world: WorldKind,
    /// Heartbeat failure detection on the process-world links
    /// (`<world heartbeat_ms="…"/>`): every sequenced frame is retained
    /// for retransmission until acked, which taxes each post slightly
    /// (mirrors `mini_mpi`'s reliable mode; the CI bench gate holds the
    /// tax under 5 % of the post cost). Irrelevant in the thread world.
    pub heartbeat: bool,
}

impl Default for DamarisOptions {
    fn default() -> Self {
        DamarisOptions {
            dedicated_cores: 1,
            scheduler: Scheduler::Greedy,
            buffer_dumps: 2,
            skip_when_full: true,
            compression_ratio: 1.0,
            plugin_seconds_per_dump: 0.0,
            transport: TransportKind::Mutex,
            allocator: AllocatorKind::SizeClass,
            world: WorldKind::Threads,
            heartbeat: false,
        }
    }
}

impl DamarisOptions {
    /// Derive simulator options from a real middleware configuration, so
    /// one XML file drives both the node runtime and the cluster model
    /// (`<queue kind>` selects the transport here too).
    pub fn from_config(cfg: &damaris_xml::schema::Configuration) -> Self {
        let arch = &cfg.architecture;
        let bytes = cfg.bytes_per_iteration();
        DamarisOptions {
            dedicated_cores: arch.dedicated_cores.max(1),
            buffer_dumps: arch
                .buffer_size
                .checked_div(bytes)
                .map_or(2, |dumps| dumps.max(1)),
            skip_when_full: arch.skip.mode == damaris_xml::schema::SkipMode::DropIteration,
            transport: match arch.queue_kind {
                damaris_xml::schema::QueueKind::Mutex => TransportKind::Mutex,
                damaris_xml::schema::QueueKind::Sharded => TransportKind::Sharded,
            },
            allocator: arch.allocator,
            world: arch.world,
            heartbeat: arch.heartbeat_ms.unwrap_or(0) > 0,
            ..Default::default()
        }
    }
}

/// The I/O approach under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// One file per rank per dump, written synchronously.
    FilePerProcess,
    /// Two-phase collective I/O into one shared file per dump.
    Collective,
    /// Dedicated-core asynchronous I/O.
    Damaris(DamarisOptions),
    /// Synchronous in-situ analysis (VisIt-libsim style): every rank stops
    /// for `analysis_seconds` (jittered straggler max) each dump; no file
    /// I/O. The §V.C.1 baseline.
    SyncInSitu {
        /// Mean per-rank analysis+render time per dump.
        analysis_seconds: f64,
    },
}

impl Strategy {
    /// Damaris with default options (greedy scheduling).
    pub fn damaris_greedy() -> Self {
        Strategy::Damaris(DamarisOptions::default())
    }

    /// Damaris with balanced-placement scheduling (the 12.7 GB/s setup).
    pub fn damaris_balanced() -> Self {
        Strategy::Damaris(DamarisOptions {
            scheduler: Scheduler::Balanced,
            ..Default::default()
        })
    }

    /// Damaris over the sharded lock-free event transport.
    pub fn damaris_sharded() -> Self {
        Strategy::Damaris(DamarisOptions {
            transport: TransportKind::Sharded,
            ..Default::default()
        })
    }

    /// Damaris with every rank its own OS process: events cross Unix
    /// sockets instead of in-memory queues.
    pub fn damaris_processes() -> Self {
        Strategy::Damaris(DamarisOptions {
            world: WorldKind::Processes,
            ..Default::default()
        })
    }

    /// Name for tables.
    pub fn name(&self) -> String {
        match self {
            Strategy::FilePerProcess => "file-per-process".into(),
            Strategy::Collective => "collective".into(),
            Strategy::Damaris(o) => format!("damaris/{}", o.scheduler.name()),
            Strategy::SyncInSitu { .. } => "sync-insitu".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Strategy::FilePerProcess.name(), "file-per-process");
        assert_eq!(Strategy::damaris_greedy().name(), "damaris/greedy");
        assert_eq!(Strategy::damaris_balanced().name(), "damaris/balanced");
    }

    #[test]
    fn default_placement_rotates_per_dump() {
        let s = Scheduler::Greedy;
        let d0 = s.place_files(10, 4, 0);
        let d1 = s.place_files(10, 4, 1);
        assert_eq!(d0.len(), 10);
        assert_ne!(d0[0].id % 4, d1[0].id % 4, "rotation moves the imbalance");
        assert!(d0.iter().all(|f| f.stripe_count == 1 && !f.shared));
    }

    #[test]
    fn balanced_placement_splits_excess() {
        // 768 files over 336 OSTs: 672 bulk (stripe 1) + 96 excess (stripe 2).
        let specs = balanced_placement(768, 336, 0);
        assert_eq!(specs.len(), 768);
        let bulk = specs.iter().filter(|f| f.stripe_count == 1).count();
        let split = specs.iter().filter(|f| f.stripe_count == 2).count();
        assert_eq!(bulk, 672);
        assert_eq!(split, 96);
        // Byte-load per OST: bulk gives exactly 2 per OST; excess halves
        // add ≤ 1 half-file per OST.
        let mut load = vec![0.0f64; 336];
        for f in &specs {
            let base = (f.id as usize) % 336;
            match f.stripe_count {
                1 => load[base] += 1.0,
                2 => {
                    load[base] += 0.5;
                    load[(base + 1) % 336] += 0.5;
                }
                _ => unreachable!(),
            }
        }
        let max = load.iter().cloned().fold(0.0, f64::max);
        let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= 1.0,
            "balanced placement must equalize byte load: {min}..{max}"
        );
        assert!(max < 3.0, "no OST serves a full extra file, max = {max}");
    }

    #[test]
    fn balanced_ids_unique() {
        let specs = balanced_placement(768, 336, 3);
        let mut ids: Vec<u64> = specs.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 768, "file ids must be unique");
    }

    #[test]
    fn plan_starts_delegates() {
        let ready = vec![0.0, 0.0, 0.0, 0.0];
        assert_eq!(Scheduler::Greedy.plan_starts(&ready, 5.0), ready);
        let tb = Scheduler::TokenBucket { concurrent: 1 }.plan_starts(&ready, 5.0);
        let mut sorted = tb.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![0.0, 5.0, 10.0, 15.0]);
    }
}
