//! The simulation driver: advance virtual time through compute and I/O
//! phases under each strategy.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pfs_sim::rng::lognormal_unit_mean;
use pfs_sim::{FileSpec, Pfs, WriteRequest};

use crate::metrics::RunMetrics;
use crate::platform::Platform;
use crate::strategy::{AllocatorKind, DamarisOptions, Strategy, TransportKind, WorldKind};
use crate::workload::Workload;

/// Modeled cost of posting one event on the mutex transport with a single
/// uncontended client (lock + condvar signal), calibrated against
/// `benches/transport.rs` on commodity hardware. Under contention the
/// expected cost grows linearly with the number of clients serialized on
/// the node's one lock.
const MUTEX_POST_SECONDS: f64 = 120e-9;
/// Modeled cost of posting one event on the sharded transport: one slot
/// write plus one release store into the client's own ring, flat in the
/// client count.
const SHARDED_POST_SECONDS: f64 = 25e-9;
/// Modeled cost of one block allocation from the first-fit free list with
/// a single uncontended client (mutex + linear hole scan), calibrated
/// against `benches/write_path.rs`. Under contention the expected cost
/// grows linearly with the clients serialized on the node's one lock.
const FIRSTFIT_ALLOC_SECONDS: f64 = 150e-9;
/// Modeled cost of one block allocation from the size-class allocator:
/// a slab-cache slot swap or one lock-free class-queue pop, flat in the
/// client count.
const SIZECLASS_ALLOC_SECONDS: f64 = 30e-9;
/// Modeled cost of one variable-size block allocation from the buddy
/// tier: a validated order-queue pop (occasionally a split chain), flat
/// in the client count like the class pop but slightly dearer — the
/// state-word CAS plus the amortized split/merge work
/// (`benches/amr_alloc.rs` → `BENCH_amr_alloc.json`). The first-fit
/// baseline pays the mutex *and* an O(holes) scan that mixed-size churn
/// keeps fragmenting, which is why it also scales with the client count.
const BUDDY_ALLOC_SECONDS: f64 = 45e-9;
/// Modeled sim-visible cost of posting one event in the process world:
/// envelope encode plus hand-off to the per-peer socket writer thread —
/// the wire write itself is asynchronous, so a post is *cheap* (cheaper
/// than the mutex mailbox, even). Calibrated against
/// `benches/mpi_transport.rs` (`BENCH_mpi_transport.json`,
/// `world = processes`, `post_ns` ≈ 150 ns). Flat in the client count:
/// every client owns its own connection to the dedicated core.
const UDS_POST_SECONDS: f64 = 150e-9;
/// Modeled cost of the per-dump iteration acknowledgement in the process
/// world: the end-of-iteration descriptor's round trip over the socket
/// (framing, socket hop, demux reader, mailbox wakeup — twice). This is
/// where the process boundary actually costs: calibrated against the
/// same bench's `roundtrip_ns` ≈ 19 µs, ~7× the in-process condvar
/// roundtrip.
const UDS_ACK_ROUNDTRIP_SECONDS: f64 = 19e-6;
/// Modeled per-post tax of the reliable heartbeat mode
/// (`<world heartbeat_ms="…"/>`): each sequenced frame is cloned into the
/// link's retransmission buffer and later pruned when the peer's receive
/// cursor (piggybacked on PING/PONG) acknowledges it. The PING traffic
/// itself is per-interval, not per-post, and amortizes to noise; the
/// retention bookkeeping is what shows up per frame. Calibrated against
/// `benches/mpi_transport.rs` (`heartbeat_on_off_post_p50`, CI-gated
/// ≤ 1.05 — i.e. ≤ 7.5 ns on a 150 ns post).
const HEARTBEAT_POST_OVERHEAD_SECONDS: f64 = 6e-9;

/// Simulate one run of `workload` on `ranks` cores of `platform` under
/// `strategy`, deterministically from `seed`.
pub fn run(
    platform: &Platform,
    workload: &Workload,
    ranks: usize,
    strategy: Strategy,
    seed: u64,
) -> RunMetrics {
    assert!(
        ranks >= platform.cores_per_node,
        "need at least one full node"
    );
    match strategy {
        Strategy::FilePerProcess => run_fpp(platform, workload, ranks, seed),
        Strategy::Collective => run_collective(platform, workload, ranks, seed),
        Strategy::Damaris(opts) => run_damaris(platform, workload, ranks, opts, seed),
        Strategy::SyncInSitu { analysis_seconds } => {
            run_sync_insitu(platform, workload, ranks, analysis_seconds, seed)
        }
    }
}

fn base_metrics(
    platform: &Platform,
    workload: &Workload,
    ranks: usize,
    strategy: &Strategy,
) -> RunMetrics {
    RunMetrics {
        strategy: strategy.name(),
        platform: platform.name,
        ranks,
        nodes: platform.nodes_for(ranks),
        dumps: workload.dumps,
        wall_seconds: 0.0,
        wall_with_drain: 0.0,
        compute_seconds: 0.0,
        per_dump_io_spans: Vec::new(),
        write_samples: Vec::new(),
        bytes_written: 0,
        agg_throughput: 0.0,
        dedicated_idle: None,
        skipped_node_dumps: 0,
        files_per_dump: 0,
        comm_bytes: 0,
        event_post_seconds: 0.0,
        alloc_seconds: 0.0,
    }
}

/// Cap stored per-(rank, dump) samples: statistics stay faithful while
/// 9216-rank runs do not balloon memory.
const MAX_SAMPLES: usize = 200_000;

fn push_samples(samples: &mut Vec<f64>, iter: impl Iterator<Item = f64>) {
    for s in iter {
        if samples.len() < MAX_SAMPLES {
            samples.push(s);
        }
    }
}

fn run_fpp(platform: &Platform, workload: &Workload, ranks: usize, seed: u64) -> RunMetrics {
    let mut m = base_metrics(platform, workload, ranks, &Strategy::FilePerProcess);
    m.files_per_dump = ranks;
    let mut pfs = Pfs::new(platform.pfs.clone(), seed);
    let mut t = 0.0f64;
    let mut burst_tputs = Vec::new();
    for dump in 0..workload.dumps {
        t += workload.compute_per_dump();
        m.compute_seconds += workload.compute_per_dump();
        let requests: Vec<WriteRequest> = (0..ranks)
            .map(|r| {
                WriteRequest::new(
                    t,
                    r as u64,
                    workload.bytes_per_core,
                    FileSpec::private(dump * ranks as u64 + r as u64, true),
                )
            })
            .collect();
        let phase = pfs.simulate_writes(&requests);
        let span = phase.finish() - t;
        m.per_dump_io_spans.push(span);
        push_samples(
            &mut m.write_samples,
            phase.outcomes.iter().map(|o| o.duration()),
        );
        m.bytes_written += workload.dump_bytes(ranks);
        burst_tputs.push(workload.dump_bytes(ranks) as f64 / span.max(1e-9));
        t = phase.finish();
    }
    m.wall_seconds = t;
    m.wall_with_drain = t;
    m.agg_throughput = mean(&burst_tputs);
    m
}

fn run_collective(platform: &Platform, workload: &Workload, ranks: usize, seed: u64) -> RunMetrics {
    let mut m = base_metrics(platform, workload, ranks, &Strategy::Collective);
    m.files_per_dump = 1;
    let nodes = platform.nodes_for(ranks);
    let mut pfs = Pfs::new(platform.pfs.clone(), seed);
    let mut t = 0.0f64;
    let mut burst_tputs = Vec::new();
    let node_bytes = workload.bytes_per_core * platform.cores_per_node as u64;
    for dump in 0..workload.dumps {
        t += workload.compute_per_dump();
        m.compute_seconds += workload.compute_per_dump();
        // Two-phase aggregation: every node pushes its cores' data through
        // its NIC to the aggregators, plus a logarithmic latency term.
        let aggregation = node_bytes as f64 / platform.injection_bw
            + platform.latency * (ranks as f64).log2().ceil();
        m.comm_bytes += workload.dump_bytes(ranks);
        let t_ready = t + aggregation;
        // One aggregator per node writes its own contiguous region of the
        // shared file; the region offset determines which OSTs it touches.
        let stripes_per_region = node_bytes.div_ceil(platform.pfs.stripe_size);
        let requests: Vec<WriteRequest> = (0..nodes)
            .map(|n| WriteRequest {
                arrival: t_ready,
                client: n as u64,
                bytes: node_bytes,
                file: FileSpec {
                    id: dump,
                    shared: true,
                    stripe_count: 0,
                    needs_create: n == 0,
                },
                stripe_offset: n as u64 * stripes_per_region,
            })
            .collect();
        let phase = pfs.simulate_writes(&requests);
        let span = phase.finish() - t; // aggregation + write, sim-visible
        m.per_dump_io_spans.push(span);
        // Collective calls return together: every rank observes the span.
        push_samples(&mut m.write_samples, std::iter::repeat_n(span, ranks));
        m.bytes_written += workload.dump_bytes(ranks);
        burst_tputs.push(workload.dump_bytes(ranks) as f64 / span.max(1e-9));
        t = phase.finish();
    }
    m.wall_seconds = t;
    m.wall_with_drain = t;
    m.agg_throughput = mean(&burst_tputs);
    m
}

fn run_damaris(
    platform: &Platform,
    workload: &Workload,
    ranks: usize,
    opts: DamarisOptions,
    seed: u64,
) -> RunMetrics {
    let strategy = Strategy::Damaris(opts);
    let mut m = base_metrics(platform, workload, ranks, &strategy);
    let nodes = platform.nodes_for(ranks);
    m.files_per_dump = nodes;
    let cores = platform.cores_per_node;
    let dedicated = opts.dedicated_cores.clamp(1, cores - 1);
    let compute_cores = cores - dedicated;

    // Same global problem as the baselines, spread over fewer compute
    // cores: per-step time inflates by cores/compute_cores ("a slight
    // impact due to the fact that some cores are not performing
    // computation anymore", §IV.A), and each compute core stages
    // correspondingly more data.
    let inflate = cores as f64 / compute_cores as f64;
    let compute_per_dump = workload.compute_per_dump() * inflate;
    let bytes_per_client = (workload.bytes_per_core as f64 * inflate) as u64;
    let node_bytes = bytes_per_client * compute_cores as u64;
    let written_node_bytes = (node_bytes as f64 / opts.compression_ratio.max(1.0)) as u64;
    // Sim-visible cost of one dump: the shared-memory memcpy (§IV.B)
    // plus the event posts (one block publish + one end-of-iteration per
    // client). The transport decides whether post cost scales with the
    // contending client count (mutex) or stays flat (sharded).
    let shm_seconds = bytes_per_client as f64 / platform.shm_bw;
    // In the thread world an event post is an in-memory queue operation
    // (mutex contention vs flat sharded rings); in the process world a
    // post is an enqueue to the socket writer thread (flat in the client
    // count — one connection per client), and the real boundary cost is
    // the descriptor round trip per dump for the iteration
    // acknowledgement the cross-process free protocol needs.
    let (post_each, ack_seconds) = match opts.world {
        WorldKind::Threads => (
            match opts.transport {
                TransportKind::Mutex => MUTEX_POST_SECONDS * compute_cores as f64,
                TransportKind::Sharded => SHARDED_POST_SECONDS,
            },
            0.0,
        ),
        WorldKind::Processes => (
            UDS_POST_SECONDS
                + if opts.heartbeat {
                    HEARTBEAT_POST_OVERHEAD_SECONDS
                } else {
                    0.0
                },
            UDS_ACK_ROUNDTRIP_SECONDS,
        ),
    };
    let event_post_seconds = 2.0 * post_each + ack_seconds;
    // One shared-memory block allocation per client dump (§IV.B: the rest
    // of the write is the memcpy itself, already in shm_seconds).
    let alloc_seconds = match opts.allocator {
        AllocatorKind::FirstFit => FIRSTFIT_ALLOC_SECONDS * compute_cores as f64,
        AllocatorKind::SizeClass => SIZECLASS_ALLOC_SECONDS,
        AllocatorKind::Buddy => BUDDY_ALLOC_SECONDS,
    };

    let mut pfs = Pfs::new(platform.pfs.clone(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda3a);
    let mut sim_t = 0.0f64;
    let mut burst_tputs = Vec::new();
    // Outstanding write finish times per node (backpressure bookkeeping).
    let mut outstanding: Vec<Vec<f64>> = vec![Vec::new(); nodes];
    let mut dedicated_busy = vec![0.0f64; nodes];
    let mut last_finish = 0.0f64;
    let est_write = written_node_bytes as f64 / platform.pfs.ost_bandwidth;

    for dump in 0..workload.dumps {
        sim_t += compute_per_dump;
        m.compute_seconds += compute_per_dump;

        // Backpressure: a node whose buffer still holds `buffer_dumps`
        // unfinished dumps either skips (paper's choice) or stalls.
        let mut skip_node = vec![false; nodes];
        let mut stall = 0.0f64;
        for node in 0..nodes {
            outstanding[node].retain(|&f| f > sim_t);
            if outstanding[node].len() >= opts.buffer_dumps {
                if opts.skip_when_full {
                    skip_node[node] = true;
                    m.skipped_node_dumps += 1;
                } else {
                    // Stall until the oldest write drains.
                    let oldest = outstanding[node]
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min);
                    stall = stall.max((oldest - sim_t).max(0.0));
                }
            }
        }
        if stall > 0.0 {
            sim_t += stall;
            for pending in outstanding.iter_mut() {
                pending.retain(|&f| f > sim_t);
            }
        }

        // Staging: one block allocation, one memcpy and the event posts
        // per client, sim-visible.
        sim_t += shm_seconds + event_post_seconds + alloc_seconds;
        m.event_post_seconds += event_post_seconds;
        m.alloc_seconds += alloc_seconds;
        m.per_dump_io_spans
            .push(shm_seconds + event_post_seconds + alloc_seconds + stall);
        push_samples(
            &mut m.write_samples,
            std::iter::repeat_n(
                shm_seconds + event_post_seconds + alloc_seconds,
                compute_cores * nodes,
            ),
        );

        // The dedicated cores write asynchronously.
        let specs = opts.scheduler.place_files(nodes, platform.pfs.n_osts, dump);
        let ready: Vec<f64> = vec![sim_t; nodes];
        let starts = opts.scheduler.plan_starts(&ready, est_write);
        let mut requests = Vec::with_capacity(nodes);
        let mut writers = Vec::with_capacity(nodes);
        for node in 0..nodes {
            if skip_node[node] {
                continue;
            }
            requests.push(WriteRequest::new(
                starts[node],
                node as u64,
                written_node_bytes,
                specs[node],
            ));
            writers.push(node);
        }
        if requests.is_empty() {
            continue;
        }
        let phase = pfs.simulate_writes(&requests);
        let burst_start = phase.start();
        let burst_span = phase.finish() - burst_start;
        let written: u64 = requests.iter().map(|r| r.bytes).sum();
        m.bytes_written += written;
        burst_tputs.push(written as f64 / burst_span.max(1e-9));
        for (o, &node) in phase.outcomes.iter().zip(&writers) {
            outstanding[node].push(o.finish);
            dedicated_busy[node] += (o.finish - o.arrival)
                + opts.plugin_seconds_per_dump * lognormal_unit_mean(&mut rng, 0.05);
            last_finish = last_finish.max(o.finish);
        }
    }
    m.wall_seconds = sim_t;
    m.wall_with_drain = sim_t.max(last_finish);
    m.agg_throughput = mean(&burst_tputs);
    let total_busy: f64 = dedicated_busy.iter().sum();
    m.dedicated_idle =
        Some((1.0 - total_busy / (nodes as f64 * m.wall_with_drain.max(1e-9))).clamp(0.0, 1.0));
    m
}

fn run_sync_insitu(
    platform: &Platform,
    workload: &Workload,
    ranks: usize,
    analysis_seconds: f64,
    seed: u64,
) -> RunMetrics {
    let strategy = Strategy::SyncInSitu { analysis_seconds };
    let mut m = base_metrics(platform, workload, ranks, &strategy);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    // Per-rank analysis times vary (mesh-dependent work, OS noise); the
    // synchronous coupling waits for the straggler every single dump.
    // Sigma chosen to match the §V.C observation that synchronous VisIt
    // "did not scale that far" at full-cluster size.
    let sigma = 0.45;
    for _ in 0..workload.dumps {
        t += workload.compute_per_dump();
        m.compute_seconds += workload.compute_per_dump();
        let mut worst = 0.0f64;
        for _ in 0..ranks {
            worst = worst.max(analysis_seconds * lognormal_unit_mean(&mut rng, sigma));
        }
        t += worst;
        m.per_dump_io_spans.push(worst);
        push_samples(&mut m.write_samples, std::iter::repeat_n(worst, ranks));
    }
    m.wall_seconds = t;
    m.wall_with_drain = t;
    m
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{Scheduler, TransportKind};

    fn quiet_kraken() -> Platform {
        Platform::kraken().without_jitter()
    }

    #[test]
    fn damaris_beats_both_baselines_at_scale() {
        // The paper's ordering (damaris < fpp < collective in run time)
        // holds at full Kraken scale; at a few thousand ranks FPP's OST
        // interference is still mild and the paper itself notes FPP
        // "achieves better performance" than collective there.
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let damaris = run(&p, &w, ranks, Strategy::damaris_greedy(), 1);
        let fpp = run(&p, &w, ranks, Strategy::FilePerProcess, 1);
        let coll = run(&p, &w, ranks, Strategy::Collective, 1);
        assert!(
            damaris.wall_seconds < fpp.wall_seconds && fpp.wall_seconds < coll.wall_seconds,
            "expected damaris < fpp < collective, got {:.0} / {:.0} / {:.0}",
            damaris.wall_seconds,
            fpp.wall_seconds,
            coll.wall_seconds
        );
    }

    #[test]
    fn kraken_throughputs_match_paper_shape() {
        // §IV.C at 9216 cores: collective ≈ 0.5, FPP < 1.7, Damaris ≈ 10 GB/s.
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let coll = run(&p, &w, ranks, Strategy::Collective, 2);
        let fpp = run(&p, &w, ranks, Strategy::FilePerProcess, 2);
        let dam = run(&p, &w, ranks, Strategy::damaris_greedy(), 2);
        let gb = 1e9;
        assert!(
            (0.3..0.9).contains(&(coll.agg_throughput / gb)),
            "collective: {:.2} GB/s",
            coll.agg_throughput / gb
        );
        assert!(
            (1.0..2.2).contains(&(fpp.agg_throughput / gb)),
            "fpp: {:.2} GB/s",
            fpp.agg_throughput / gb
        );
        assert!(
            (8.5..12.0).contains(&(dam.agg_throughput / gb)),
            "damaris: {:.2} GB/s",
            dam.agg_throughput / gb
        );
    }

    #[test]
    fn balanced_scheduler_reaches_higher_throughput() {
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let greedy = run(&p, &w, ranks, Strategy::damaris_greedy(), 3);
        let balanced = run(&p, &w, ranks, Strategy::damaris_balanced(), 3);
        assert!(
            balanced.agg_throughput > greedy.agg_throughput * 1.15,
            "balanced {:.2} GB/s must beat greedy {:.2} GB/s by ≥15 %",
            balanced.agg_throughput / 1e9,
            greedy.agg_throughput / 1e9
        );
        assert!(
            (11.5..13.5).contains(&(balanced.agg_throughput / 1e9)),
            "balanced: {:.2} GB/s (paper: 12.7)",
            balanced.agg_throughput / 1e9
        );
    }

    #[test]
    fn damaris_hides_variability() {
        let p = Platform::kraken(); // jitter ON
        let w = Workload::cm1(3);
        let ranks = 1152;
        let dam = run(&p, &w, ranks, Strategy::damaris_greedy(), 4);
        let fpp = run(&p, &w, ranks, Strategy::FilePerProcess, 4);
        let dj = dam.jitter();
        let fj = fpp.jitter();
        assert!(dj.spread < 1.01, "sim-side writes are constant: {dj:?}");
        assert!(
            (0.05..0.2).contains(&dj.median),
            "≈0.1 s shm copy, got {}",
            dj.median
        );
        assert!(fj.spread > 1.5, "baseline must show jitter: {fj:?}");
        assert!(fj.max > dj.max * 50.0, "orders of magnitude apart");
    }

    #[test]
    fn collective_io_share_near_seventy_percent() {
        let p = quiet_kraken();
        let w = Workload::cm1(3);
        let coll = run(&p, &w, 9216, Strategy::Collective, 5);
        let frac = coll.io_fraction();
        assert!(
            (0.55..0.8).contains(&frac),
            "I/O share of run time should be ≈70 %, got {:.0} %",
            frac * 100.0
        );
    }

    #[test]
    fn damaris_speedup_over_collective_matches_paper() {
        let p = Platform::kraken();
        let w = Workload::cm1(3);
        let ranks = 9216;
        let dam = run(&p, &w, ranks, Strategy::damaris_greedy(), 6);
        let coll = run(&p, &w, ranks, Strategy::Collective, 6);
        let speedup = dam.speedup_over(&coll);
        assert!(
            (2.5..4.5).contains(&speedup),
            "paper reports 3.5×, model gives {speedup:.2}×"
        );
    }

    #[test]
    fn dedicated_cores_mostly_idle() {
        let p = quiet_kraken();
        let w = Workload::cm1(4);
        for ranks in [576, 9216] {
            let dam = run(&p, &w, ranks, Strategy::damaris_greedy(), 7);
            let idle = dam.dedicated_idle.unwrap();
            assert!(
                (0.85..1.0).contains(&idle),
                "paper: 92–99 % idle; model at {ranks}: {:.1} %",
                idle * 100.0
            );
        }
    }

    #[test]
    fn compression_shrinks_written_bytes() {
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let plain = run(&p, &w, 1152, Strategy::damaris_greedy(), 8);
        let compressed = run(
            &p,
            &w,
            1152,
            Strategy::Damaris(DamarisOptions {
                compression_ratio: 6.0,
                ..Default::default()
            }),
            8,
        );
        assert!(compressed.bytes_written * 5 < plain.bytes_written);
        // Compression must not slow the simulation down (§IV.D: "without
        // any overhead on the simulation").
        assert!(compressed.wall_seconds <= plain.wall_seconds * 1.001);
    }

    #[test]
    fn skip_policy_drops_when_storage_cannot_keep_up() {
        // Tiny compute between dumps: data is produced faster than the
        // storage drains it; the buffer fills and iterations drop.
        let p = quiet_kraken();
        let w = Workload {
            name: "burst",
            dumps: 10,
            steps_per_dump: 1,
            compute_seconds_per_step: 1.0,
            bytes_per_core: 45 << 20,
        };
        let opts = DamarisOptions {
            buffer_dumps: 1,
            ..Default::default()
        };
        let skip = run(&p, &w, 9216, Strategy::Damaris(opts), 9);
        assert!(skip.skipped_node_dumps > 0, "overload must trigger skips");
        // Block mode instead stalls the simulation.
        let block = run(
            &p,
            &w,
            9216,
            Strategy::Damaris(DamarisOptions {
                buffer_dumps: 1,
                skip_when_full: false,
                ..Default::default()
            }),
            9,
        );
        assert_eq!(block.skipped_node_dumps, 0);
        assert!(
            block.wall_seconds > skip.wall_seconds,
            "blocking stalls the simulation: {:.0}s vs {:.0}s",
            block.wall_seconds,
            skip.wall_seconds
        );
    }

    #[test]
    fn sync_insitu_straggler_grows_with_scale() {
        let p = Platform::grid5000();
        let w = Workload::nek(5);
        let small = run(
            &p,
            &w,
            96,
            Strategy::SyncInSitu {
                analysis_seconds: 1.0,
            },
            10,
        );
        let large = run(
            &p,
            &w,
            768,
            Strategy::SyncInSitu {
                analysis_seconds: 1.0,
            },
            10,
        );
        assert!(
            large.io_seconds() > small.io_seconds(),
            "synchronous coupling must degrade with scale"
        );
        // Damaris in-situ: zero sim-visible analysis cost.
        let dam = run(
            &p,
            &w,
            768,
            Strategy::Damaris(DamarisOptions {
                plugin_seconds_per_dump: 1.0,
                ..Default::default()
            }),
            10,
        );
        assert!(dam.io_seconds() < large.io_seconds() * 0.2);
    }

    #[test]
    fn deterministic_runs() {
        let p = Platform::kraken();
        let w = Workload::cm1(2);
        let a = run(&p, &w, 576, Strategy::damaris_greedy(), 11);
        let b = run(&p, &w, 576, Strategy::damaris_greedy(), 11);
        assert_eq!(a.wall_seconds, b.wall_seconds);
        assert_eq!(a.write_samples, b.write_samples);
    }

    #[test]
    fn sharded_transport_cuts_event_post_cost() {
        // §IV.B: a post must not grow with core count. The mutex model
        // serializes a node's clients on one lock, so its aggregate post
        // time is ~(cores × base) per event; the sharded transport stays
        // flat. Both are microseconds — invisible in wall time — but the
        // accounting must show the contention gap and the wall-clock
        // ordering must never invert.
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let mutex = run(&p, &w, ranks, Strategy::damaris_greedy(), 13);
        let sharded = run(&p, &w, ranks, Strategy::damaris_sharded(), 13);
        assert!(mutex.event_post_seconds > 0.0 && sharded.event_post_seconds > 0.0);
        assert!(
            mutex.event_post_seconds > 5.0 * sharded.event_post_seconds,
            "mutex {} vs sharded {}: contention model missing",
            mutex.event_post_seconds,
            sharded.event_post_seconds
        );
        assert!(sharded.wall_seconds <= mutex.wall_seconds);
        // Baselines have no event queue at all.
        let fpp = run(&p, &w, ranks, Strategy::FilePerProcess, 13);
        assert_eq!(fpp.event_post_seconds, 0.0);
    }

    #[test]
    fn sizeclass_allocator_cuts_alloc_overhead() {
        // Mirrors the transport contention model at the allocator layer:
        // the first-fit mutex free list serializes a node's clients per
        // block allocation (~cores × base), the size-class allocator's
        // lock-free pop stays flat.
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let firstfit = run(
            &p,
            &w,
            ranks,
            Strategy::Damaris(DamarisOptions {
                allocator: AllocatorKind::FirstFit,
                ..Default::default()
            }),
            13,
        );
        let sizeclass = run(&p, &w, ranks, Strategy::damaris_greedy(), 13);
        assert!(firstfit.alloc_seconds > 0.0 && sizeclass.alloc_seconds > 0.0);
        assert!(
            firstfit.alloc_seconds > 5.0 * sizeclass.alloc_seconds,
            "first-fit {} vs size-class {}: contention model missing",
            firstfit.alloc_seconds,
            sizeclass.alloc_seconds
        );
        assert!(sizeclass.wall_seconds <= firstfit.wall_seconds);
        // The buddy tier keeps variable-size allocations flat in the
        // client count too: dearer than an exact class pop (state-word
        // CAS + amortized split/merge), nowhere near the serialized
        // first-fit scan.
        let buddy = run(
            &p,
            &w,
            ranks,
            Strategy::Damaris(DamarisOptions {
                allocator: AllocatorKind::Buddy,
                ..Default::default()
            }),
            13,
        );
        assert!(buddy.alloc_seconds > sizeclass.alloc_seconds);
        assert!(
            firstfit.alloc_seconds > 5.0 * buddy.alloc_seconds,
            "first-fit {} vs buddy {}: contention model missing",
            firstfit.alloc_seconds,
            buddy.alloc_seconds
        );
        // Baselines have no shared segment at all.
        let fpp = run(&p, &w, ranks, Strategy::FilePerProcess, 13);
        assert_eq!(fpp.alloc_seconds, 0.0);
    }

    #[test]
    fn damaris_options_from_config() {
        use damaris_xml::schema::Configuration;
        let cfg = Configuration::from_str(
            r#"<simulation name="x">
                 <architecture>
                   <dedicated cores="2"/>
                   <buffer size="16777216"/>
                   <queue capacity="256" kind="sharded"/>
                   <skip mode="drop-iteration" high-watermark="0.8"/>
                 </architecture>
                 <data>
                   <layout name="l" type="f64" dimensions="1024"/>
                   <variable name="u" layout="l"/>
                 </data>
               </simulation>"#,
        )
        .unwrap();
        let opts = DamarisOptions::from_config(&cfg);
        assert_eq!(opts.dedicated_cores, 2);
        assert_eq!(opts.transport, TransportKind::Sharded);
        assert!(opts.skip_when_full);
        // 16 MiB buffer ÷ 8 KiB per iteration = 2048 staged dumps.
        assert_eq!(opts.buffer_dumps, 2048);
        assert_eq!(opts.world, WorldKind::Threads, "world defaults to threads");
    }

    #[test]
    fn damaris_options_from_config_processes_world() {
        use damaris_xml::schema::Configuration;
        let cfg = Configuration::from_str(
            r#"<simulation name="x">
                 <architecture><world kind="processes"/></architecture>
               </simulation>"#,
        )
        .unwrap();
        assert_eq!(
            DamarisOptions::from_config(&cfg).world,
            WorldKind::Processes
        );
    }

    #[test]
    fn process_world_costs_more_than_threads_but_stays_asynchronous() {
        // The process boundary adds a ~19 µs ack round trip per dump —
        // dwarfing in-memory queue operations (ns) but invisible next to
        // the multi-second write phases: the dedicated-core design
        // survives the process boundary. Constants calibrated from
        // BENCH_mpi_transport.json (post ≈ 150 ns, roundtrip ≈ 19 µs).
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let threads = run(&p, &w, ranks, Strategy::damaris_sharded(), 13);
        let processes = run(&p, &w, ranks, Strategy::damaris_processes(), 13);
        assert!(
            processes.event_post_seconds > threads.event_post_seconds,
            "sockets {} must cost more than in-memory rings {}",
            processes.event_post_seconds,
            threads.event_post_seconds
        );
        // Still asynchronous I/O: wall time within 1% of the thread world.
        assert!(processes.wall_seconds <= threads.wall_seconds * 1.01);
        // And the per-dump accounting matches the constants: two posts
        // plus one ack round trip per client dump.
        let per_dump = processes.event_post_seconds / w.dumps as f64;
        let expected = 2.0 * UDS_POST_SECONDS + UDS_ACK_ROUNDTRIP_SECONDS;
        assert!(
            (per_dump - expected).abs() < 1e-12,
            "per-dump socket cost {per_dump} != modeled {expected}"
        );
    }

    #[test]
    fn heartbeat_mode_taxes_posts_by_under_five_percent() {
        // Reliable heartbeat links retain every sequenced frame until
        // acked — a per-post bookkeeping tax. The model must show the
        // tax (failure detection is not free) while staying inside the
        // CI bench gate's envelope (heartbeat_on_off_post_p50 ≤ 1.05):
        // the dedicated-core design keeps its asynchrony with failure
        // detection switched on.
        let p = quiet_kraken();
        let w = Workload::cm1(2);
        let ranks = 9216;
        let off = run(&p, &w, ranks, Strategy::damaris_processes(), 13);
        let on = run(
            &p,
            &w,
            ranks,
            Strategy::Damaris(DamarisOptions {
                world: WorldKind::Processes,
                heartbeat: true,
                ..Default::default()
            }),
            13,
        );
        assert!(
            on.event_post_seconds > off.event_post_seconds,
            "heartbeat bookkeeping must show up: on {} vs off {}",
            on.event_post_seconds,
            off.event_post_seconds
        );
        assert!(
            on.event_post_seconds <= off.event_post_seconds * 1.05,
            "heartbeat tax must stay within the CI gate's 5 %: on {} vs off {}",
            on.event_post_seconds,
            off.event_post_seconds
        );
        // Wall time is still dominated by compute + asynchronous writes.
        assert!(on.wall_seconds <= off.wall_seconds * 1.01);
        // In the thread world the knob is inert: no socket links exist.
        let t_off = run(&p, &w, ranks, Strategy::damaris_sharded(), 13);
        let t_on = run(
            &p,
            &w,
            ranks,
            Strategy::Damaris(DamarisOptions {
                transport: TransportKind::Sharded,
                heartbeat: true,
                ..Default::default()
            }),
            13,
        );
        assert_eq!(t_on.event_post_seconds, t_off.event_post_seconds);
    }

    #[test]
    fn damaris_options_from_config_heartbeat() {
        use damaris_xml::schema::Configuration;
        let on = Configuration::from_str(
            r#"<simulation name="x">
                 <architecture>
                   <world kind="processes" heartbeat_ms="100" heartbeat_timeout_ms="1000"/>
                 </architecture>
               </simulation>"#,
        )
        .unwrap();
        assert!(DamarisOptions::from_config(&on).heartbeat);
        let off = Configuration::from_str(
            r#"<simulation name="x">
                 <architecture><world kind="processes"/></architecture>
               </simulation>"#,
        )
        .unwrap();
        assert!(!DamarisOptions::from_config(&off).heartbeat);
    }

    #[test]
    fn scheduler_variants_run() {
        let p = quiet_kraken();
        let w = Workload::cm1(1);
        for sched in [
            Scheduler::Greedy,
            Scheduler::Staggered { groups: 3 },
            Scheduler::TokenBucket { concurrent: 336 },
            Scheduler::Balanced,
        ] {
            let m = run(
                &p,
                &w,
                1152,
                Strategy::Damaris(DamarisOptions {
                    scheduler: sched,
                    ..Default::default()
                }),
                12,
            );
            assert!(m.agg_throughput > 0.0, "{:?} produced no throughput", sched);
        }
    }
}
