//! Run-level metrics collected by the simulator.

pub use pfs_sim::stats::JitterSummary;

/// Everything one simulated run produces.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Strategy name.
    pub strategy: String,
    /// Platform name.
    pub platform: &'static str,
    /// Total cores (compute + dedicated).
    pub ranks: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Dumps simulated.
    pub dumps: u64,
    /// Application run time as the simulation experiences it (virtual
    /// seconds): compute + sim-visible I/O + stalls. For Damaris this
    /// excludes asynchronous writes still draining at the end.
    pub wall_seconds: f64,
    /// Run time including the final asynchronous drain.
    pub wall_with_drain: f64,
    /// Total compute seconds (per rank) across the run.
    pub compute_seconds: f64,
    /// Per-dump sim-visible I/O span (what the application waits for).
    pub per_dump_io_spans: Vec<f64>,
    /// Per-(rank, dump) sim-visible write durations — the §IV.B
    /// variability samples.
    pub write_samples: Vec<f64>,
    /// Bytes actually written to storage.
    pub bytes_written: u64,
    /// Mean per-dump burst throughput at the storage system (bytes/s).
    pub agg_throughput: f64,
    /// Idle fraction of the dedicated cores (Damaris only).
    pub dedicated_idle: Option<f64>,
    /// Node-dumps dropped by the skip policy.
    pub skipped_node_dumps: u64,
    /// Files created per dump.
    pub files_per_dump: usize,
    /// Bytes moved over the interconnect for aggregation.
    pub comm_bytes: u64,
    /// Sim-visible seconds one rank spent posting events to the transport
    /// (Damaris only; zero for the baselines, which have no event queue).
    pub event_post_seconds: f64,
    /// Sim-visible seconds one rank spent allocating shared-memory blocks
    /// (Damaris only; zero for the baselines, which have no segment).
    pub alloc_seconds: f64,
}

impl RunMetrics {
    /// Sim-visible I/O share of run time, in `[0, 1]`.
    pub fn io_fraction(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        let io: f64 = self.per_dump_io_spans.iter().sum();
        io / self.wall_seconds
    }

    /// Total sim-visible I/O seconds.
    pub fn io_seconds(&self) -> f64 {
        self.per_dump_io_spans.iter().sum()
    }

    /// Jitter summary over the per-(rank, dump) write samples.
    pub fn jitter(&self) -> JitterSummary {
        let mut d = self.write_samples.clone();
        d.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        if d.is_empty() {
            return JitterSummary::default();
        }
        let pick = |q: f64| d[((d.len() - 1) as f64 * q).round() as usize];
        let min = d[0];
        let max = d[d.len() - 1];
        JitterSummary {
            min,
            median: pick(0.5),
            p99: pick(0.99),
            max,
            spread: if min > 0.0 { max / min } else { f64::INFINITY },
        }
    }

    /// Speedup of this run relative to `other` (wall time ratio).
    pub fn speedup_over(&self, other: &RunMetrics) -> f64 {
        other.wall_seconds / self.wall_seconds
    }

    /// CSV header matching [`RunMetrics::to_csv_row`] (for plotting the
    /// weak-scaling and throughput figures from swept runs).
    pub fn csv_header() -> &'static str {
        "platform,strategy,ranks,nodes,dumps,wall_s,wall_with_drain_s,compute_s,\
         io_s,io_fraction,throughput_gbps,dedicated_idle,skipped_node_dumps,\
         files_per_dump,comm_bytes,jitter_min_s,jitter_median_s,jitter_p99_s,\
         jitter_max_s"
    }

    /// One CSV row summarizing this run.
    pub fn to_csv_row(&self) -> String {
        let j = self.jitter();
        format!(
            "{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{},{},{},{},{:.6},{:.6},{:.6},{:.6}",
            self.platform,
            self.strategy,
            self.ranks,
            self.nodes,
            self.dumps,
            self.wall_seconds,
            self.wall_with_drain,
            self.compute_seconds,
            self.io_seconds(),
            self.io_fraction(),
            self.agg_throughput / 1e9,
            self.dedicated_idle.map_or(String::new(), |v| format!("{v:.4}")),
            self.skipped_node_dumps,
            self.files_per_dump,
            self.comm_bytes,
            j.min,
            j.median,
            j.p99,
            j.max,
        )
    }

    /// Render a batch of runs as a complete CSV document.
    pub fn to_csv(runs: &[RunMetrics]) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for r in runs {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            strategy: "test".into(),
            platform: "kraken",
            ranks: 24,
            nodes: 2,
            dumps: 2,
            wall_seconds: 100.0,
            wall_with_drain: 110.0,
            compute_seconds: 60.0,
            per_dump_io_spans: vec![15.0, 25.0],
            write_samples: vec![1.0, 2.0, 4.0, 8.0],
            bytes_written: 1 << 30,
            agg_throughput: 1e9,
            dedicated_idle: Some(0.95),
            skipped_node_dumps: 0,
            files_per_dump: 2,
            comm_bytes: 0,
            event_post_seconds: 0.0,
            alloc_seconds: 0.0,
        }
    }

    #[test]
    fn io_fraction() {
        let m = sample();
        assert!((m.io_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(m.io_seconds(), 40.0);
    }

    #[test]
    fn jitter_summary() {
        let j = sample().jitter();
        assert_eq!(j.min, 1.0);
        assert_eq!(j.max, 8.0);
        assert_eq!(j.spread, 8.0);
    }

    #[test]
    fn speedup() {
        let a = sample();
        let mut b = sample();
        b.wall_seconds = 300.0;
        assert!((a.speedup_over(&b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let runs = vec![sample(), sample()];
        let csv = RunMetrics::to_csv(&runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per run");
        let header_cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header_cols, "ragged row: {row}");
        }
        assert!(lines[1].starts_with("kraken,test,24,2,2,100.000"));
        assert!(lines[1].contains(",0.9500,"), "idle fraction serialized");
    }

    #[test]
    fn csv_handles_missing_idle() {
        let mut m = sample();
        m.dedicated_idle = None;
        let row = m.to_csv_row();
        // Empty field between skipped commas, not a literal "None".
        assert!(row.contains(",,0,"), "{row}");
    }
}
