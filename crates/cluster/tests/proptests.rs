//! Property tests for the cluster simulator: structural invariants that
//! must hold for any workload, scale, strategy and seed.

use cluster_sim::{run, DamarisOptions, Platform, Scheduler, Strategy as IoStrategy, Workload};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        1u64..4,
        1u64..6,
        1.0f64..100.0,
        (1u64..64).prop_map(|m| m << 20),
    )
        .prop_map(|(dumps, steps, compute, bytes)| Workload {
            name: "prop",
            dumps,
            steps_per_dump: steps,
            compute_seconds_per_step: compute,
            bytes_per_core: bytes,
        })
}

fn strategy_strategy() -> impl Strategy<Value = IoStrategy> {
    prop_oneof![
        Just(IoStrategy::FilePerProcess),
        Just(IoStrategy::Collective),
        Just(IoStrategy::damaris_greedy()),
        Just(IoStrategy::damaris_balanced()),
        (1usize..3, any::<bool>()).prop_map(|(buffer_dumps, skip)| {
            IoStrategy::Damaris(DamarisOptions {
                buffer_dumps,
                skip_when_full: skip,
                scheduler: Scheduler::TokenBucket { concurrent: 64 },
                ..Default::default()
            })
        }),
        (0.1f64..5.0).prop_map(|analysis_seconds| IoStrategy::SyncInSitu { analysis_seconds }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Time only moves forward and accounting stays consistent.
    #[test]
    fn causality_and_accounting(
        w in workload_strategy(),
        s in strategy_strategy(),
        ranks_mult in 1usize..6,
        seed in any::<u64>(),
    ) {
        let platform = Platform::kraken();
        let ranks = platform.cores_per_node * ranks_mult * 8;
        let m = run(&platform, &w, ranks, s, seed);
        prop_assert!(m.wall_seconds.is_finite() && m.wall_seconds > 0.0);
        prop_assert!(m.wall_with_drain >= m.wall_seconds - 1e-9);
        prop_assert!(m.compute_seconds > 0.0);
        prop_assert!(m.wall_seconds >= m.compute_seconds - 1e-9,
            "wall {} < compute {}", m.wall_seconds, m.compute_seconds);
        prop_assert_eq!(m.per_dump_io_spans.len() as u64, w.dumps);
        for &span in &m.per_dump_io_spans {
            prop_assert!(span >= 0.0 && span.is_finite());
        }
        prop_assert!((0.0..=1.0).contains(&m.io_fraction()));
        if let Some(idle) = m.dedicated_idle {
            prop_assert!((0.0..=1.0).contains(&idle));
        }
        prop_assert_eq!(m.nodes, platform.nodes_for(ranks));
    }

    /// Identical seeds reproduce identical runs, bit for bit.
    #[test]
    fn deterministic(
        w in workload_strategy(),
        s in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let platform = Platform::grid5000();
        let ranks = platform.cores_per_node * 8;
        let a = run(&platform, &w, ranks, s, seed);
        let b = run(&platform, &w, ranks, s, seed);
        prop_assert_eq!(a.wall_seconds, b.wall_seconds);
        prop_assert_eq!(a.wall_with_drain, b.wall_with_drain);
        prop_assert_eq!(a.bytes_written, b.bytes_written);
        prop_assert_eq!(a.write_samples, b.write_samples);
        prop_assert_eq!(a.skipped_node_dumps, b.skipped_node_dumps);
    }

    /// Block mode never skips; written bytes match what was not skipped.
    #[test]
    fn skip_accounting(w in workload_strategy(), seed in any::<u64>()) {
        let platform = Platform::kraken().without_jitter();
        let ranks = platform.cores_per_node * 16;
        let block = run(
            &platform,
            &w,
            ranks,
            IoStrategy::Damaris(DamarisOptions {
                buffer_dumps: 1,
                skip_when_full: false,
                ..Default::default()
            }),
            seed,
        );
        prop_assert_eq!(block.skipped_node_dumps, 0);
        let drop = run(
            &platform,
            &w,
            ranks,
            IoStrategy::Damaris(DamarisOptions {
                buffer_dumps: 1,
                skip_when_full: true,
                ..Default::default()
            }),
            seed,
        );
        // Whatever was skipped was not written.
        prop_assert!(drop.bytes_written <= block.bytes_written);
        // And the non-blocking run never finishes later than the blocking
        // one (sim-side).
        prop_assert!(drop.wall_seconds <= block.wall_seconds + 1e-9);
    }
}
