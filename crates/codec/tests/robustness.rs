//! Codec robustness: every `Pipeline::from_spec` combination must round-trip
//! adversarial inputs — empty, 1-byte, lengths that are not a multiple of the
//! element size, and incompressible random bytes. A storage pipeline that
//! silently corrupts an odd-sized trailing block loses simulation output, so
//! these are exercised both exhaustively (all stages, all ordered pairs) and
//! property-style over random stage chains.

use codec::pipeline::EncodeScratch;
use codec::{Codec, Pipeline};
use proptest::prelude::*;

/// Every stage name `Pipeline::from_spec` accepts, all widths included.
const STAGES: &[&str] = &[
    "rle",
    "lzss",
    "shuffle1",
    "shuffle2",
    "shuffle3",
    "shuffle4",
    "shuffle8",
    "shuffle16",
    "xor-delta",
    "xor-delta1",
    "xor-delta2",
    "xor-delta3",
    "xor-delta4",
    "xor-delta8",
    "xor-delta16",
];

fn xorshift_bytes(mut seed: u64, n: usize) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as u8
        })
        .collect()
}

/// The adversarial input set from the issue: empty, a single byte, a length
/// that is not a multiple of any element width, and incompressible noise.
fn adversarial_inputs() -> Vec<Vec<u8>> {
    vec![
        Vec::new(),
        vec![0x5a],
        xorshift_bytes(0xfeed, 13),
        xorshift_bytes(0xbeef, 4096),
        vec![0u8; 777],
    ]
}

fn assert_roundtrip(p: &Pipeline, data: &[u8]) {
    let enc = p.encode(data);
    assert_eq!(
        p.decode(&enc).as_deref(),
        Ok(data),
        "spec '{}' on {} bytes",
        p.spec(),
        data.len()
    );
    // The scratch-reuse path must produce byte-identical output.
    let mut scratch = EncodeScratch::new();
    assert_eq!(
        p.encode_with(data, &mut scratch),
        &enc[..],
        "spec '{}'",
        p.spec()
    );
}

#[test]
fn every_single_stage_roundtrips_adversarial_inputs() {
    for stage in STAGES {
        let p = Pipeline::from_spec(stage).unwrap();
        for data in adversarial_inputs() {
            assert_roundtrip(&p, &data);
        }
    }
}

#[test]
fn every_ordered_stage_pair_roundtrips_adversarial_inputs() {
    for a in STAGES {
        for b in STAGES {
            let p = Pipeline::from_spec(&format!("{a},{b}")).unwrap();
            for data in adversarial_inputs() {
                assert_roundtrip(&p, &data);
            }
        }
    }
}

#[test]
fn malformed_specs_fail_with_clear_errors() {
    for (spec, needle) in [
        ("", "empty pipeline spec"),
        (" , ,", "empty pipeline spec"),
        ("zstd", "unknown codec"),
        ("rle,gzip", "unknown codec"),
        ("shuffle0", "out of range"),
        ("shuffle17", "out of range"),
        ("xor-delta99", "out of range"),
        ("xor-deltax", "bad width"),
        ("shuffle-4", "bad width"),
    ] {
        let err = Pipeline::from_spec(spec).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "spec '{spec}': expected '{needle}' in '{err}'"
        );
    }
}

fn spec_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..STAGES.len(), 1..5)
        .prop_map(|idx| idx.iter().map(|&i| STAGES[i]).collect::<Vec<_>>().join(","))
}

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(Vec::new()),
        proptest::collection::vec(any::<u8>(), 1..2),
        proptest::collection::vec(any::<u8>(), 3..18),
        proptest::collection::vec(any::<u8>(), 100..1500),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_stage_chains_roundtrip(spec in spec_strategy(), data in input_strategy()) {
        let p = Pipeline::from_spec(&spec).unwrap();
        let enc = p.encode(&data);
        prop_assert_eq!(p.decode(&enc).unwrap(), data.clone());
        let mut scratch = EncodeScratch::new();
        prop_assert_eq!(p.encode_with(&data, &mut scratch), &enc[..]);
    }
}
