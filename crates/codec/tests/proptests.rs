//! Property tests: every codec and pipeline round-trips arbitrary bytes.

use codec::{Codec, Lzss, Pipeline, Rle, Shuffle, XorDelta};
use proptest::prelude::*;

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..4096)
}

/// Byte streams with realistic structure: runs, ramps, noise islands.
fn structured_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), 1usize..200).prop_map(|(b, n)| vec![b; n]),
            (any::<u8>(), 1usize..100)
                .prop_map(|(b, n)| (0..n).map(|i| b.wrapping_add(i as u8)).collect()),
            proptest::collection::vec(any::<u8>(), 1..50),
        ],
        0..12,
    )
    .prop_map(|chunks| chunks.concat())
}

proptest! {
    #[test]
    fn rle_roundtrip(data in arbitrary_bytes()) {
        let c = Rle;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_structured(data in structured_bytes()) {
        let c = Rle;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in arbitrary_bytes()) {
        let c = Lzss;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_structured(data in structured_bytes()) {
        let c = Lzss;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn xor_delta_roundtrip(data in arbitrary_bytes(), width in 1usize..=16) {
        let c = XorDelta::new(width);
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn shuffle_roundtrip(data in arbitrary_bytes(), width in 1usize..=16) {
        let c = Shuffle::new(width);
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn default_pipelines_roundtrip(data in structured_bytes()) {
        for p in [Pipeline::default_f64(), Pipeline::default_f32()] {
            prop_assert_eq!(p.decode(&p.encode(&data)).unwrap(), data.clone());
        }
    }

    /// Decoders must reject or survive arbitrary garbage without panicking.
    #[test]
    fn decoders_never_panic_on_garbage(data in arbitrary_bytes()) {
        let _ = Rle.decode(&data);
        let _ = Lzss.decode(&data);
        let _ = XorDelta::new(8).decode(&data);
        let _ = Shuffle::new(8).decode(&data);
        let _ = Pipeline::default_f64().decode(&data);
    }
}
