//! Property tests: every codec and pipeline round-trips arbitrary bytes.

use codec::{Codec, EncodeScratch, Lzss, Pipeline, Rle, Shuffle, XorDelta};
use proptest::prelude::*;

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..4096)
}

/// Byte streams with realistic structure: runs, ramps, noise islands.
fn structured_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), 1usize..200).prop_map(|(b, n)| vec![b; n]),
            (any::<u8>(), 1usize..100)
                .prop_map(|(b, n)| (0..n).map(|i| b.wrapping_add(i as u8)).collect()),
            proptest::collection::vec(any::<u8>(), 1..50),
        ],
        0..12,
    )
    .prop_map(|chunks| chunks.concat())
}

/// Any stage token [`Pipeline::from_spec`] accepts: the fixed coders,
/// the `xor-delta` shorthand, and every legal width of the parametric
/// transforms.
fn arbitrary_stage() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("rle".to_string()),
        Just("lzss".to_string()),
        Just("xor-delta".to_string()),
        (1usize..=16).prop_map(|w| format!("xor-delta{w}")),
        (1usize..=16).prop_map(|w| format!("shuffle{w}")),
    ]
}

/// Arbitrary chains of arbitrary stages — the whole spec space the XML
/// `codec="…"` attribute can name.
fn arbitrary_spec() -> impl Strategy<Value = String> {
    proptest::collection::vec(arbitrary_stage(), 1..=4).prop_map(|stages| stages.join(","))
}

proptest! {
    /// Every pipeline `from_spec` can build round-trips adversarial
    /// input, and the allocation-free `encode_with` path (what the
    /// storage pipeline runs on the dedicated core) produces the same
    /// bytes as the plain `encode`.
    #[test]
    fn any_spec_combination_roundtrips(spec in arbitrary_spec(), data in arbitrary_bytes()) {
        let p = Pipeline::from_spec(&spec).unwrap();
        let packed = p.encode(&data);
        prop_assert_eq!(p.decode(&packed).unwrap(), data.clone(), "spec {}", p.spec());
        let mut scratch = EncodeScratch::new();
        prop_assert_eq!(p.encode_with(&data, &mut scratch), packed.as_slice(), "spec {}", p.spec());
    }

    #[test]
    fn any_spec_combination_roundtrips_structured(spec in arbitrary_spec(), data in structured_bytes()) {
        let p = Pipeline::from_spec(&spec).unwrap();
        prop_assert_eq!(p.decode(&p.encode(&data)).unwrap(), data, "spec {}", p.spec());
    }

    #[test]
    fn rle_roundtrip(data in arbitrary_bytes()) {
        let c = Rle;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_structured(data in structured_bytes()) {
        let c = Rle;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in arbitrary_bytes()) {
        let c = Lzss;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_structured(data in structured_bytes()) {
        let c = Lzss;
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn xor_delta_roundtrip(data in arbitrary_bytes(), width in 1usize..=16) {
        let c = XorDelta::new(width);
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn shuffle_roundtrip(data in arbitrary_bytes(), width in 1usize..=16) {
        let c = Shuffle::new(width);
        prop_assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn default_pipelines_roundtrip(data in structured_bytes()) {
        for p in [Pipeline::default_f64(), Pipeline::default_f32()] {
            prop_assert_eq!(p.decode(&p.encode(&data)).unwrap(), data.clone());
        }
    }

    /// Decoders must reject or survive arbitrary garbage without panicking.
    #[test]
    fn decoders_never_panic_on_garbage(data in arbitrary_bytes()) {
        let _ = Rle.decode(&data);
        let _ = Lzss.decode(&data);
        let _ = XorDelta::new(8).decode(&data);
        let _ = Shuffle::new(8).decode(&data);
        let _ = Pipeline::default_f64().decode(&data);
    }
}
