//! Byte-shuffle transform (HDF5 shuffle filter).
//!
//! For `n` elements of `width` bytes, output all first bytes, then all
//! second bytes, … Grouping the (nearly constant) exponent bytes of a float
//! field produces long runs for the RLE/LZSS stage. Size-preserving;
//! trailing bytes that do not fill an element are appended verbatim.

use crate::{Codec, CodecError};

/// Byte-transpose elements of a fixed width.
#[derive(Debug, Clone, Copy)]
pub struct Shuffle {
    /// Element width in bytes.
    pub width: usize,
}

impl Shuffle {
    /// Create a shuffle for the given element width (1–16 bytes).
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=16).contains(&width),
            "element width {width} out of range 1..=16"
        );
        Shuffle { width }
    }
}

impl Codec for Shuffle {
    fn name(&self) -> String {
        format!("shuffle{}", self.width)
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len());
        self.encode_into(input, &mut out);
        out
    }

    fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        let w = self.width;
        let n = input.len() / w;
        let full = n * w;
        out.clear();
        out.reserve(input.len());
        for k in 0..w {
            for i in 0..n {
                out.push(input[i * w + k]);
            }
        }
        out.extend_from_slice(&input[full..]);
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let w = self.width;
        let n = input.len() / w;
        let full = n * w;
        let mut out = vec![0u8; input.len()];
        for k in 0..w {
            for i in 0..n {
                out[i * w + k] = input[k * n + i];
            }
        }
        out[full..].copy_from_slice(&input[full..]);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(width: usize, data: &[u8]) {
        let c = Shuffle::new(width);
        let enc = c.encode(data);
        assert_eq!(enc.len(), data.len());
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_assorted() {
        let data: Vec<u8> = (0..100u8).collect();
        for w in [1, 2, 4, 8, 16] {
            roundtrip(w, &data);
        }
        roundtrip(8, &[]);
        roundtrip(8, &[1, 2, 3]); // shorter than one element
    }

    #[test]
    fn transpose_layout_exact() {
        // Two 4-byte elements: [a0 a1 a2 a3][b0 b1 b2 b3]
        let data = [0xa0, 0xa1, 0xa2, 0xa3, 0xb0, 0xb1, 0xb2, 0xb3];
        let enc = Shuffle::new(4).encode(&data);
        assert_eq!(enc, [0xa0, 0xb0, 0xa1, 0xb1, 0xa2, 0xb2, 0xa3, 0xb3]);
    }

    #[test]
    fn exponent_bytes_group_into_runs() {
        // f64 values in a narrow range share their top bytes.
        let field: Vec<f64> = (0..512).map(|i| 1000.0 + i as f64 * 0.25).collect();
        let bytes: Vec<u8> = field.iter().flat_map(|f| f.to_le_bytes()).collect();
        let shuffled = Shuffle::new(8).encode(&bytes);
        // The last `n` bytes are the top bytes of every element — all equal.
        let n = field.len();
        let top = &shuffled[7 * n..8 * n];
        assert!(
            top.windows(2).all(|w| w[0] == w[1]),
            "top bytes should be constant"
        );
    }

    #[test]
    fn remainder_preserved() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]; // 11 bytes, width 4
        let enc = Shuffle::new(4).encode(&data);
        assert_eq!(&enc[8..], &data[8..]);
        assert_eq!(Shuffle::new(4).decode(&enc).unwrap(), data);
    }
}
