//! # codec
//!
//! Lossless compression codecs for scientific data, used by the Damaris
//! compression plugin to reproduce the paper's §IV.D result:
//!
//! > "In our previous work we used this spare time to add data compression
//! > in files, and achieved a 600 % compression ratio without any overhead
//! > on the simulation."
//!
//! Smooth atmospheric fields (CM1's wind, temperature and moisture arrays)
//! compress extremely well once the floating-point layout is rearranged:
//!
//! * [`Shuffle`] — byte-transpose of fixed-size elements (HDF5's shuffle
//!   filter): groups exponent bytes together, creating long runs,
//! * [`XorDelta`] — XOR each word with its predecessor (FPC-style
//!   predictive transform): neighbouring grid values share exponent and
//!   high mantissa bits, so deltas are mostly zero bytes,
//! * [`Rle`] — PackBits run-length coding, eats the zero runs,
//! * [`Lzss`] — LZ77-family dictionary coder for the general case,
//! * [`Pipeline`] — composition, e.g. `"xor-delta8,shuffle8,rle"`.
//!
//! All codecs are `bytes → bytes`, deterministic, and round-trip exactly
//! (property-tested, including NaN payloads).
//!
//! ```
//! use codec::{Codec, Pipeline};
//!
//! // Mostly base state with a localized bubble — the CM1 output regime.
//! let field: Vec<f64> = (0..4096)
//!     .map(|i| if (2000..2100).contains(&i) { 301.5 } else { 300.0 })
//!     .collect();
//! let raw: Vec<u8> = field.iter().flat_map(|f| f.to_le_bytes()).collect();
//! let pipe = Pipeline::from_spec("xor-delta8,shuffle8,rle").unwrap();
//! let packed = pipe.encode(&raw);
//! assert!(packed.len() * 6 < raw.len(), "CM1-like data reaches 6:1");
//! assert_eq!(pipe.decode(&packed).unwrap(), raw);
//! ```

pub mod delta;
pub mod lzss;
pub mod pipeline;
pub mod rle;
pub mod shuffle;

pub use delta::XorDelta;
pub use lzss::Lzss;
pub use pipeline::{EncodeScratch, Pipeline, ScratchPool};
pub use rle::Rle;
pub use shuffle::Shuffle;

use std::fmt;

/// Decode failure: the input is not a valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(
    /// Description of the corruption.
    pub String,
);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl CodecError {
    /// Construct from any displayable message.
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

/// A lossless byte-stream transform.
pub trait Codec: Send + Sync {
    /// Stable identifier usable in [`Pipeline::from_spec`] and in file
    /// metadata.
    fn name(&self) -> String;

    /// Compress/transform `input`.
    fn encode(&self, input: &[u8]) -> Vec<u8>;

    /// Compress/transform `input` into `out`, reusing `out`'s capacity.
    ///
    /// `out` is cleared first; its allocation is kept, so a caller that
    /// feeds same-sized blocks through a long-lived buffer (the storage
    /// pipeline's per-variable scratch) stops allocating once capacity has
    /// been established. The default implementation falls back to
    /// [`Codec::encode`] and copies; the built-in codecs override it to
    /// write in place.
    fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let encoded = self.encode(input);
        out.extend_from_slice(&encoded);
    }

    /// Invert [`Codec::encode`]. Errors on corrupt input; never panics.
    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// Compression ratio as the paper quotes it: original ÷ compressed
/// (600 % ⇔ 6.0).
pub fn compression_ratio(original_len: usize, compressed_len: usize) -> f64 {
    if compressed_len == 0 {
        return f64::INFINITY;
    }
    original_len as f64 / compressed_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_paper_convention() {
        assert!((compression_ratio(600, 100) - 6.0).abs() < 1e-12);
        assert_eq!(compression_ratio(10, 0), f64::INFINITY);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CodecError::new("truncated").to_string(),
            "codec error: truncated"
        );
    }
}
