//! LZSS dictionary coder.
//!
//! Classic LZ77 variant: a sliding window of [`WINDOW`] bytes, matches of
//! [`MIN_MATCH`]–[`MAX_MATCH`] bytes encoded as `(offset, length)` pairs,
//! literals passed through, an 8-item flag byte steering the decoder.
//! A hash-chain index keeps encoding roughly linear.
//!
//! Token format (after each flag byte, LSB first, 1 = match):
//! * literal: one byte,
//! * match: two bytes — `offset[11:4] | offset[3:0] << 4 | (len - MIN_MATCH)`
//!   packed little-endian as `o & 0xff`, `(o >> 8) << 4 | (len - 3)`.

use crate::{Codec, CodecError};

/// Sliding-window size (12-bit offsets).
pub const WINDOW: usize = 4096;
/// Shortest encodable match.
pub const MIN_MATCH: usize = 3;
/// Longest encodable match (4-bit length field).
pub const MAX_MATCH: usize = MIN_MATCH + 15;

const HASH_SIZE: usize = 1 << 13;
/// How many chain links to follow before giving up (speed/ratio knob).
const MAX_CHAIN: usize = 64;

/// LZSS codec with a 4 KiB window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzss;

fn hash3(data: &[u8]) -> usize {
    let h = (data[0] as u32)
        .wrapping_mul(2654435761)
        .wrapping_add((data[1] as u32).wrapping_mul(40503))
        .wrapping_add(data[2] as u32);
    (h as usize) & (HASH_SIZE - 1)
}

impl Codec for Lzss {
    fn name(&self) -> String {
        "lzss".to_string()
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.encode_into(input, &mut out);
        out
    }

    fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        let n = input.len();
        out.clear();
        out.reserve(n / 2 + 16);
        // head[h] = most recent position with hash h; prev[i % WINDOW] chains.
        // The tables are thread-local so steady-state encodes do not
        // allocate; they are reset on entry, which keeps the output a pure
        // function of `input` (cross-world byte-identity depends on this).
        thread_local! {
            static TABLES: std::cell::RefCell<(Vec<usize>, Vec<usize>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        TABLES.with(|t| {
            let mut t = t.borrow_mut();
            let (head, prev) = &mut *t;
            head.resize(HASH_SIZE, usize::MAX);
            head.fill(usize::MAX);
            prev.resize(WINDOW, usize::MAX);
            prev.fill(usize::MAX);

            let mut i = 0;
            let mut flag_pos = 0usize;
            let mut flag_bit = 8u8; // forces a new flag byte immediately
            let mut flags = 0u8;

            macro_rules! emit_flag {
                ($is_match:expr) => {
                    if flag_bit == 8 {
                        // Start a new flag byte; tokens follow it immediately.
                        out.push(0);
                        flag_pos = out.len() - 1;
                        flags = 0;
                        flag_bit = 0;
                    }
                    if $is_match {
                        flags |= 1 << flag_bit;
                    }
                    flag_bit += 1;
                    out[flag_pos] = flags;
                };
            }

            while i < n {
                let mut best_len = 0usize;
                let mut best_off = 0usize;
                if i + MIN_MATCH <= n {
                    let h = hash3(&input[i..]);
                    let mut cand = head[h];
                    let mut chain = 0;
                    while cand != usize::MAX && chain < MAX_CHAIN {
                        if i > cand && i - cand <= WINDOW {
                            let max_len = (n - i).min(MAX_MATCH);
                            let mut l = 0;
                            while l < max_len && input[cand + l] == input[i + l] {
                                l += 1;
                            }
                            if l > best_len {
                                best_len = l;
                                best_off = i - cand;
                                if l == MAX_MATCH {
                                    break;
                                }
                            }
                        } else if i <= cand || i - cand > WINDOW {
                            break; // chain left the window
                        }
                        cand = prev[cand % WINDOW];
                        chain += 1;
                    }
                }

                if best_len >= MIN_MATCH {
                    emit_flag!(true);
                    let off = best_off; // 1..=WINDOW
                    debug_assert!((1..=WINDOW).contains(&off));
                    let o = off - 1; // 0..=4095, 12 bits
                    out.push((o & 0xff) as u8);
                    out.push((((o >> 8) as u8) << 4) | ((best_len - MIN_MATCH) as u8));
                    // Index every position inside the match.
                    let end = i + best_len;
                    while i < end {
                        if i + MIN_MATCH <= n {
                            let h = hash3(&input[i..]);
                            prev[i % WINDOW] = head[h];
                            head[h] = i;
                        }
                        i += 1;
                    }
                } else {
                    emit_flag!(false);
                    out.push(input[i]);
                    if i + MIN_MATCH <= n {
                        let h = hash3(&input[i..]);
                        prev[i % WINDOW] = head[h];
                        head[h] = i;
                    }
                    i += 1;
                }
            }
        });
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut i = 0;
        while i < input.len() {
            let flags = input[i];
            i += 1;
            for bit in 0..8 {
                if i >= input.len() {
                    break;
                }
                if flags & (1 << bit) == 0 {
                    out.push(input[i]);
                    i += 1;
                } else {
                    if i + 1 >= input.len() {
                        return Err(CodecError::new("lzss: truncated match token"));
                    }
                    let lo = input[i] as usize;
                    let hi = input[i + 1] as usize;
                    i += 2;
                    let off = (lo | ((hi >> 4) << 8)) + 1;
                    let len = (hi & 0x0f) + MIN_MATCH;
                    if off > out.len() {
                        return Err(CodecError::new(format!(
                            "lzss: match offset {off} exceeds {} decoded bytes",
                            out.len()
                        )));
                    }
                    let start = out.len() - off;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Lzss;
        let enc = c.encode(data);
        assert_eq!(c.decode(&enc).unwrap(), data, "roundtrip mismatch");
        enc
    }

    #[test]
    fn empty_and_tiny() {
        assert!(roundtrip(&[]).is_empty());
        roundtrip(&[1]);
        roundtrip(&[1, 2]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(20);
        let enc = roundtrip(&data);
        assert!(
            enc.len() * 4 < data.len(),
            "{} vs {}",
            enc.len(),
            data.len()
        );
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." forces matches that overlap their own output.
        let data = vec![b'a'; 1000];
        let enc = roundtrip(&data);
        assert!(enc.len() < 200);
    }

    #[test]
    fn incompressible_random_survives() {
        // Deterministic xorshift noise.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let enc = roundtrip(&data);
        // Worst case: 1 flag byte per 8 literals → 12.5 % expansion.
        assert!(enc.len() <= data.len() + data.len() / 8 + 2);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..64u8).collect();
        data.extend_from_slice(&phrase);
        data.extend(std::iter::repeat_n(0xee, 2000));
        data.extend_from_slice(&phrase); // still inside the 4096 window
        roundtrip(&data);
    }

    #[test]
    fn matches_beyond_window_not_used() {
        let phrase: Vec<u8> = (0..64u8).collect();
        let mut data = phrase.clone();
        data.extend(std::iter::repeat_n(0xee, WINDOW + 100));
        data.extend_from_slice(&phrase);
        roundtrip(&data); // correctness only; no ratio claim
    }

    #[test]
    fn decode_rejects_bad_offset() {
        // Flag byte 0b1 (match), token pointing 4096 back with nothing decoded.
        let bad = [0b1u8, 0xff, 0xf0];
        assert!(Lzss.decode(&bad).is_err());
    }

    #[test]
    fn decode_rejects_truncated_token() {
        let bad = [0b1u8, 0x05];
        assert!(Lzss.decode(&bad).is_err());
    }
}
