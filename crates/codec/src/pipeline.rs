//! Codec composition and the spec-string registry.
//!
//! Damaris actions reference compression as a plugin parameter, e.g.
//! `<param name="pipeline" value="xor-delta8,shuffle8,rle"/>`. The
//! [`Pipeline`] type resolves such a spec into a chain of codecs; encoding
//! applies them left to right, decoding right to left.

use crate::{Codec, CodecError, Lzss, Rle, Shuffle, XorDelta};

/// An ordered chain of codecs acting as one codec.
pub struct Pipeline {
    stages: Vec<Box<dyn Codec>>,
    spec: String,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec)
            .finish()
    }
}

impl Pipeline {
    /// Resolve a comma-separated spec string. Known stage names:
    ///
    /// * `rle` — PackBits run-length coding,
    /// * `lzss` — LZ77-family dictionary coder,
    /// * `shuffleN` — byte transpose of N-byte elements (N in 1–16),
    /// * `xor-deltaN` — XOR-with-predecessor over N-byte words,
    /// * `xor-delta` — shorthand for `xor-delta8`.
    pub fn from_spec(spec: &str) -> Result<Self, CodecError> {
        let mut stages: Vec<Box<dyn Codec>> = Vec::new();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            stages.push(Self::stage(token)?);
        }
        if stages.is_empty() {
            return Err(CodecError::new(format!("empty pipeline spec '{spec}'")));
        }
        Ok(Pipeline {
            stages,
            spec: spec.to_string(),
        })
    }

    fn stage(token: &str) -> Result<Box<dyn Codec>, CodecError> {
        if token == "rle" {
            return Ok(Box::new(Rle));
        }
        if token == "lzss" {
            return Ok(Box::new(Lzss));
        }
        if token == "xor-delta" {
            return Ok(Box::new(XorDelta::new(8)));
        }
        if let Some(w) = token.strip_prefix("xor-delta") {
            let w: usize = w
                .parse()
                .map_err(|_| CodecError::new(format!("bad width in '{token}'")))?;
            if !(1..=16).contains(&w) {
                return Err(CodecError::new(format!(
                    "width {w} out of range in '{token}'"
                )));
            }
            return Ok(Box::new(XorDelta::new(w)));
        }
        if let Some(w) = token.strip_prefix("shuffle") {
            let w: usize = w
                .parse()
                .map_err(|_| CodecError::new(format!("bad width in '{token}'")))?;
            if !(1..=16).contains(&w) {
                return Err(CodecError::new(format!(
                    "width {w} out of range in '{token}'"
                )));
            }
            return Ok(Box::new(Shuffle::new(w)));
        }
        Err(CodecError::new(format!("unknown codec '{token}'")))
    }

    /// The spec string this pipeline was built from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages (never true after `from_spec`).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The recommended pipeline for smooth `f64` fields — what the Damaris
    /// compression plugin uses by default. Reaches the paper's ~6:1 ratio
    /// on CM1-like data.
    pub fn default_f64() -> Self {
        Pipeline::from_spec("xor-delta8,shuffle8,rle,lzss").expect("builtin spec is valid")
    }

    /// The recommended pipeline for smooth `f32` fields.
    pub fn default_f32() -> Self {
        Pipeline::from_spec("xor-delta4,shuffle4,rle,lzss").expect("builtin spec is valid")
    }

    /// Encode through caller-owned scratch buffers, returning a slice into
    /// `scratch` that is valid until the next call.
    ///
    /// Stages ping-pong between the two scratch buffers via
    /// [`Codec::encode_into`], so after a warm-up encode has sized the
    /// buffers, steady-state encodes of same-sized blocks perform **no heap
    /// allocation** — the property the Damaris storage pipeline relies on to
    /// keep the dedicated core's compression stage allocation-free
    /// (observable through [`EncodeScratch::grows`]).
    pub fn encode_with<'a>(&self, input: &[u8], scratch: &'a mut EncodeScratch) -> &'a [u8] {
        let cap_before = scratch.a.capacity() + scratch.b.capacity();
        self.stages[0].encode_into(input, &mut scratch.a);
        let mut in_a = true;
        for stage in &self.stages[1..] {
            if in_a {
                stage.encode_into(&scratch.a, &mut scratch.b);
            } else {
                stage.encode_into(&scratch.b, &mut scratch.a);
            }
            in_a = !in_a;
        }
        scratch.encodes += 1;
        if scratch.a.capacity() + scratch.b.capacity() > cap_before {
            scratch.grows += 1;
        }
        if in_a {
            &scratch.a
        } else {
            &scratch.b
        }
    }
}

/// Reusable ping-pong buffers for [`Pipeline::encode_with`].
///
/// Keep one per (variable, pipeline) and the encode path stops allocating
/// once the buffers have grown to the working-set size; the counters let
/// callers assert that reuse (`grows` stays flat while `encodes` climbs).
#[derive(Debug, Default)]
pub struct EncodeScratch {
    a: Vec<u8>,
    b: Vec<u8>,
    grows: u64,
    encodes: u64,
}

impl EncodeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total encodes performed through this scratch.
    pub fn encodes(&self) -> u64 {
        self.encodes
    }

    /// Encodes that had to grow a scratch buffer. Stops increasing once the
    /// buffers reach the steady-state working size.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Bytes currently held across both buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.a.capacity() + self.b.capacity()
    }
}

/// A checkout pool of [`EncodeScratch`] instances for worker threads.
///
/// A parallel encode stage (e.g. the Damaris storage engine's worker pool)
/// takes one scratch per worker at spawn and returns it at shutdown; the
/// buffers keep their grown capacity across checkouts, so a pool that is
/// drained and refilled between runs stays allocation-free in steady state.
/// Aggregate counters over the *parked* scratches let tests assert reuse
/// without reaching into individual workers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    parked: Vec<EncodeScratch>,
    issued: usize,
}

impl ScratchPool {
    /// Pool pre-seeded with `n` empty scratches.
    pub fn with_capacity(n: usize) -> Self {
        ScratchPool {
            parked: (0..n).map(|_| EncodeScratch::new()).collect(),
            issued: 0,
        }
    }

    /// Check out a scratch, reusing a parked one (warmest first) when
    /// available and growing the pool otherwise.
    pub fn take(&mut self) -> EncodeScratch {
        self.issued += 1;
        self.parked.pop().unwrap_or_default()
    }

    /// Return a scratch to the pool, keeping its grown buffers warm.
    pub fn put(&mut self, scratch: EncodeScratch) {
        self.issued = self.issued.saturating_sub(1);
        self.parked.push(scratch);
    }

    /// Scratches currently checked out.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Scratches currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Total encodes across parked scratches.
    pub fn encodes(&self) -> u64 {
        self.parked.iter().map(|s| s.encodes()).sum()
    }

    /// Total buffer growths across parked scratches.
    pub fn grows(&self) -> u64 {
        self.parked.iter().map(|s| s.grows()).sum()
    }

    /// Bytes held across all parked scratches.
    pub fn capacity_bytes(&self) -> usize {
        self.parked.iter().map(|s| s.capacity_bytes()).sum()
    }
}

impl Codec for Pipeline {
    fn name(&self) -> String {
        self.spec.clone()
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut data = input.to_vec();
        for stage in &self.stages {
            data = stage.encode(&data);
        }
        data
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut data = input.to_vec();
        for stage in self.stages.iter().rev() {
            data = stage.decode(&data)?;
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression_ratio;

    /// A CM1-like field: a uniform base state (most of the domain early in
    /// a simulation) with a smooth localized perturbation (the warm bubble).
    /// This is the data regime where the paper's 600 % ratio lives; a fully
    /// noisy mantissa (e.g. `sin` sampled everywhere) caps losslessly
    /// around 1.5:1 no matter the compressor.
    fn cm1_like_field(n: usize) -> Vec<u8> {
        let center = n as f64 / 2.0;
        let radius = n as f64 / 20.0;
        (0..n)
            .map(|i| {
                let d = (i as f64 - center).abs() / radius;
                if d < 1.0 {
                    300.0 + 2.0 * (1.0 - d * d) // smooth bubble
                } else {
                    300.0 // base state, bit-identical everywhere
                }
            })
            .flat_map(|f: f64| f.to_le_bytes())
            .collect()
    }

    fn smooth_field(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.002;
                300.0 + 5.0 * x.sin() + 0.5 * (3.0 * x).cos()
            })
            .flat_map(|f: f64| f.to_le_bytes())
            .collect()
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(Pipeline::from_spec("rle").unwrap().len(), 1);
        assert_eq!(
            Pipeline::from_spec("xor-delta8, shuffle8 ,rle")
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            Pipeline::from_spec("xor-delta").unwrap().name(),
            "xor-delta"
        );
        assert!(Pipeline::from_spec("zstd").is_err());
        assert!(Pipeline::from_spec("").is_err());
        assert!(Pipeline::from_spec("shuffle0").is_err());
        assert!(Pipeline::from_spec("shuffle99").is_err());
        assert!(Pipeline::from_spec("xor-deltax").is_err());
    }

    #[test]
    fn pipeline_roundtrip() {
        let data = smooth_field(2048);
        for spec in [
            "rle",
            "lzss",
            "xor-delta8,rle",
            "xor-delta8,shuffle8,rle,lzss",
        ] {
            let p = Pipeline::from_spec(spec).unwrap();
            let enc = p.encode(&data);
            assert_eq!(p.decode(&enc).unwrap(), data, "spec {spec}");
        }
    }

    #[test]
    fn default_f64_hits_paper_ratio_on_cm1_like_data() {
        // The paper reports a 600 % (6:1) ratio on CM1 output: fields that
        // are mostly base state with localized smooth structure.
        let data = cm1_like_field(32 * 1024);
        let p = Pipeline::default_f64();
        let enc = p.encode(&data);
        let ratio = compression_ratio(data.len(), enc.len());
        assert!(
            ratio >= 6.0,
            "expected ≥6:1 on CM1-like f64 data, got {ratio:.2}:1"
        );
        assert_eq!(p.decode(&enc).unwrap(), data);
    }

    #[test]
    fn full_precision_smooth_data_still_shrinks() {
        // A field whose mantissa is busy everywhere compresses modestly but
        // must never expand by more than the LZSS flag overhead.
        let data = smooth_field(32 * 1024);
        let p = Pipeline::default_f64();
        let enc = p.encode(&data);
        assert!(enc.len() < data.len(), "{} vs {}", enc.len(), data.len());
        assert_eq!(p.decode(&enc).unwrap(), data);
    }

    #[test]
    fn constant_field_compresses_extremely() {
        let data: Vec<u8> = std::iter::repeat_n(1013.25f64.to_le_bytes(), 8192)
            .flatten()
            .collect();
        let p = Pipeline::default_f64();
        let enc = p.encode(&data);
        assert!(compression_ratio(data.len(), enc.len()) > 100.0);
    }

    #[test]
    fn encode_with_matches_encode_and_stops_growing() {
        let data = cm1_like_field(8 * 1024);
        let mut scratch = EncodeScratch::new();
        for spec in ["rle", "lzss", "xor-delta8,shuffle8,rle,lzss"] {
            let p = Pipeline::from_spec(spec).unwrap();
            assert_eq!(
                p.encode_with(&data, &mut scratch),
                p.encode(&data),
                "spec {spec}"
            );
        }
        // Warmed up: further encodes of same-sized data never grow scratch.
        let p = Pipeline::default_f64();
        let _ = p.encode_with(&data, &mut scratch);
        let grows = scratch.grows();
        let cap = scratch.capacity_bytes();
        for _ in 0..16 {
            let enc = p.encode_with(&data, &mut scratch);
            assert_eq!(p.decode(enc).unwrap(), data);
        }
        assert_eq!(scratch.grows(), grows, "steady state must not reallocate");
        assert_eq!(scratch.capacity_bytes(), cap);
        assert!(scratch.encodes() >= 20);
    }

    #[test]
    fn scratch_pool_keeps_buffers_warm_across_checkouts() {
        let data = cm1_like_field(4 * 1024);
        let p = Pipeline::default_f64();
        let mut pool = ScratchPool::with_capacity(2);
        assert_eq!(pool.parked(), 2);

        // First generation of checkouts warms the buffers up.
        let mut s0 = pool.take();
        let mut s1 = pool.take();
        assert_eq!(pool.issued(), 2);
        let _ = p.encode_with(&data, &mut s0);
        let _ = p.encode_with(&data, &mut s1);
        pool.put(s0);
        pool.put(s1);
        let warm_cap = pool.capacity_bytes();
        let warm_grows = pool.grows();
        assert!(warm_cap > 0);

        // Second generation reuses the same grown buffers: capacity is
        // unchanged and no further grows happen on same-sized input.
        let mut s0 = pool.take();
        let mut s1 = pool.take();
        let _ = p.encode_with(&data, &mut s0);
        let _ = p.encode_with(&data, &mut s1);
        pool.put(s0);
        pool.put(s1);
        assert_eq!(pool.capacity_bytes(), warm_cap);
        assert_eq!(pool.grows(), warm_grows);
        assert_eq!(pool.encodes(), 4);
        assert_eq!(pool.issued(), 0);
    }

    #[test]
    fn stage_order_matters_and_inverts_correctly() {
        let data = smooth_field(512);
        let a = Pipeline::from_spec("shuffle8,rle").unwrap();
        let b = Pipeline::from_spec("rle,shuffle8").unwrap();
        // Different orders produce different encodings…
        assert_ne!(a.encode(&data), b.encode(&data));
        // …but both invert.
        assert_eq!(a.decode(&a.encode(&data)).unwrap(), data);
        assert_eq!(b.decode(&b.encode(&data)).unwrap(), data);
    }
}
