//! PackBits run-length coding.
//!
//! Control byte `c`:
//! * `0 ..= 127` — copy the next `c + 1` bytes literally,
//! * `129 ..= 255` — repeat the next byte `257 - c` times (runs of 2–128),
//! * `128` — reserved, never produced; rejected on decode.
//!
//! Worst case expansion is 1 byte per 128 literals (< 0.8 %).

use crate::{Codec, CodecError};

/// PackBits run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn name(&self) -> String {
        "rle".to_string()
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 16);
        self.encode_into(input, &mut out);
        out
    }

    fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let n = input.len();
        let mut i = 0;
        while i < n {
            // Measure the run starting at i.
            let b = input[i];
            let mut run = 1;
            while i + run < n && input[i + run] == b && run < 128 {
                run += 1;
            }
            if run >= 2 {
                out.push((257 - run) as u8);
                out.push(b);
                i += run;
            } else {
                // Collect literals until the next run of ≥ 3 (a 2-run is
                // cheaper to emit as literals than to break a literal block).
                let start = i;
                i += 1;
                while i < n && (i - start) < 128 {
                    let b = input[i];
                    let mut run = 1;
                    while i + run < n && input[i + run] == b && run < 3 {
                        run += 1;
                    }
                    if run >= 3 {
                        break;
                    }
                    i += 1;
                }
                let len = i - start;
                out.push((len - 1) as u8);
                out.extend_from_slice(&input[start..i]);
            }
        }
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut i = 0;
        while i < input.len() {
            let c = input[i];
            i += 1;
            match c {
                0..=127 => {
                    let len = c as usize + 1;
                    if i + len > input.len() {
                        return Err(CodecError::new("rle: truncated literal block"));
                    }
                    out.extend_from_slice(&input[i..i + len]);
                    i += len;
                }
                128 => return Err(CodecError::new("rle: reserved control byte 128")),
                129..=255 => {
                    let len = 257 - c as usize;
                    let b = *input
                        .get(i)
                        .ok_or_else(|| CodecError::new("rle: truncated run"))?;
                    i += 1;
                    out.resize(out.len() + len, b);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Rle;
        let enc = c.encode(data);
        let dec = c.decode(&enc).unwrap();
        assert_eq!(dec, data, "roundtrip mismatch");
        enc
    }

    #[test]
    fn empty_input() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn all_zeros_compresses_hard() {
        let enc = roundtrip(&[0u8; 10_000]);
        assert!(enc.len() <= 2 * (10_000 / 128 + 1), "got {}", enc.len());
    }

    #[test]
    fn incompressible_expands_bounded() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = roundtrip(&data);
        assert!(enc.len() <= data.len() + data.len() / 128 + 2);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = vec![1, 2, 3];
        data.extend_from_slice(&[7; 50]);
        data.extend_from_slice(&[9, 8]);
        data.extend_from_slice(&[0; 300]);
        roundtrip(&data);
    }

    #[test]
    fn run_of_exactly_two() {
        roundtrip(&[5, 5, 1, 2, 3]);
    }

    #[test]
    fn run_longer_than_128_splits() {
        roundtrip(&[42u8; 129]);
        roundtrip(&[42u8; 257]);
    }

    #[test]
    fn decode_rejects_reserved_control() {
        assert!(Rle.decode(&[128]).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        assert!(Rle.decode(&[5, 1, 2]).is_err()); // literal block cut short
        assert!(Rle.decode(&[200]).is_err()); // run byte missing
    }
}
