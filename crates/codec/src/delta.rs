//! XOR-delta predictive transform for fixed-width words.
//!
//! Neighbouring values of a smooth field share sign, exponent and leading
//! mantissa bits, so `x[i] ^ x[i-1]` is mostly zero bytes — which the RLE
//! and LZSS stages then collapse. This is the core idea of float compressors
//! such as FPC, restricted to the previous-value predictor.
//!
//! Size-preserving; trailing bytes that do not fill a word are copied.

use crate::{Codec, CodecError};

/// XOR each `width`-byte word with its predecessor.
#[derive(Debug, Clone, Copy)]
pub struct XorDelta {
    /// Word width in bytes (e.g. 8 for `f64`, 4 for `f32`).
    pub width: usize,
}

impl XorDelta {
    /// Create a transform for the given word width (1–16 bytes).
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=16).contains(&width),
            "word width {width} out of range 1..=16"
        );
        XorDelta { width }
    }
}

impl Codec for XorDelta {
    fn name(&self) -> String {
        format!("xor-delta{}", self.width)
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(input, &mut out);
        out
    }

    fn encode_into(&self, input: &[u8], out: &mut Vec<u8>) {
        let w = self.width;
        out.clear();
        out.extend_from_slice(input);
        // Only full words participate; trailing remainder stays verbatim.
        let full = input.len() - input.len() % w;
        for i in w..full {
            out[i] = input[i] ^ input[i - w];
        }
    }

    fn decode(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let w = self.width;
        let mut out = input.to_vec();
        let full = input.len() - input.len() % w;
        for i in w..full {
            out[i] ^= out[i - w]; // forward pass accumulates
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(width: usize, data: &[u8]) {
        let c = XorDelta::new(width);
        let enc = c.encode(data);
        assert_eq!(enc.len(), data.len(), "size-preserving");
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_widths_and_lengths() {
        let data: Vec<u8> = (0..123u8).collect();
        for w in [1, 2, 4, 8, 16] {
            roundtrip(w, &data);
        }
        roundtrip(8, &[]);
        roundtrip(8, &[1, 2, 3]); // shorter than one word
        roundtrip(8, &[9; 8]); // exactly one word
    }

    #[test]
    fn smooth_f64_becomes_sparse() {
        let field: Vec<f64> = (0..1024).map(|i| 300.0 + (i as f64) * 1e-4).collect();
        let bytes: Vec<u8> = field.iter().flat_map(|f| f.to_le_bytes()).collect();
        let enc = XorDelta::new(8).encode(&bytes);
        let zeros = enc.iter().filter(|&&b| b == 0).count();
        let raw_zeros = bytes.iter().filter(|&&b| b == 0).count();
        // Neighbouring values share sign/exponent/top-mantissa bits, so the
        // delta stream has far more zero bytes than the raw stream (the low
        // mantissa bytes stay noisy — that is expected for full precision).
        assert!(
            zeros > bytes.len() / 4 && zeros > raw_zeros,
            "expected sparser delta stream: {zeros}/{} zeros vs {raw_zeros} raw",
            bytes.len()
        );
    }

    #[test]
    fn constant_stream_is_all_zeros_after_first_word() {
        let bytes: Vec<u8> = std::iter::repeat_n(7.5f64.to_le_bytes(), 100)
            .flatten()
            .collect();
        let enc = XorDelta::new(8).encode(&bytes);
        assert!(enc[8..].iter().all(|&b| b == 0));
        assert_eq!(&enc[..8], &7.5f64.to_le_bytes());
    }

    #[test]
    fn trailing_remainder_untouched() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10]; // 10 bytes, width 4
        let enc = XorDelta::new(4).encode(&data);
        assert_eq!(&enc[8..], &data[8..], "remainder copied verbatim");
        assert_eq!(XorDelta::new(4).decode(&enc).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = XorDelta::new(0);
    }
}
