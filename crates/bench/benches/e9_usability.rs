//! E9 (§V.C.2): instrumentation burden of the two in-situ couplings.
//!
//! Paper anchor: "all these examples require more than a hundred lines of
//! code with the VisIt API. Damaris only requires one line per data object
//! […] ending up with less than 10 lines of code changes."
//!
//! Counts the `BEGIN/END-INSTRUMENTATION` regions of the real example
//! sources in `examples/`.

use damaris_bench::{count_instrumentation_lines, examples_dir, print_table};

fn main() {
    let path = examples_dir().join("nek_insitu.rs");
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"));
    let visit = count_instrumentation_lines(&source, "visit");
    let damaris = count_instrumentation_lines(&source, "damaris");
    print_table(
        "E9 — instrumentation lines to couple Nek5000-proxy with in-situ visualization",
        &["coupling", "paper", "measured (examples/nek_insitu.rs)"],
        &[
            vec![
                "VisIt-libsim style".into(),
                "> 100 lines".into(),
                format!("{visit} lines"),
            ],
            vec![
                "Damaris".into(),
                "< 10 lines (+ XML)".into(),
                format!("{damaris} lines (+ external XML description)"),
            ],
        ],
    );
    assert!(
        visit > damaris * 10,
        "the gap must span an order of magnitude"
    );
}
