//! E4 (§IV.D): how idle are the dedicated cores?
//!
//! Paper anchor: 92–99 % idle on Kraken with CM1 — the spare time later
//! used for compression and in-situ analysis.

use cluster_sim::experiments::e4_idle_time;
use damaris_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = e4_idle_time(3, 42)
        .into_iter()
        .map(|(ranks, idle)| {
            vec![
                ranks.to_string(),
                "92–99 %".into(),
                format!("{:.1} %", idle * 100.0),
            ]
        })
        .collect();
    print_table(
        "E4 — dedicated-core idle fraction (CM1 on Kraken)",
        &["cores", "paper", "measured"],
        &rows,
    );
}
