//! Write-path shoot-out: first-fit mutex allocator vs the size-class /
//! slab-cache fast path, measured end to end through `DamarisClient::write`.
//!
//! The §IV.B claim is that a simulation-side write costs one memcpy into
//! shared memory, *independent of scale*. After the sharded transport
//! flattened the event-post cost, the remaining scaling hazard was the
//! allocator: a single-mutex first-fit free list serializes every client
//! of a node per block allocation. This bench measures, at 1/4/16/64
//! clients, the per-call cost of `write()` (name resolution, admission,
//! allocation, memcpy, freeze, event post, stats) under both allocators —
//! same transport (sharded), same variable (1 KiB f64 row), same
//! iteration protocol.
//!
//! Per-call latency is sampled with a monotonic clock around each call
//! and summarized by the median (robust against scheduler preemption,
//! which on shared CI machines dwarfs the tens-of-nanoseconds signal).
//! Results go to stdout as a table and to `BENCH_write_path.json` at the
//! workspace root, where CI's regression guard tracks them across PRs.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use damaris_bench::print_table;
use damaris_core::prelude::*;
use damaris_xml::schema::AllocatorKind;

/// Iterations per client before measurement starts (seeds the class
/// queues, the slab caches, the transport rings and the branch
/// predictors).
const WARMUP_ITERS: u64 = 20;
/// Measured iterations per client.
const MEASURED_ITERS: u64 = 100;
/// Blocks written (and individually timed) per iteration. Real
/// simulations publish many variables per step; a burst also amortizes
/// the one dedicated-core wakeup a step's first post may pay (on a
/// single-core host that wakeup preempts the writer mid-call, a ~10 µs
/// artifact the median then ignores).
const WRITES_PER_ITER: usize = 8;
/// f64 elements per block (1 KiB — small enough that the fixed write-path
/// overhead, not the memcpy, dominates).
const ELEMS: usize = 128;

struct Sample {
    allocator: AllocatorKind,
    clients: usize,
    /// Median ns per `write()` call across all clients' samples.
    write_ns_p50: f64,
    /// 90th percentile (tail; includes scheduler noise).
    write_ns_p90: f64,
    /// Steady-state allocations served without the free-list mutex.
    class_hit_fraction: f64,
}

fn config(clients: usize) -> String {
    // Segment sized so even 64 free-running clients cannot exhaust it
    // (64 clients × 120 iterations × 1 KiB ≈ 7.5 MiB in the worst case);
    // ring capacity covers every event of a client's run so producers
    // never spin on a full shard.
    format!(
        r#"<simulation name="write-path">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="{}"/>
               <queue capacity="{}" kind="sharded"/>
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="{ELEMS}"/>
               <variable name="field" layout="row"/>
             </data>
           </simulation>"#,
        64 << 20,
        clients * (WRITES_PER_ITER + 1) * (WARMUP_ITERS + MEASURED_ITERS + 2) as usize
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The per-client workload, generic over the [`SimHandle`] facade (the
/// measured call is the facade's `write`, so the bench gates the API
/// applications actually use). `pace` blocks until the dedicated core
/// has caught up to within the pipelining window.
fn client_loop<H: SimHandle>(
    h: &mut H,
    data: &[f64],
    from: u64,
    to: u64,
    pace: impl Fn(u64),
    mut sample: Option<&mut Vec<f64>>,
) {
    for it in from..to {
        for _ in 0..WRITES_PER_ITER {
            let t0 = Instant::now();
            h.write("field", it, data).expect("write");
            if let Some(samples) = sample.as_deref_mut() {
                samples.push(t0.elapsed().as_nanos() as f64);
            }
        }
        h.end_iteration(it).expect("end");
        pace(it);
    }
}

fn run_case(allocator: AllocatorKind, clients: usize) -> Sample {
    let node = DamarisNode::builder()
        .config_str(&config(clients))
        .expect("config")
        .clients(clients)
        .allocator(allocator)
        .build()
        .expect("node");
    // Steady-state pacing: a real simulation computes between iterations,
    // during which the dedicated core garbage-collects the previous step
    // and refills the class queues. Emulate the compute phase by bounding
    // each client's lead over the completed-iteration count — a per-client
    // gate a laggard always passes (gating on global occupancy instead
    // deadlocks: the laggards whose progress would free memory would wait
    // on blocks only they can release).
    const WINDOW: u64 = 4;
    // Client threads rendezvous with the main thread between warm-up and
    // measurement so the stats snapshot separates the two phases.
    let warmed = Arc::new(Barrier::new(clients + 1));
    let start = Arc::new(Barrier::new(clients + 1));
    let (mut all, class_hit_fraction) = thread::scope(|scope| {
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                let warmed = warmed.clone();
                let start = start.clone();
                let node = &node;
                scope.spawn(move || {
                    let mut h = Damaris::threads(client);
                    let data = vec![1.0f64; ELEMS];
                    let mut samples = Vec::with_capacity(MEASURED_ITERS as usize * WRITES_PER_ITER);
                    // "Compute phase" pacing: let the dedicated core recycle.
                    let pace = |it: u64| {
                        while node.iterations_completed() + WINDOW <= it {
                            thread::yield_now();
                        }
                    };
                    client_loop(&mut h, &data, 0, WARMUP_ITERS, pace, None);
                    warmed.wait();
                    start.wait();
                    client_loop(
                        &mut h,
                        &data,
                        WARMUP_ITERS,
                        WARMUP_ITERS + MEASURED_ITERS,
                        pace,
                        Some(&mut samples),
                    );
                    h.finalize().expect("finalize");
                    samples
                })
            })
            .collect();
        warmed.wait();
        // Let the dedicated core finish recycling the warm-up iterations,
        // so measured allocations hit the class queues.
        while node.iterations_completed() < WARMUP_ITERS {
            thread::yield_now();
        }
        let before = node.segment_stats();
        start.wait();
        let all: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let after = node.segment_stats();
        let allocs = after.allocations - before.allocations;
        let hits = after.class_hits - before.class_hits;
        let frac = if allocs == 0 {
            0.0
        } else {
            hits as f64 / allocs as f64
        };
        (all, frac)
    });
    node.shutdown().expect("shutdown");
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        allocator,
        clients,
        write_ns_p50: percentile(&all, 0.50),
        write_ns_p90: percentile(&all, 0.90),
        class_hit_fraction,
    }
}

fn main() {
    let mut samples = Vec::new();
    for clients in [1usize, 4, 16, 64] {
        for allocator in [AllocatorKind::FirstFit, AllocatorKind::SizeClass] {
            eprintln!("write_path: {} × {clients} clients…", allocator.name());
            samples.push(run_case(allocator, clients));
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.allocator.name().to_string(),
                s.clients.to_string(),
                format!("{:.0}", s.write_ns_p50),
                format!("{:.0}", s.write_ns_p90),
                format!("{:.2}", s.class_hit_fraction),
            ]
        })
        .collect();
    print_table(
        "M2 — write path: per-call write() latency by allocator",
        &[
            "allocator",
            "clients",
            "write ns p50",
            "write ns p90",
            "class-hit frac",
        ],
        &rows,
    );

    let p50 = |a: AllocatorKind, c: usize| {
        samples
            .iter()
            .find(|s| s.allocator == a && s.clients == c)
            .unwrap()
            .write_ns_p50
    };
    for clients in [16usize, 64] {
        let (ff, sc) = (
            p50(AllocatorKind::FirstFit, clients),
            p50(AllocatorKind::SizeClass, clients),
        );
        println!(
            "at {clients} clients: size-class write {:.1}x faster than first-fit ({sc:.0} vs {ff:.0} ns)",
            ff / sc
        );
    }
    let (sc1, sc64) = (
        p50(AllocatorKind::SizeClass, 1),
        p50(AllocatorKind::SizeClass, 64),
    );
    println!(
        "size-class scaling 1→64 clients: {sc1:.0} ns → {sc64:.0} ns ({:.2}x)",
        sc64 / sc1
    );
    // Machine-independent ratios (within-run comparisons) — these are
    // what CI's regression guard gates, since absolute nanoseconds shift
    // with the runner hardware. Scaling: the §IV.B flatness claim; the
    // vs-first-fit ratio guards the fast path against silently
    // regressing to baseline cost.
    let scaling_ratio = sc64 / sc1;
    let vs_firstfit_ratio = sc64 / p50(AllocatorKind::FirstFit, 64);

    // Machine-readable trajectory record at the workspace root.
    let mut json = String::from("{\n  \"benchmark\": \"write_path\",\n  \"measured_iterations\": ");
    json.push_str(&MEASURED_ITERS.to_string());
    json.push_str(",\n  \"block_bytes\": ");
    json.push_str(&(ELEMS * 8).to_string());
    json.push_str(",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"allocator\": \"{}\", \"clients\": {}, \"write_ns_p50\": {:.1}, \"write_ns_p90\": {:.1}, \"class_hit_fraction\": {:.3}}}{}\n",
            s.allocator.name(),
            s.clients,
            s.write_ns_p50,
            s.write_ns_p90,
            s.class_hit_fraction,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ,{{\"series\": \"derived\", \"p50_scaling_1_to_64_ratio\": {scaling_ratio:.3}, \"p50_sizeclass_vs_firstfit_64_ratio\": {vs_firstfit_ratio:.3}}}\n"
    ));
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_write_path.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
