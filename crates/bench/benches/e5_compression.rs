//! E5 (§IV.D): compression in the dedicated cores' spare time.
//!
//! Paper anchor: "a 600 % compression ratio without any overhead on the
//! simulation". Two parts:
//!
//! 1. real codecs on real CM1-proxy output (this machine),
//! 2. the cluster model confirming zero simulation overhead at 9216 cores.

use cluster_sim::experiments::e5_compression_at_scale;
use damaris_bench::{e5_real_compression, print_table};

fn main() {
    for (label, steps) in [
        ("initial fields (mostly base state)", 0),
        ("evolved fields (30 steps)", 30),
    ] {
        let rows: Vec<Vec<String>> = e5_real_compression(steps)
            .into_iter()
            .map(|r| {
                vec![
                    r.pipeline,
                    format!("{:.1}:1 ({:.0} %)", r.ratio, r.ratio * 100.0),
                    format!("{:.0} MB/s", r.throughput / 1e6),
                ]
            })
            .collect();
        print_table(
            &format!("E5 — real CM1-proxy data, {label} (paper: 600 %)"),
            &["pipeline", "ratio", "encode throughput"],
            &rows,
        );
    }

    let (plain, compressed) = e5_compression_at_scale(3, 6.0, 42);
    print_table(
        "E5 — at 9216 cores in the cluster model (6:1 ratio applied)",
        &["metric", "without compression", "with compression"],
        &[
            vec![
                "simulation wall [s]".into(),
                format!("{:.0}", plain.wall_seconds),
                format!("{:.0}  (paper: unchanged)", compressed.wall_seconds),
            ],
            vec![
                "bytes written per run".into(),
                format!(
                    "{:.0} GiB",
                    plain.bytes_written as f64 / (1u64 << 30) as f64
                ),
                format!(
                    "{:.0} GiB",
                    compressed.bytes_written as f64 / (1u64 << 30) as f64
                ),
            ],
            vec![
                "dedicated idle".into(),
                format!("{:.1} %", plain.dedicated_idle.unwrap_or(0.0) * 100.0),
                format!("{:.1} %", compressed.dedicated_idle.unwrap_or(0.0) * 100.0),
            ],
        ],
    );
}
