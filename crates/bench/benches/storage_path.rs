//! Storage-pipeline bench (§IV.D): the dedicated core compresses and
//! writes one h5lite file per node in its idle time, at zero visible cost
//! to the simulation.
//!
//! Three measurements back the claim:
//!
//! 1. **Compression factor** per codec pipeline on genuine CM1-proxy
//!    fields (the paper reports ~600 %). The proxy simulation and the
//!    codecs are deterministic, so these factors are machine-independent
//!    and CI gates them as absolute bounds (`compression_factor_default
//!    >= 4.0`).
//! 2. **Codec throughput** (bytes/s of input) per pipeline — absolute,
//!    machine-dependent, gated only under `--strict`.
//! 3. **Client-visible write p50, store-on vs store-off**: the same
//!    two-client thread-world run with and without `<store
//!    type="h5lite">`, each `write()` call individually timed. The codec
//!    and file work ride the dedicated core, so the medians must agree —
//!    CI gates `storage_on_off_p50_ratio <= 1.10`.
//! 4. **Encode scaling, 1→N workers**: the engine's chunk fan-out
//!    replayed directly — the chunk set of a CM1 snapshot encoded by a
//!    worker pool of 1, 2 and 4 threads, each worker with its own
//!    [`codec::EncodeScratch`]. The derived `encode_scaling_x4` (4-worker
//!    throughput over 1-worker) is CI-gated `>= 1.5` on hosts with at
//!    least 4 cores, report-only elsewhere.
//!
//! Results go to stdout as tables and to `BENCH_storage.json` at the
//! workspace root for CI's regression guard.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use codec::{Codec, Pipeline};
use damaris_bench::print_table;
use damaris_core::prelude::*;
use sim_apps::{Cm1, Cm1Config, ProxyApp};

/// Codec pipelines measured on the CM1-proxy fields. The last is the
/// spec the end-to-end section (and the repo's example configs) use.
const PIPELINES: &[&str] = &[
    "rle",
    "xor-delta8,rle",
    "xor-delta8,shuffle8,rle",
    "xor-delta8,shuffle8,rle,lzss",
];
/// Pipeline whose compression factor CI gates (`>= 4.0`).
const DEFAULT_PIPELINE: &str = "xor-delta8,shuffle8,rle,lzss";
/// CM1 steps evolved before sampling the field (past the trivially
/// compressible initial state, still in the paper's smooth regime).
const CM1_STEPS: usize = 10;
/// Encode repetitions per pipeline; throughput takes the best run.
const ENCODE_REPEATS: usize = 3;
/// Worker counts for the encode-scaling series (must include 1 and 4:
/// `encode_scaling_x4` is derived from them).
const SCALING_WORKERS: &[usize] = &[1, 2, 4];
/// Chunk granularity of the scaling series — the engine's unit of
/// encode fan-out (64 chunk_rows × a row of 4096 f64s = 32 KiB blocks
/// in the end-to-end section; 64 KiB here keeps per-chunk work real).
const SCALING_CHUNK: usize = 64 << 10;

/// Iterations per client before measurement starts.
const WARMUP_ITERS: u64 = 10;
/// Measured iterations per client.
const MEASURED_ITERS: u64 = 100;
/// f64 elements per block (32 KiB — big enough that the dedicated core
/// has real codec + file work per iteration).
const ELEMS: usize = 4096;
/// Variables written (and individually timed) per iteration. Real
/// simulations publish many variables per step; the burst also amortizes
/// the dedicated-core wakeup a step's first post may pay (with the store
/// off the core parks between steps, and on a small host that wakeup
/// preempts the writer mid-call — a ~10 µs artifact the median must
/// ignore, exactly as in `write_path.rs`).
const VARS: &[&str] = &["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"];
/// Compute cores per node.
const CLIENTS: usize = 2;
/// Full end-to-end runs per case; the reported p50 is the minimum
/// across runs (robust against scheduler interference on shared CI).
const RUN_REPEATS: usize = 2;

struct CodecSample {
    pipeline: &'static str,
    factor: f64,
    throughput: f64,
}

struct WriteSample {
    store: &'static str,
    write_ns_p50: f64,
    write_ns_p90: f64,
}

/// One flattened CM1-proxy snapshot, all fields concatenated — the data
/// profile §IV.D compresses ~600 %.
fn cm1_bytes(steps: usize) -> Vec<u8> {
    let mut sim = Cm1::new(Cm1Config {
        nx: 96,
        ny: 96,
        nz: 32,
        ..Default::default()
    });
    for _ in 0..steps {
        sim.step();
    }
    sim.fields()
        .iter()
        .flat_map(|(_, v)| v.iter().flat_map(|f| f.to_le_bytes()))
        .collect()
}

fn measure_codecs(bytes: &[u8]) -> Vec<CodecSample> {
    PIPELINES
        .iter()
        .map(|spec| {
            let p = Pipeline::from_spec(spec).expect("specs are valid");
            let mut packed = Vec::new();
            let mut best = f64::INFINITY;
            for _ in 0..ENCODE_REPEATS {
                let t0 = Instant::now();
                packed = p.encode(bytes);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            assert_eq!(p.decode(&packed).expect("roundtrip"), bytes);
            CodecSample {
                pipeline: spec,
                factor: codec::compression_ratio(bytes.len(), packed.len()),
                throughput: bytes.len() as f64 / best.max(1e-9),
            }
        })
        .collect()
}

struct ScalingSample {
    workers: usize,
    throughput: f64,
}

/// The engine's multi-worker encode stage, replayed in isolation: a
/// shared queue of chunks, `workers` threads each encoding with a
/// private scratch, wall-clocked from a barrier. Per worker count the
/// best of [`ENCODE_REPEATS`] runs is kept.
fn measure_encode_scaling(bytes: &[u8]) -> Vec<ScalingSample> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let p = Pipeline::from_spec(DEFAULT_PIPELINE).expect("spec is valid");
    let chunks: Vec<&[u8]> = bytes.chunks(SCALING_CHUNK).collect();
    SCALING_WORKERS
        .iter()
        .map(|&workers| {
            let mut best = f64::INFINITY;
            for _ in 0..ENCODE_REPEATS {
                let next = AtomicUsize::new(0);
                let barrier = Barrier::new(workers + 1);
                let elapsed = thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            let mut scratch = codec::EncodeScratch::new();
                            barrier.wait();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(chunk) = chunks.get(i) else { break };
                                std::hint::black_box(p.encode_with(chunk, &mut scratch));
                            }
                            barrier.wait();
                        });
                    }
                    barrier.wait(); // all workers ready
                    let t0 = Instant::now();
                    barrier.wait(); // all chunks encoded
                    t0.elapsed().as_secs_f64()
                });
                best = best.min(elapsed);
            }
            ScalingSample {
                workers,
                throughput: bytes.len() as f64 / best.max(1e-9),
            }
        })
        .collect()
}

fn config(store_dir: Option<&Path>) -> String {
    let store = match store_dir {
        Some(d) => format!(
            r#"<store type="h5lite" path="{}" chunk_rows="64"/>"#,
            d.display()
        ),
        None => String::new(),
    };
    let vars: String = VARS
        .iter()
        .map(|v| format!(r#"<variable name="{v}" layout="grid" codec="xor-delta8,shuffle8,rle"/>"#))
        .collect();
    // Ring capacity covers every event of a client's run; the segment
    // holds the pipelining window many times over.
    format!(
        r#"<simulation name="storage-path">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="{}"/>
               <queue capacity="{}" kind="sharded"/>
               {store}
             </architecture>
             <data>
               <layout name="grid" type="f64" dimensions="{ELEMS}"/>
               {vars}
             </data>
           </simulation>"#,
        64 << 20,
        (VARS.len() + 1) * (WARMUP_ITERS + MEASURED_ITERS + 2) as usize
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A smooth field drifting with the iteration, so the store-on run's
/// codec work is realistic rather than degenerate.
fn field(rank: usize, iteration: u64) -> Vec<f64> {
    (0..ELEMS)
        .map(|i| 300.0 + rank as f64 + iteration as f64 * 0.01 + (i % 64) as f64 * 0.125)
        .collect()
}

/// One full two-client run; returns every measured `write()` latency in
/// nanoseconds, sorted.
fn run_once(store_dir: Option<&Path>) -> Vec<f64> {
    let node = DamarisNode::builder()
        .config_str(&config(store_dir))
        .expect("config")
        .clients(CLIENTS)
        .build()
        .expect("node");
    // Bound each client's lead over the dedicated core, emulating the
    // compute phase during which blocks are recycled.
    const WINDOW: u64 = 4;
    let start = Arc::new(Barrier::new(CLIENTS));
    let mut all: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                let start = start.clone();
                let node = &node;
                scope.spawn(move || {
                    let mut h = Damaris::threads(client);
                    let rank = h.id();
                    let mut samples = Vec::with_capacity(VARS.len() * MEASURED_ITERS as usize);
                    start.wait();
                    for it in 0..WARMUP_ITERS + MEASURED_ITERS {
                        let data = field(rank, it);
                        for var in VARS {
                            let t0 = Instant::now();
                            h.write(var, it, &data).expect("write");
                            if it >= WARMUP_ITERS {
                                samples.push(t0.elapsed().as_nanos() as f64);
                            }
                        }
                        h.end_iteration(it).expect("end");
                        while node.iterations_completed() + WINDOW <= it {
                            thread::yield_now();
                        }
                    }
                    h.finalize().expect("finalize");
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let report = node.shutdown().expect("shutdown");
    assert_eq!(report.iterations_completed, WARMUP_ITERS + MEASURED_ITERS);
    // Keep the store-on case honest: the pipeline really persisted data.
    if let Some(dir) = store_dir {
        let path = dir.join("storage-path_node0.dh5");
        let mut r = h5lite::FileReader::open(&path).expect("per-node file written");
        let it = WARMUP_ITERS + MEASURED_ITERS - 1;
        let got = r
            .read_pod::<f64>(&format!("it{it:06}/v0/rank1"))
            .expect("codec dataset decodes");
        assert_eq!(got, field(1, it), "stored data round-trips");
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    all
}

fn run_write_case(store_dir: Option<&Path>) -> WriteSample {
    let store = if store_dir.is_some() { "on" } else { "off" };
    let (mut p50, mut p90) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..RUN_REPEATS {
        let samples = run_once(store_dir);
        p50 = p50.min(percentile(&samples, 0.50));
        p90 = p90.min(percentile(&samples, 0.90));
    }
    WriteSample {
        store,
        write_ns_p50: p50,
        write_ns_p90: p90,
    }
}

fn main() {
    eprintln!("storage_path: codec pipelines on CM1-proxy data…");
    let bytes = cm1_bytes(CM1_STEPS);
    let codecs = measure_codecs(&bytes);
    print_table(
        "storage — codec pipelines on CM1-proxy fields",
        &["pipeline", "factor", "MB/s"],
        &codecs
            .iter()
            .map(|c| {
                vec![
                    c.pipeline.to_string(),
                    format!("{:.2}", c.factor),
                    format!("{:.0}", c.throughput / 1e6),
                ]
            })
            .collect::<Vec<_>>(),
    );

    eprintln!("storage_path: encode scaling, 1 -> N workers…");
    let scaling = measure_encode_scaling(&bytes);
    print_table(
        "storage — encode throughput vs worker-pool size",
        &["workers", "MB/s"],
        &scaling
            .iter()
            .map(|s| vec![s.workers.to_string(), format!("{:.0}", s.throughput / 1e6)])
            .collect::<Vec<_>>(),
    );

    let dir: PathBuf =
        std::env::temp_dir().join(format!("damaris-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench store dir");
    eprintln!("storage_path: end-to-end write p50, store off…");
    let off = run_write_case(None);
    eprintln!("storage_path: end-to-end write p50, store on…");
    let on = run_write_case(Some(&dir));
    std::fs::remove_dir_all(&dir).ok();
    print_table(
        "storage — client-visible write() latency, store on vs off",
        &["store", "write ns p50", "write ns p90"],
        &[&off, &on]
            .iter()
            .map(|s| {
                vec![
                    s.store.to_string(),
                    format!("{:.0}", s.write_ns_p50),
                    format!("{:.0}", s.write_ns_p90),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let default_factor = codecs
        .iter()
        .find(|c| c.pipeline == DEFAULT_PIPELINE)
        .expect("default pipeline measured")
        .factor;
    let on_off_ratio = on.write_ns_p50 / off.write_ns_p50.max(1e-9);
    let at = |w: usize| {
        scaling
            .iter()
            .find(|s| s.workers == w)
            .expect("scaling series covers it")
            .throughput
    };
    // Named `_x4`, not `_ratio`: it is higher-better and absolute-bounded
    // (`>= 1.5` where cores allow), not drift-gated against a baseline.
    let scaling_x4 = at(4) / at(1).max(1e-9);
    println!(
        "default pipeline '{DEFAULT_PIPELINE}': {default_factor:.2}x; \
         store on/off write p50 ratio {on_off_ratio:.3}; \
         encode scaling x4 {scaling_x4:.2}"
    );

    // Machine-readable trajectory record at the workspace root. The
    // derived metrics are what CI gates: the compression factor is
    // deterministic (same proxy data, same codecs, everywhere) and must
    // stay >= 4.0; the on/off ratio is the zero-overhead claim and must
    // stay <= 1.10.
    let mut json = String::from("{\n  \"benchmark\": \"storage_path\",\n  \"cm1_steps\": ");
    json.push_str(&CM1_STEPS.to_string());
    json.push_str(",\n  \"block_bytes\": ");
    json.push_str(&(ELEMS * 8).to_string());
    json.push_str(",\n  \"samples\": [\n");
    for c in &codecs {
        json.push_str(&format!(
            "    {{\"series\": \"codec\", \"pipeline\": \"{}\", \"compression_factor\": {:.3}, \"encode_throughput\": {:.1}}},\n",
            c.pipeline, c.factor, c.throughput
        ));
    }
    for s in &scaling {
        json.push_str(&format!(
            "    {{\"series\": \"encode_scaling\", \"workers\": {}, \"encode_throughput\": {:.1}}},\n",
            s.workers, s.throughput
        ));
    }
    for s in [&off, &on] {
        json.push_str(&format!(
            "    {{\"series\": \"write\", \"store\": \"{}\", \"write_ns_p50\": {:.1}, \"write_ns_p90\": {:.1}}},\n",
            s.store, s.write_ns_p50, s.write_ns_p90
        ));
    }
    json.push_str(&format!(
        "    {{\"series\": \"derived\", \"compression_factor_default\": {default_factor:.3}, \"storage_on_off_p50_ratio\": {on_off_ratio:.3}, \"encode_scaling_x4\": {scaling_x4:.3}, \"store_on_write_ns_p90\": {:.1}}}\n",
        on.write_ns_p90
    ));
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
