//! Ablation: how sensitive are the reproduced results to the storage-model
//! design choices? (The calibration constants live in
//! `PfsConfig::kraken_lustre()`; DESIGN.md commits us to showing which of
//! them carry the paper's effects.)
//!
//! Four sweeps, each varying one knob with everything else fixed:
//!
//! * interference knee — what creates the Damaris/FPP gap,
//! * extent-lock handoff cost — what collapses collective I/O,
//! * number of dedicated cores — the paper's "one or a few" choice,
//! * staging-buffer depth — what governs the skip policy under overload.

use cluster_sim::{run, DamarisOptions, Platform, Strategy, Workload};
use damaris_bench::print_table;

fn throughputs(platform: &Platform, seed: u64) -> (f64, f64, f64) {
    let w = Workload::cm1(2);
    let coll = run(platform, &w, 9216, Strategy::Collective, seed);
    let fpp = run(platform, &w, 9216, Strategy::FilePerProcess, seed);
    let dam = run(platform, &w, 9216, Strategy::damaris_greedy(), seed);
    (
        coll.agg_throughput / 1e9,
        fpp.agg_throughput / 1e9,
        dam.agg_throughput / 1e9,
    )
}

fn main() {
    let seed = 42;

    // ---- 1. interference knee ----
    let mut rows = Vec::new();
    for knee in [1usize, 2, 4, 8, 16] {
        let mut p = Platform::kraken().without_jitter();
        p.pfs.interference_knee = knee;
        let (coll, fpp, dam) = throughputs(&p, seed);
        rows.push(vec![
            knee.to_string(),
            format!("{coll:.2}"),
            format!("{fpp:.2}"),
            format!("{dam:.2}"),
            format!("{:.1}x", dam / fpp.max(1e-9)),
        ]);
    }
    print_table(
        "Ablation 1 — interference knee (streams an OST absorbs at full speed); calibrated = 4",
        &[
            "knee",
            "collective [GB/s]",
            "fpp [GB/s]",
            "damaris [GB/s]",
            "damaris/fpp",
        ],
        &rows,
    );
    println!(
        "the Damaris advantage needs a knee ≥ its 2–3 streams/OST; past that the\n\
         gap is insensitive — the effect is robust, not a tuning artifact."
    );

    // ---- 2. extent-lock handoff cost ----
    let mut rows = Vec::new();
    for lock_ms in [0.0f64, 0.2, 0.8, 2.0] {
        let mut p = Platform::kraken().without_jitter();
        p.pfs.lock_switch_s = lock_ms / 1e3;
        let (coll, _, dam) = throughputs(&p, seed);
        rows.push(vec![
            format!("{lock_ms:.1} ms"),
            format!("{coll:.2}"),
            format!("{dam:.2}"),
        ]);
    }
    print_table(
        "Ablation 2 — shared-file extent-lock handoff cost; calibrated = 0.8 ms",
        &["lock handoff", "collective [GB/s]", "damaris [GB/s]"],
        &rows,
    );
    println!(
        "locks only touch the shared file: Damaris (private node files) is immune.\n\
         collective's collapse is shared between lock handoffs (~10 % here) and\n\
         the deep-queue interference floor that hundreds of writers per OST hit —\n\
         both are consequences of the single shared file (§IV.C)."
    );

    // ---- 3. number of dedicated cores ----
    let mut rows = Vec::new();
    let w = Workload::cm1(2);
    for dedicated in [1usize, 2, 3] {
        let p = Platform::kraken().without_jitter();
        let m = run(
            &p,
            &w,
            9216,
            Strategy::Damaris(DamarisOptions {
                dedicated_cores: dedicated,
                ..Default::default()
            }),
            seed,
        );
        rows.push(vec![
            dedicated.to_string(),
            format!("{:.0}", m.wall_seconds),
            format!("{:.1} %", m.dedicated_idle.unwrap_or(0.0) * 100.0),
        ]);
    }
    print_table(
        "Ablation 3 — dedicated cores per 12-core node (paper: \"one or a few\")",
        &["dedicated", "wall [s]", "idle"],
        &rows,
    );
    println!(
        "every extra dedicated core costs ~9 % compute and buys nothing here —\n\
         the paper's choice of one is the right default for pure I/O."
    );

    // ---- 4. staging-buffer depth under overload ----
    let mut rows = Vec::new();
    let burst = Workload {
        name: "burst",
        dumps: 10,
        steps_per_dump: 1,
        compute_seconds_per_step: 1.0,
        bytes_per_core: 45 << 20,
    };
    for buffer_dumps in [1usize, 2, 4, 8] {
        let p = Platform::kraken().without_jitter();
        let m = run(
            &p,
            &burst,
            9216,
            Strategy::Damaris(DamarisOptions {
                buffer_dumps,
                ..Default::default()
            }),
            seed,
        );
        rows.push(vec![
            buffer_dumps.to_string(),
            m.skipped_node_dumps.to_string(),
            format!("{:.0}", m.wall_seconds),
        ]);
    }
    print_table(
        "Ablation 4 — staging buffer depth (dumps) under a 1 s/step overload burst",
        &["buffer [dumps]", "skipped node-dumps", "wall [s]"],
        &rows,
    );
    println!(
        "a deeper buffer absorbs longer bursts before the §V.C.1 skip policy\n\
         engages; the simulation's pace never changes — that is the invariant."
    );
}
