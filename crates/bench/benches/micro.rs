//! M0 — criterion micro-benchmarks of the substrate layers.
//!
//! The headline micro number is the §IV.B claim: a Damaris "write" costs
//! one shared-memory copy, ~0.1 s for tens of MB, regardless of scale.
//! `shm_write` measures exactly that path (allocate + memcpy + freeze +
//! enqueue) at several payload sizes; the others characterize the message
//! queue, codecs, the h5lite write path, the analysis kernels and the
//! mini-MPI collectives.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use codec::{Codec, Pipeline};
use damaris_shm::transport::{
    EventChannel, EventConsumer, EventProducer, ShardedChannel, TransportKind,
};
use damaris_shm::{MessageQueue, SharedSegment};
use h5lite::{Dtype, FileWriter};
use insitu::{isosurface, Grid3};
use mini_mpi::World;

fn cm1_like_bytes(n_doubles: usize) -> Vec<u8> {
    (0..n_doubles)
        .map(|i| {
            if i % 5 == 0 {
                300.0 + (i as f64 * 0.001).sin()
            } else {
                300.0
            }
        })
        .flat_map(|f: f64| f.to_le_bytes())
        .collect()
}

fn bench_shm_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("shm_write");
    group.sample_size(20);
    for mib in [1usize, 8, 45] {
        let bytes = mib << 20;
        let seg = SharedSegment::new(bytes * 2 + (1 << 20)).expect("segment");
        let queue = MessageQueue::bounded(16);
        let data = vec![300.0f64; bytes / 8];
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mib}MiB")),
            &mib,
            |b, _| {
                b.iter(|| {
                    // The complete sim-side Damaris write path.
                    let mut block = seg.allocate(bytes).expect("allocate");
                    block.write_pod(&data);
                    queue.send(block.freeze()).expect("enqueue");
                    let _ = queue.recv().expect("drain"); // drop frees the block
                });
            },
        );
    }
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_queue");
    group.measurement_time(Duration::from_secs(3));
    let q: MessageQueue<u64> = MessageQueue::bounded(1024);
    group.bench_function("send_recv", |b| {
        b.iter(|| {
            q.send(7).expect("send");
            q.recv().expect("recv")
        });
    });
    group.finish();
}

/// One full post+drain burst of `producers × EVENTS` events through a
/// transport; the per-iteration time divided by the event count compares
/// event-post cost across transports at growing contention (§IV.B's
/// "independent of scale" claim). Expect mutex cost to climb with the
/// producer count and sharded cost to stay flat — sharded wins clearly
/// from 16 producers up.
///
/// Producer threads are long-lived and re-armed with a barrier each
/// iteration, so thread spawn/join cost never pollutes the numbers
/// (at 64 producers it would otherwise dominate the sharded figure).
fn bench_transport_post(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};
    use std::thread;

    const EVENTS: usize = 2_000;

    /// Persistent producer pool: each `fire` runs one burst of
    /// `EVENTS` posts per producer between two barrier crossings.
    struct Pool {
        start: Arc<Barrier>,
        stop: Arc<AtomicBool>,
        handles: Vec<thread::JoinHandle<()>>,
    }

    impl Pool {
        fn spawn<C: EventChannel<u64>>(channel: &C, producers: usize) -> Pool {
            let start = Arc::new(Barrier::new(producers + 1));
            let stop = Arc::new(AtomicBool::new(false));
            let handles = (0..producers)
                .map(|p| {
                    let producer = channel.producer(p);
                    let start = start.clone();
                    let stop = stop.clone();
                    thread::spawn(move || loop {
                        start.wait();
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        for i in 0..EVENTS {
                            producer.send(i as u64).unwrap();
                        }
                    })
                })
                .collect();
            Pool {
                start,
                stop,
                handles,
            }
        }

        /// Run one burst, draining on the calling thread.
        fn fire(&self, mut drain: impl FnMut(), total: usize) {
            self.start.wait();
            for _ in 0..total {
                drain();
            }
        }

        fn shutdown(self) {
            self.stop.store(true, Ordering::Release);
            self.start.wait();
            for h in self.handles {
                h.join().unwrap();
            }
        }
    }

    let mut group = c.benchmark_group("transport_event_post");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for producers in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements((producers * EVENTS) as u64));
        for kind in [TransportKind::Mutex, TransportKind::Sharded] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), producers),
                &producers,
                |b, &producers| {
                    // Capacity covers the burst: measure posting, not
                    // backpressure sleeps.
                    match kind {
                        TransportKind::Mutex => {
                            let q = MessageQueue::<u64>::bounded(producers * EVENTS);
                            let pool = Pool::spawn(&q, producers);
                            let consumer = q.consumer(0, 1);
                            b.iter(|| {
                                pool.fire(
                                    || {
                                        while consumer.try_recv().is_err() {
                                            std::hint::spin_loop();
                                        }
                                    },
                                    producers * EVENTS,
                                )
                            });
                            pool.shutdown();
                        }
                        TransportKind::Sharded => {
                            let ch = ShardedChannel::<u64>::new(producers, EVENTS);
                            let pool = Pool::spawn(&ch, producers);
                            let mut consumer = ch.consumer(0, 1);
                            b.iter(|| {
                                pool.fire(
                                    || {
                                        while consumer.try_recv().is_err() {
                                            std::hint::spin_loop();
                                        }
                                    },
                                    producers * EVENTS,
                                )
                            });
                            pool.shutdown();
                        }
                    }
                },
            );
        }
    }
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(15);
    let data = cm1_like_bytes(512 * 1024); // 4 MiB
    group.throughput(Throughput::Bytes(data.len() as u64));
    for spec in [
        "rle",
        "lzss",
        "xor-delta8,rle",
        "xor-delta8,shuffle8,rle,lzss",
    ] {
        let p = Pipeline::from_spec(spec).expect("valid spec");
        group.bench_with_input(BenchmarkId::new("encode", spec), &p, |b, p| {
            b.iter(|| p.encode(&data));
        });
        let packed = p.encode(&data);
        group.bench_with_input(BenchmarkId::new("decode", spec), &p, |b, p| {
            b.iter(|| p.decode(&packed).expect("roundtrip"));
        });
    }
    group.finish();
}

fn bench_h5lite(c: &mut Criterion) {
    let mut group = c.benchmark_group("h5lite");
    group.sample_size(20);
    let values: Vec<f64> = (0..256 * 1024).map(|i| i as f64).collect(); // 2 MiB
    group.throughput(Throughput::Bytes((values.len() * 8) as u64));
    group.bench_function("write_contiguous_2MiB", |b| {
        b.iter(|| {
            let mut cur = std::io::Cursor::new(Vec::with_capacity(values.len() * 8 + 1024));
            let mut w = FileWriter::new(&mut cur).expect("writer");
            w.dataset("d", Dtype::F64, &[values.len() as u64])
                .expect("dataset")
                .write_pod(&values)
                .expect("write");
            w.finish().expect("finish");
            cur.into_inner()
        });
    });
    group.finish();
}

fn bench_isosurface(c: &mut Criterion) {
    let mut group = c.benchmark_group("insitu");
    group.sample_size(15);
    let n = 64;
    let data: Vec<f64> = (0..n * n * n)
        .map(|i| {
            let (x, y, z) = (i % n, (i / n) % n, i / (n * n));
            (((x * x + y * y + z * z) as f64).sqrt() - 40.0).abs()
        })
        .collect();
    let grid = Grid3::new(&data, n, n, n);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function("isosurface_64cubed", |b| {
        b.iter(|| isosurface(&grid, 10.0));
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("mini_mpi");
    group.sample_size(10);
    group.bench_function("allreduce_8ranks_1k", |b| {
        b.iter(|| {
            World::run(8, |comm| {
                let contrib = vec![comm.rank() as u64; 1024];
                comm.allreduce(&contrib, |a, b| *a += b)
            })
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shm_write,
    bench_queue,
    bench_transport_post,
    bench_codecs,
    bench_h5lite,
    bench_isosurface,
    bench_collectives
);
criterion_main!(benches);
