//! E3 (§IV.C): aggregate storage throughput at 9216 cores.
//!
//! Paper anchors: 0.5 GB/s collective, < 1.7 GB/s file-per-process,
//! up to 10 GB/s Damaris.

use cluster_sim::experiments::e3_throughput;
use damaris_bench::print_table;

fn main() {
    let paper = [
        ("collective", "0.5"),
        ("file-per-process", "< 1.7"),
        ("damaris/greedy", "~10"),
    ];
    let rows: Vec<Vec<String>> = e3_throughput(3, 42)
        .into_iter()
        .map(|r| {
            let anchor = paper
                .iter()
                .find(|(name, _)| *name == r.strategy)
                .map(|(_, v)| v.to_string())
                .unwrap_or_default();
            vec![
                r.strategy,
                anchor,
                format!("{:.2}", r.throughput_gbps),
                r.files_per_dump.to_string(),
            ]
        })
        .collect();
    print_table(
        "E3 — aggregate throughput at 9216 cores",
        &["strategy", "paper [GB/s]", "measured [GB/s]", "files/dump"],
        &rows,
    );
}
