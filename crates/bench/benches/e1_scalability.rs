//! E1 (§IV.A): CM1 weak scaling under the three I/O strategies.
//!
//! Paper anchors: collective I/O phases reach ~800 s ≈ 70 % of run time at
//! 9216 cores; Damaris scales near-perfectly; 3.5× end-to-end speedup over
//! collective I/O.

use cluster_sim::experiments::{e1_scalability, e1_speedup};
use damaris_bench::print_table;

fn main() {
    let dumps = 3;
    let seed = 42;
    let table = e1_scalability(dumps, seed);
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                r.strategy.clone(),
                format!("{:.0}", r.wall_seconds),
                format!("{:.0} %", r.io_fraction * 100.0),
                format!("{:.1}", r.io_per_dump),
            ]
        })
        .collect();
    print_table(
        "E1 — CM1 weak scaling on Kraken (virtual seconds)",
        &[
            "cores",
            "strategy",
            "wall [s]",
            "I/O share",
            "I/O per dump [s]",
        ],
        &rows,
    );
    let coll_9216 = table
        .iter()
        .find(|r| r.ranks == 9216 && r.strategy == "collective")
        .expect("collective row present");
    let speedup = e1_speedup(dumps, seed);
    print_table(
        "E1 — headline",
        &["metric", "paper", "measured"],
        &[
            vec![
                "I/O share of run time, collective @9216".into(),
                "~70 %".into(),
                format!("{:.0} %", coll_9216.io_fraction * 100.0),
            ],
            vec![
                "collective I/O phase @9216".into(),
                "up to 800 s".into(),
                format!("{:.0} s", coll_9216.io_per_dump),
            ],
            vec![
                "speedup damaris vs collective @9216".into(),
                "3.5x".into(),
                format!("{speedup:.2}x"),
            ],
        ],
    );
}
