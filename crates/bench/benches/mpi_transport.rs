//! mini-mpi transport shoot-out: in-process thread world vs the
//! multi-process Unix-domain-socket world.
//!
//! Measures, over a 2-rank world with 64-byte payloads:
//!
//! * **post latency** — mean nanoseconds a rank spends inside `send`
//!   (the *sim-visible* cost: for the socket world this is envelope
//!   encode + hand-off to the per-peer writer thread, not wire time);
//! * **roundtrip latency** — mean nanoseconds for send + matched receive
//!   of the reply (the full delivery path: framing, socket, demux reader,
//!   mailbox wakeup).
//!
//! Prints a table and records `BENCH_mpi_transport.json` at the workspace
//! root. The `processes` numbers calibrate the cluster DES's socket
//! constants (`UDS_POST_SECONDS`, `UDS_ACK_ROUNDTRIP_SECONDS` in
//! `cluster_sim::run`). Cross-world multipliers are recorded with an `_x`
//! suffix — informational, never gated: the socket-vs-memory gap is a
//! property of the kernel and scheduler, too machine-dependent for a
//! fixed threshold. Absolute `_ns` metrics gate only under
//! `check_bench_regression.py --strict` (same-machine baselines).
//!
//! This binary re-executes itself for the socket world: the `run_spawned`
//! call is the first thing `main` does, so spawned children never reach
//! the thread-world measurement below it.

use mini_mpi::{Comm, Source, World};

use damaris_bench::print_table;

/// Eager posts per post-latency measurement.
const POSTS: usize = 20_000;
/// Ping-pong pairs per roundtrip measurement.
const ROUNDTRIPS: usize = 2_000;
/// Payload, in u64 words (64 bytes — a descriptor-sized message).
const PAYLOAD_WORDS: usize = 8;

/// The measured rank program: rank 0 reports `(post_ns, roundtrip_ns)`.
fn transport_probe(comm: &mut Comm) -> Vec<u8> {
    let payload = [7u64; PAYLOAD_WORDS];
    let (post_ns, roundtrip_ns);
    if comm.rank() == 0 {
        // Post latency: eager sends, receiver drains concurrently.
        let t0 = std::time::Instant::now();
        for _ in 0..POSTS {
            comm.send(1, 0, &payload);
        }
        post_ns = t0.elapsed().as_nanos() as f64 / POSTS as f64;
        // Barrier-ish handshake so the drain doesn't overlap the pings.
        let _: Vec<u64> = comm.recv(Source::Rank(1), 2);
        let t0 = std::time::Instant::now();
        for _ in 0..ROUNDTRIPS {
            comm.send(1, 1, &payload);
            let _: Vec<u64> = comm.recv(Source::Rank(1), 1);
        }
        roundtrip_ns = t0.elapsed().as_nanos() as f64 / ROUNDTRIPS as f64;
    } else {
        for _ in 0..POSTS {
            let _: Vec<u64> = comm.recv(Source::Rank(0), 0);
        }
        comm.send(0, 2, &payload);
        for _ in 0..ROUNDTRIPS {
            let _: Vec<u64> = comm.recv(Source::Rank(0), 1);
            comm.send(0, 1, &payload);
        }
        post_ns = 0.0;
        roundtrip_ns = 0.0;
    }
    post_ns
        .to_le_bytes()
        .into_iter()
        .chain(roundtrip_ns.to_le_bytes())
        .collect()
}

fn decode(bytes: &[u8]) -> (f64, f64) {
    (
        f64::from_le_bytes(bytes[..8].try_into().unwrap()),
        f64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

fn main() {
    // Socket world FIRST: in a spawned child this call never returns.
    let socket_out = World::run_spawned(2, "mpi-transport-bench", &[], |comm, _| {
        transport_probe(comm)
    })
    .expect("socket world must run");
    let (uds_post, uds_rtt) = decode(&socket_out[0]);

    // Thread world, same probe.
    let thread_out = World::run(2, transport_probe);
    let (thr_post, thr_rtt) = decode(&thread_out[0]);

    let rows = vec![
        vec![
            "threads".to_string(),
            format!("{thr_post:.0} ns"),
            format!("{thr_rtt:.0} ns"),
        ],
        vec![
            "processes (UDS)".to_string(),
            format!("{uds_post:.0} ns"),
            format!("{uds_rtt:.0} ns"),
        ],
        vec![
            "processes / threads".to_string(),
            format!("{:.1}x", uds_post / thr_post.max(1.0)),
            format!("{:.1}x", uds_rtt / thr_rtt.max(1.0)),
        ],
    ];
    print_table(
        "mini-mpi transport: post / roundtrip latency (2 ranks, 64 B)",
        &["world", "post", "roundtrip"],
        &rows,
    );
    println!(
        "\nDES calibration: UDS_POST_SECONDS ≈ {:.1e}, UDS_ACK_ROUNDTRIP_SECONDS ≈ {:.1e}",
        uds_post * 1e-9,
        uds_rtt * 1e-9
    );

    let json = format!(
        "{{\n  \"benchmark\": \"mpi_transport\",\n  \"posts\": {POSTS},\n  \"roundtrips\": {ROUNDTRIPS},\n  \"payload_bytes\": {},\n  \"samples\": [\n    {{\"world\": \"threads\", \"post_ns\": {thr_post:.1}, \"roundtrip_ns\": {thr_rtt:.1}}},\n    {{\"world\": \"processes\", \"post_ns\": {uds_post:.1}, \"roundtrip_ns\": {uds_rtt:.1}}},\n    {{\"world\": \"processes-vs-threads\", \"post_x\": {:.2}, \"roundtrip_x\": {:.2}}}\n  ]\n}}\n",
        PAYLOAD_WORDS * 8,
        uds_post / thr_post.max(1.0),
        uds_rtt / thr_rtt.max(1.0),
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_mpi_transport.json"
    );
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
