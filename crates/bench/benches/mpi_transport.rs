//! mini-mpi transport shoot-out: in-process thread world vs the
//! multi-process Unix-domain-socket world.
//!
//! Measures, over a 2-rank world with 64-byte payloads:
//!
//! * **post latency** — mean nanoseconds a rank spends inside `send`
//!   (the *sim-visible* cost: for the socket world this is envelope
//!   encode + hand-off to the per-peer writer thread, not wire time);
//! * **roundtrip latency** — mean nanoseconds for send + matched receive
//!   of the reply (the full delivery path: framing, socket, demux reader,
//!   mailbox wakeup).
//!
//! Prints a table and records `BENCH_mpi_transport.json` at the workspace
//! root. The `processes` numbers calibrate the cluster DES's socket
//! constants (`UDS_POST_SECONDS`, `UDS_ACK_ROUNDTRIP_SECONDS` in
//! `cluster_sim::run`). Cross-world multipliers are recorded with an `_x`
//! suffix — informational, never gated: the socket-vs-memory gap is a
//! property of the kernel and scheduler, too machine-dependent for a
//! fixed threshold. Absolute `_ns` metrics gate only under
//! `check_bench_regression.py --strict` (same-machine baselines).
//!
//! This binary re-executes itself for the socket world: the `run_spawned`
//! call is the first thing `main` does, so spawned children never reach
//! the thread-world measurement below it. Every socket run shares the one
//! program name `"mpi-transport-bench"` — a re-executed child always
//! enters the *first* matching call site, so the rank program dispatches
//! on its input byte instead of the call site.
//!
//! A second measurement pair answers the failure-detection question: the
//! reliable heartbeat mode (`heartbeat_ms > 0`) retains every sequenced
//! frame for retransmission until the peer's receive cursor acks it —
//! what does that bookkeeping cost per post? `REPS` repetitions of the
//! post loop give a heartbeat-on and a heartbeat-off series; the ratio of
//! their medians is recorded as `heartbeat_on_off_post_p50` and CI-bounds
//! it at ≤ 1.05 (the DES's `HEARTBEAT_POST_OVERHEAD_SECONDS` assumes the
//! same envelope).

use mini_mpi::{Comm, Source, SpawnOptions, World};

use damaris_bench::print_table;

/// Eager posts per post-latency measurement.
const POSTS: usize = 20_000;
/// Ping-pong pairs per roundtrip measurement.
const ROUNDTRIPS: usize = 2_000;
/// Payload, in u64 words (64 bytes — a descriptor-sized message).
const PAYLOAD_WORDS: usize = 8;
/// Repetitions of the post loop per heartbeat series (median taken).
const REPS: usize = 5;
/// Heartbeat interval for the heartbeat-on series.
const HEARTBEAT_MS: u64 = 50;

/// The measured rank program: rank 0 reports `(post_ns, roundtrip_ns)`.
fn transport_probe(comm: &mut Comm) -> Vec<u8> {
    let payload = [7u64; PAYLOAD_WORDS];
    let (post_ns, roundtrip_ns);
    if comm.rank() == 0 {
        // Post latency: eager sends, receiver drains concurrently.
        let t0 = std::time::Instant::now();
        for _ in 0..POSTS {
            comm.send(1, 0, &payload);
        }
        post_ns = t0.elapsed().as_nanos() as f64 / POSTS as f64;
        // Barrier-ish handshake so the drain doesn't overlap the pings.
        let _: Vec<u64> = comm.recv(Source::Rank(1), 2);
        let t0 = std::time::Instant::now();
        for _ in 0..ROUNDTRIPS {
            comm.send(1, 1, &payload);
            let _: Vec<u64> = comm.recv(Source::Rank(1), 1);
        }
        roundtrip_ns = t0.elapsed().as_nanos() as f64 / ROUNDTRIPS as f64;
    } else {
        for _ in 0..POSTS {
            let _: Vec<u64> = comm.recv(Source::Rank(0), 0);
        }
        comm.send(0, 2, &payload);
        for _ in 0..ROUNDTRIPS {
            let _: Vec<u64> = comm.recv(Source::Rank(0), 1);
            comm.send(0, 1, &payload);
        }
        post_ns = 0.0;
        roundtrip_ns = 0.0;
    }
    post_ns
        .to_le_bytes()
        .into_iter()
        .chain(roundtrip_ns.to_le_bytes())
        .collect()
}

/// The post-latency series program: rank 0 reports `REPS` per-repetition
/// mean post nanoseconds, with a drain barrier between repetitions so one
/// repetition's queued frames never bleed into the next measurement.
fn post_series_probe(comm: &mut Comm) -> Vec<u8> {
    let payload = [7u64; PAYLOAD_WORDS];
    let mut out = Vec::new();
    if comm.rank() == 0 {
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            for _ in 0..POSTS {
                comm.send(1, 0, &payload);
            }
            let rep_ns = t0.elapsed().as_nanos() as f64 / POSTS as f64;
            let _: Vec<u64> = comm.recv(Source::Rank(1), 2);
            out.extend(rep_ns.to_le_bytes());
        }
    } else {
        for _ in 0..REPS {
            for _ in 0..POSTS {
                let _: Vec<u64> = comm.recv(Source::Rank(0), 0);
            }
            comm.send(0, 2, &payload);
        }
        out.resize(8 * REPS, 0);
    }
    out
}

/// One rank program for every socket spawn in this binary: a re-executed
/// child enters `main`'s first `run_spawned*` call site regardless of
/// which spawn created it, so the input byte picks the probe.
fn probe_dispatch(comm: &mut Comm, input: &[u8]) -> Vec<u8> {
    match input.first().copied().unwrap_or(0) {
        0 => transport_probe(comm),
        _ => post_series_probe(comm),
    }
}

fn decode(bytes: &[u8]) -> (f64, f64) {
    (
        f64::from_le_bytes(bytes[..8].try_into().unwrap()),
        f64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

/// Median of a per-repetition latency series.
fn p50(series: &mut [f64]) -> f64 {
    series.sort_by(|a, b| a.total_cmp(b));
    series[series.len() / 2]
}

/// Run the post-latency series on a socket world with the given heartbeat
/// interval (0 = legacy mode) and return the median per-post nanoseconds.
fn post_series_p50(heartbeat_ms: u64) -> f64 {
    let opts = SpawnOptions {
        heartbeat_ms,
        ..SpawnOptions::default()
    };
    let outcome = World::run_spawned_outcome(2, "mpi-transport-bench", &[1], opts, probe_dispatch)
        .expect("socket series world must run");
    assert!(
        outcome.failures.is_empty(),
        "series ranks failed: {:?}",
        outcome.failures
    );
    let bytes = outcome.results[0].as_deref().expect("rank 0 reports");
    let mut series: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    p50(&mut series)
}

fn main() {
    // Socket world FIRST: in a spawned child this call never returns.
    let socket_out = World::run_spawned(2, "mpi-transport-bench", &[0], probe_dispatch)
        .expect("socket world must run");
    let (uds_post, uds_rtt) = decode(&socket_out[0]);

    // Heartbeat tax: the same post series with failure detection off/on.
    let hb_off_p50 = post_series_p50(0);
    let hb_on_p50 = post_series_p50(HEARTBEAT_MS);
    let hb_ratio = hb_on_p50 / hb_off_p50.max(1.0);

    // Thread world, same probe.
    let thread_out = World::run(2, transport_probe);
    let (thr_post, thr_rtt) = decode(&thread_out[0]);

    let rows = vec![
        vec![
            "threads".to_string(),
            format!("{thr_post:.0} ns"),
            format!("{thr_rtt:.0} ns"),
        ],
        vec![
            "processes (UDS)".to_string(),
            format!("{uds_post:.0} ns"),
            format!("{uds_rtt:.0} ns"),
        ],
        vec![
            "processes / threads".to_string(),
            format!("{:.1}x", uds_post / thr_post.max(1.0)),
            format!("{:.1}x", uds_rtt / thr_rtt.max(1.0)),
        ],
        vec![
            "processes, heartbeat off (p50)".to_string(),
            format!("{hb_off_p50:.0} ns"),
            "-".to_string(),
        ],
        vec![
            "processes, heartbeat on (p50)".to_string(),
            format!("{hb_on_p50:.0} ns"),
            "-".to_string(),
        ],
        vec![
            "heartbeat on / off".to_string(),
            format!("{hb_ratio:.3}x"),
            "-".to_string(),
        ],
    ];
    print_table(
        "mini-mpi transport: post / roundtrip latency (2 ranks, 64 B)",
        &["world", "post", "roundtrip"],
        &rows,
    );
    println!(
        "\nDES calibration: UDS_POST_SECONDS ≈ {:.1e}, UDS_ACK_ROUNDTRIP_SECONDS ≈ {:.1e}",
        uds_post * 1e-9,
        uds_rtt * 1e-9
    );

    let json = format!(
        "{{\n  \"benchmark\": \"mpi_transport\",\n  \"posts\": {POSTS},\n  \"roundtrips\": {ROUNDTRIPS},\n  \"payload_bytes\": {},\n  \"samples\": [\n    {{\"world\": \"threads\", \"post_ns\": {thr_post:.1}, \"roundtrip_ns\": {thr_rtt:.1}}},\n    {{\"world\": \"processes\", \"post_ns\": {uds_post:.1}, \"roundtrip_ns\": {uds_rtt:.1}}},\n    {{\"world\": \"processes-vs-threads\", \"post_x\": {:.2}, \"roundtrip_x\": {:.2}}},\n    {{\"world\": \"processes-heartbeat\", \"post_p50_hb_off_ns\": {hb_off_p50:.1}, \"post_p50_hb_on_ns\": {hb_on_p50:.1}, \"heartbeat_on_off_post_p50\": {hb_ratio:.3}}}\n  ]\n}}\n",
        PAYLOAD_WORDS * 8,
        uds_post / thr_post.max(1.0),
        uds_rtt / thr_rtt.max(1.0),
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_mpi_transport.json"
    );
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
