//! E8 (§V.C.1): what happens when analysis outlasts the time step.
//!
//! Paper anchor: "it may happen that the shared memory becomes full and
//! blocks the simulation. […] we thus implemented in Damaris a way to
//! automatically skip some iterations of data in order to keep up with the
//! simulation's output rate."
//!
//! This experiment runs the *real* middleware (threads, real shared
//! memory, a deliberately slow plugin) under both policies.

use damaris_bench::{e8_live_backpressure, fmt_s, print_table};

fn main() {
    let iterations = 60;
    let drop = e8_live_backpressure(false, iterations);
    let block = e8_live_backpressure(true, iterations);
    let row = |r: &damaris_bench::BackpressureResult| {
        vec![
            r.policy.to_string(),
            fmt_s(r.wall_seconds),
            r.iterations.to_string(),
            r.skipped.to_string(),
            fmt_s(r.mean_write_s),
        ]
    };
    print_table(
        &format!(
            "E8 — live middleware, slow analysis plugin, {iterations} iterations \
             (paper: drop data rather than block)"
        ),
        &[
            "policy",
            "wall",
            "iterations analyzed",
            "client-iterations skipped",
            "mean write",
        ],
        &[row(&drop), row(&block)],
    );
    println!(
        "drop-iteration keeps the simulation at full speed and loses data;\n\
         block loses nothing but stalls the simulation behind the plugin."
    );
}
