//! E6 (§IV.D): I/O scheduling strategies for the dedicated cores.
//!
//! Paper anchor: "a better I/O scheduling schema […] achieving up to
//! 12.7 GB/s of aggregate throughput on Kraken" (from ~10 GB/s greedy).
//! In this model the winning ingredient is byte-balanced placement across
//! OSTs; time-staggering alone does not help because 2–3 concurrent
//! streams per OST already sit below the interference knee.

use cluster_sim::experiments::e6_scheduling;
use damaris_bench::print_table;

fn main() {
    let paper = [("greedy", "~10"), ("balanced", "12.7")];
    let rows: Vec<Vec<String>> = e6_scheduling(3, 42)
        .into_iter()
        .map(|r| {
            let anchor = paper
                .iter()
                .find(|(name, _)| *name == r.scheduler)
                .map(|(_, v)| v.to_string())
                .unwrap_or_else(|| "—".into());
            vec![
                r.scheduler.to_string(),
                anchor,
                format!("{:.2}", r.throughput_gbps),
            ]
        })
        .collect();
    print_table(
        "E6 — Damaris I/O scheduling at 9216 cores",
        &["scheduler", "paper [GB/s]", "measured [GB/s]"],
        &rows,
    );
}
