//! E7 (§V.C.1): in-situ visualization coupling on Grid'5000 with Nek5000.
//!
//! Paper anchor: with Damaris, Nek5000 ran at full cluster scale (800
//! cores) with visualization attached and no performance impact; running
//! VisIt synchronously "did not scale that far".

use cluster_sim::experiments::e7_insitu;
use damaris_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = e7_insitu(3, 1.0, 42)
        .into_iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                format!("{:.2} s", r.sync_overhead_s),
                format!("{:.2} s", r.damaris_overhead_s),
                format!("{:.2}x", r.sync_slowdown),
                format!("{:.3}x", r.damaris_slowdown),
            ]
        })
        .collect();
    print_table(
        "E7 — per-step simulation stall from in-situ visualization (Nek5000, Grid'5000)",
        &[
            "cores",
            "sync (VisIt-style)",
            "damaris",
            "sync slowdown",
            "damaris slowdown",
        ],
        &rows,
    );
    println!(
        "paper: synchronous coupling fails to scale to the full 800-core cluster;\n\
         Damaris runs there with no measurable impact on the simulation."
    );
}
