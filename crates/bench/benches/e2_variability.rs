//! E2 (§IV.B): I/O variability — per-rank write-time distributions.
//!
//! Paper anchors: baselines spread over orders of magnitude with hundreds
//! of seconds of unpredictability; with Damaris the sim-side write is the
//! shared-memory copy, ~0.1 s, independent of scale.

use cluster_sim::experiments::{e2_scale_independence, e2_variability};
use damaris_bench::{fmt_s, print_table};

fn main() {
    let rows: Vec<Vec<String>> = e2_variability(9216, 3, 42)
        .into_iter()
        .map(|r| {
            vec![
                r.strategy,
                fmt_s(r.min),
                fmt_s(r.median),
                fmt_s(r.p99),
                fmt_s(r.max),
                format!("{:.1}x", r.spread),
            ]
        })
        .collect();
    print_table(
        "E2 — per-rank write durations at 9216 cores (jitter + background traffic ON)",
        &["strategy", "min", "median", "p99", "max", "max/min"],
        &rows,
    );

    let rows: Vec<Vec<String>> = e2_scale_independence(2, 42)
        .into_iter()
        .map(|(ranks, median)| vec![ranks.to_string(), fmt_s(median)])
        .collect();
    print_table(
        "E2 — Damaris sim-side write cost vs scale (paper: ~0.1 s, scale-independent)",
        &["cores", "median write"],
        &rows,
    );
}
