//! Variable-size (AMR) allocation shoot-out: first-fit mutex vs
//! size-class vs the buddy tier, under mixed-size churn.
//!
//! PR 2's size classes flattened the *fixed*-layout allocation cost, but
//! left every odd size — exactly what AMR refinement and per-step
//! particle counts produce — on the first-fit mutex. This bench measures
//! the per-call cost of `SlabCache::allocate` (the client-side front end
//! every write uses) when **no two requests share a size**, at 1→16
//! concurrent clients, under all three allocators:
//!
//! * `first-fit`: the mutex free list; mixed-size churn fragments it, so
//!   each allocation pays the lock *plus* a growing hole scan;
//! * `size-class`: exact-match queues never match an odd size, so this
//!   degenerates to first-fit — the gap this PR closes;
//! * `buddy`: requests round to a power-of-two order and pop a lock-free
//!   per-order queue (split/merge keeps the orders stocked).
//!
//! Per-call latency is sampled with a monotonic clock and summarized by
//! the median (robust against scheduler preemption on shared machines).
//! Results go to stdout and to `BENCH_amr_alloc.json` at the workspace
//! root, where CI's regression guard tracks the machine-independent
//! ratios across PRs.

use std::thread;
use std::time::Instant;

use damaris_bench::print_table;
use damaris_shm::{SharedSegment, SlabCache};
use damaris_xml::schema::AllocatorKind;
use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Allocations per client before measurement starts (stocks the order
/// queues and magazines; lets first-fit reach its steady fragmentation).
const WARMUP_ALLOCS: usize = 2_000;
/// Measured allocations per client.
const MEASURED_ALLOCS: usize = 10_000;
/// Live blocks each client keeps in flight. AMR ranks stage several
/// variables across a pipelining window of iterations, so dozens of
/// live blocks per client is the realistic shape; they retire in the
/// order the dedicated core's plugins finish with them — effectively
/// random, which is what keeps a first-fit list fragmented into a long
/// hole scan.
const LIVE_WINDOW: usize = 128;
/// Segment capacity: big enough that churn never approaches OOM.
const CAPACITY: usize = 64 << 20;
/// Fixed classes a realistic configuration would also declare; the
/// measured requests never match them (that is the point).
const FIXED_CLASSES: [usize; 2] = [512, 4096];

struct Sample {
    allocator: AllocatorKind,
    clients: usize,
    /// Median ns per `allocate()` call across all clients' samples.
    alloc_ns_p50: f64,
    /// 90th percentile (tail; includes scheduler noise).
    alloc_ns_p90: f64,
    /// Measured allocations served lock-free by the buddy tier.
    buddy_hit_fraction: f64,
}

fn segment(allocator: AllocatorKind) -> SharedSegment {
    match allocator {
        AllocatorKind::FirstFit => SharedSegment::new(CAPACITY).expect("segment"),
        AllocatorKind::SizeClass => {
            SharedSegment::with_classes(CAPACITY, &FIXED_CLASSES).expect("segment")
        }
        AllocatorKind::Buddy => {
            SharedSegment::with_buddy(CAPACITY, &FIXED_CLASSES).expect("segment")
        }
    }
}

/// A rank's current refinement state: a handful of live patch sizes.
/// Patch sizes persist across steps (a patch keeps its extent until a
/// refinement event), so sizes *repeat locally* while still differing
/// across ranks and drifting over time — the workload shape data-reduction
/// and streaming studies report. Every size is odd: never a declared
/// class.
struct AmrPatches {
    palette: [usize; 4],
    step: usize,
}

impl AmrPatches {
    fn new(rng: &mut StdRng) -> Self {
        AmrPatches {
            palette: std::array::from_fn(|_| 72 + (rng.next_u64() % 16320) as usize),
            step: 0,
        }
    }

    /// Next request: one of the rank's current patch sizes; every 64
    /// requests one patch refines or coarsens to a new extent.
    fn next_size(&mut self, rng: &mut StdRng) -> usize {
        self.step += 1;
        if self.step.is_multiple_of(64) {
            let slot = (rng.next_u64() % 4) as usize;
            self.palette[slot] = 72 + (rng.next_u64() % 16320) as usize;
        }
        self.palette[(rng.next_u64() % 4) as usize]
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_case(allocator: AllocatorKind, clients: usize) -> Sample {
    let seg = segment(allocator);
    let before = seg.stats();
    let mut all: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let seg = seg.clone();
                scope.spawn(move || {
                    let cache = SlabCache::new(&seg);
                    let mut rng = StdRng::seed_from_u64(0xA3A5_C0DE ^ ((t as u64) << 32));
                    let mut patches = AmrPatches::new(&mut rng);
                    let mut live = Vec::with_capacity(LIVE_WINDOW);
                    let mut samples = Vec::with_capacity(MEASURED_ALLOCS);
                    for i in 0..WARMUP_ALLOCS + MEASURED_ALLOCS {
                        let size = patches.next_size(&mut rng);
                        let t0 = Instant::now();
                        let block = cache.allocate(size).expect("capacity never exhausted");
                        if i >= WARMUP_ALLOCS {
                            samples.push(t0.elapsed().as_nanos() as f64);
                        }
                        if live.len() == LIVE_WINDOW {
                            // Retire a random staged block (plugin
                            // completion order, not FIFO).
                            let victim = (rng.next_u64() % LIVE_WINDOW as u64) as usize;
                            live.swap_remove(victim);
                        }
                        live.push(block);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let after = seg.stats();
    let allocs = after.allocations - before.allocations;
    let hits = after.buddy_hits - before.buddy_hits;
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Warm-up allocations inflate `allocs`; the fraction is still the
    // honest share of calls that stayed off the mutex.
    let buddy_hit_fraction = if allocs == 0 {
        0.0
    } else {
        hits as f64 / allocs as f64
    };
    Sample {
        allocator,
        clients,
        alloc_ns_p50: percentile(&all, 0.50),
        alloc_ns_p90: percentile(&all, 0.90),
        buddy_hit_fraction,
    }
}

fn main() {
    let mut samples = Vec::new();
    for clients in [1usize, 2, 4, 8, 16] {
        for allocator in [
            AllocatorKind::FirstFit,
            AllocatorKind::SizeClass,
            AllocatorKind::Buddy,
        ] {
            eprintln!("amr_alloc: {} × {clients} clients…", allocator.name());
            samples.push(run_case(allocator, clients));
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.allocator.name().to_string(),
                s.clients.to_string(),
                format!("{:.0}", s.alloc_ns_p50),
                format!("{:.0}", s.alloc_ns_p90),
                format!("{:.2}", s.buddy_hit_fraction),
            ]
        })
        .collect();
    print_table(
        "AMR — mixed-size allocation latency by allocator",
        &[
            "allocator",
            "clients",
            "alloc ns p50",
            "alloc ns p90",
            "buddy-hit frac",
        ],
        &rows,
    );

    let p50 = |a: AllocatorKind, c: usize| {
        samples
            .iter()
            .find(|s| s.allocator == a && s.clients == c)
            .expect("sample exists")
            .alloc_ns_p50
    };
    for clients in [8usize, 16] {
        let (ff, bd) = (
            p50(AllocatorKind::FirstFit, clients),
            p50(AllocatorKind::Buddy, clients),
        );
        println!(
            "at {clients} clients: buddy alloc {:.1}x faster than first-fit ({bd:.0} vs {ff:.0} ns)",
            ff / bd
        );
    }
    // Machine-independent within-run ratios — what CI's guard gates.
    // buddy vs first-fit at 8 clients is the acceptance headline: < 1.0
    // means variable sizes beat the mutex path under concurrency. The
    // scaling ratio guards the flatness claim (lock-free pops must not
    // degrade as clients multiply).
    let vs_firstfit_8_ratio = p50(AllocatorKind::Buddy, 8) / p50(AllocatorKind::FirstFit, 8);
    let scaling_ratio = p50(AllocatorKind::Buddy, 16) / p50(AllocatorKind::Buddy, 1);
    println!(
        "buddy vs first-fit p50 at 8 clients: {vs_firstfit_8_ratio:.3}; \
         buddy scaling 1→16 clients: {scaling_ratio:.2}x"
    );

    let mut json = String::from("{\n  \"benchmark\": \"amr_alloc\",\n  \"measured_allocations\": ");
    json.push_str(&MEASURED_ALLOCS.to_string());
    json.push_str(",\n  \"live_window\": ");
    json.push_str(&LIVE_WINDOW.to_string());
    json.push_str(",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"allocator\": \"{}\", \"clients\": {}, \"alloc_ns_p50\": {:.1}, \"alloc_ns_p90\": {:.1}, \"buddy_hit_fraction\": {:.3}}}{}\n",
            s.allocator.name(),
            s.clients,
            s.alloc_ns_p50,
            s.alloc_ns_p90,
            s.buddy_hit_fraction,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ,{{\"series\": \"derived\", \"p50_buddy_vs_firstfit_8_ratio\": {vs_firstfit_8_ratio:.3}, \"p50_buddy_scaling_1_to_16_ratio\": {scaling_ratio:.3}}}\n"
    ));
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_amr_alloc.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
