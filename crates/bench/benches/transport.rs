//! Transport shoot-out: mutex `MessageQueue` vs sharded SPSC rings.
//!
//! Measures, at 1/4/16/64 producers:
//!
//! * **event-post latency** — mean nanoseconds a producer spends inside
//!   `send`, the §IV.B "one memcpy + one event post" cost that must stay
//!   flat as clients scale;
//! * **aggregate drain throughput** — events/s the consumer side sustains
//!   while all producers post flat out (2 stealing consumers vs 2 queue
//!   drainers).
//!
//! Prints a `paper | measured` style table and records the numbers in
//! `BENCH_transport.json` at the workspace root so the perf trajectory is
//! tracked across PRs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use damaris_bench::print_table;
use damaris_shm::transport::{
    EventChannel, EventConsumer, EventProducer, ShardedChannel, TransportKind,
};
use damaris_shm::MessageQueue;

/// Events each producer posts per measured run.
const EVENTS_PER_PRODUCER: usize = 20_000;
/// Consumers draining during the measurement.
const CONSUMERS: usize = 2;

struct Sample {
    kind: TransportKind,
    producers: usize,
    post_ns: f64,
    drain_meps: f64,
}

/// Run one contended post/drain burst; returns (mean post ns, drain Mev/s).
fn measure<C>(channel: C, producers: usize) -> (f64, f64)
where
    C: EventChannel<u64>,
{
    let barrier = Arc::new(Barrier::new(producers + 1));
    let mut producer_handles = Vec::new();
    for p in 0..producers {
        let producer = channel.producer(p);
        let barrier = barrier.clone();
        producer_handles.push(thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            for i in 0..EVENTS_PER_PRODUCER {
                producer.send((p * EVENTS_PER_PRODUCER + i) as u64).unwrap();
            }
            t0.elapsed().as_nanos() as f64 / EVENTS_PER_PRODUCER as f64
        }));
    }
    let done = Arc::new(AtomicBool::new(false));
    let mut consumer_handles = Vec::new();
    for core in 0..CONSUMERS {
        let mut consumer = channel.consumer(core, CONSUMERS);
        let done = done.clone();
        consumer_handles.push(thread::spawn(move || {
            let mut drained = 0u64;
            loop {
                match consumer.try_recv() {
                    Ok(_) => drained += 1,
                    Err(damaris_shm::TryRecvError::Closed) => break,
                    Err(damaris_shm::TryRecvError::Empty) => {
                        if done.load(Ordering::Acquire) {
                            // Producers finished; drain the tail then stop.
                            while consumer.try_recv().is_ok() {
                                drained += 1;
                            }
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            drained
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    let mean_post_ns = producer_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum::<f64>()
        / producers as f64;
    done.store(true, Ordering::Release);
    let drained: u64 = consumer_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum();
    let wall = t0.elapsed().as_secs_f64();
    let total = (producers * EVENTS_PER_PRODUCER) as u64;
    assert_eq!(drained, total, "no loss, no duplication");
    let meps = total as f64 / wall / 1e6;
    (mean_post_ns, meps)
}

fn run_kind(kind: TransportKind, producers: usize) -> Sample {
    // Warm-up run, then the measured run.
    for measured in [false, true] {
        // Capacity covers the whole burst so the numbers measure the
        // post operation itself (§IV.B's claim), not backpressure sleeps.
        let (post_ns, drain_meps) = match kind {
            TransportKind::Mutex => measure(
                MessageQueue::<u64>::bounded(producers * EVENTS_PER_PRODUCER),
                producers,
            ),
            TransportKind::Sharded => measure(
                ShardedChannel::<u64>::new(producers, EVENTS_PER_PRODUCER),
                producers,
            ),
        };
        if measured {
            return Sample {
                kind,
                producers,
                post_ns,
                drain_meps,
            };
        }
    }
    unreachable!()
}

fn main() {
    let mut samples = Vec::new();
    for producers in [1usize, 4, 16, 64] {
        for kind in [TransportKind::Mutex, TransportKind::Sharded] {
            samples.push(run_kind(kind, producers));
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.kind.name().to_string(),
                s.producers.to_string(),
                format!("{:.0}", s.post_ns),
                format!("{:.2}", s.drain_meps),
            ]
        })
        .collect();
    print_table(
        "M1 — event transport: post latency and drain throughput",
        &["transport", "producers", "post ns/event", "drain Mev/s"],
        &rows,
    );

    for producers in [16usize, 64] {
        let post = |k: TransportKind| {
            samples
                .iter()
                .find(|s| s.kind == k && s.producers == producers)
                .unwrap()
                .post_ns
        };
        let (m, s) = (post(TransportKind::Mutex), post(TransportKind::Sharded));
        println!(
            "at {producers} producers: sharded posts {:.1}x faster than mutex ({s:.0} vs {m:.0} ns)",
            m / s
        );
    }

    // Machine-readable trajectory record at the workspace root.
    let mut json = String::from("{\n  \"benchmark\": \"transport\",\n  \"events_per_producer\": ");
    json.push_str(&EVENTS_PER_PRODUCER.to_string());
    json.push_str(",\n  \"consumers\": ");
    json.push_str(&CONSUMERS.to_string());
    json.push_str(",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"producers\": {}, \"post_ns_per_event\": {:.1}, \"drain_meps\": {:.3}}}{}\n",
            s.kind.name(),
            s.producers,
            s.post_ns,
            s.drain_meps,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
