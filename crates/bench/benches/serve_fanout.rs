//! Subscriber streaming-tier bench: the serving tier must fan completed
//! iterations out to **thousands of concurrent subscribers** while the
//! compute side never notices it exists.
//!
//! Two measurements back the claim:
//!
//! 1. **Fan-out at scale**: one [`StreamServer`] feeding 1000 concurrent
//!    TCP subscribers (drained by a small poller pool — the bench host
//!    has few cores, so per-subscriber threads would measure the
//!    scheduler, not the tier). Publishing is paced so every subscriber
//!    takes every frame: `fanout_delivered_frac` must stay 1.0, and the
//!    delivered bytes over the wall clock give the aggregate
//!    `fanout_throughput`. The publisher side must stay wait-free no
//!    matter how many sockets are attached — `publish_ns_max` is the
//!    worst single publish over the whole run.
//! 2. **Client-visible write p50, serve-on vs serve-off**: the same
//!    two-client thread-world run with and without `<serve>` (one live
//!    subscriber draining), each `write()` individually timed. The
//!    streaming work rides the dedicated core and a detached poll
//!    thread, so the medians must agree — CI gates
//!    `serve_on_write_p50_ratio <= 1.10`.
//!
//! Results go to stdout as tables and to `BENCH_serve.json` at the
//! workspace root for CI's regression guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use damaris_bench::print_table;
use damaris_core::prelude::*;
use damaris_serve::{
    Payload, PublishBlock, ServeOptions, StreamServer, Subscriber, SubscriberEvent,
};

/// Concurrent subscribers in the fan-out case (the tentpole number).
const SUBS: usize = 1000;
/// Poller threads draining those subscribers round-robin.
const POLLERS: usize = 4;
/// Published iterations in the fan-out case.
const FANOUT_ITERS: u64 = 20;
/// DATA frames per published iteration.
const FANOUT_VARS: usize = 2;
/// Payload bytes per DATA frame (8 KiB: small enough that 1000 copies
/// per iteration fit comfortably in socket buffers, big enough that
/// throughput measures bytes, not syscalls).
const FANOUT_BYTES: usize = 8 << 10;

/// Iterations per client before measurement starts (write-path case).
const WARMUP_ITERS: u64 = 10;
/// Measured iterations per client.
const MEASURED_ITERS: u64 = 100;
/// f64 elements per block (32 KiB).
const ELEMS: usize = 4096;
/// Variables written (and individually timed) per iteration.
const VARS: &[&str] = &["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"];
/// Compute cores per node.
const CLIENTS: usize = 2;
/// Full end-to-end runs per case; the reported p50 is the minimum
/// across runs (robust against scheduler interference on shared CI).
const RUN_REPEATS: usize = 2;

struct FanoutSample {
    subscribers: usize,
    iterations: u64,
    throughput: f64,
    publish_ns_max: f64,
    delivered_frac: f64,
}

/// One poller's share of the subscriber pool: drain with `try_next`
/// until every subscriber saw the last ITER-END, tallying delivery.
fn drain_pool(
    subs: &mut [Subscriber],
    last_iter: u64,
    bytes_seen: &AtomicU64,
    ends_seen: &AtomicU64,
    lags_seen: &AtomicU64,
) {
    let mut done = vec![false; subs.len()];
    let mut remaining = subs.len();
    while remaining > 0 {
        let mut idle = true;
        for (sub, done) in subs.iter_mut().zip(done.iter_mut()) {
            if *done {
                continue;
            }
            loop {
                match sub.try_next().expect("stream healthy") {
                    None => break,
                    Some(SubscriberEvent::Data { bytes, .. }) => {
                        idle = false;
                        bytes_seen.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    }
                    Some(SubscriberEvent::IterationEnd { iteration, .. }) => {
                        idle = false;
                        ends_seen.fetch_add(1, Ordering::Relaxed);
                        if iteration == last_iter {
                            *done = true;
                            remaining -= 1;
                            break;
                        }
                    }
                    Some(SubscriberEvent::Lag { .. }) => {
                        lags_seen.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(SubscriberEvent::Bye) => {
                        *done = true;
                        remaining -= 1;
                        break;
                    }
                }
            }
        }
        if idle {
            thread::sleep(Duration::from_micros(50));
        }
    }
}

/// Stand up a bare [`StreamServer`], attach [`SUBS`] subscribers and
/// pace [`FANOUT_ITERS`] publications through all of them.
fn run_fanout() -> FanoutSample {
    let server = StreamServer::bind(ServeOptions {
        listen: "127.0.0.1:0".into(),
        queue_frames: 64,
        simulation: "serve-fanout".into(),
        addr_file: None,
    })
    .expect("fan-out server binds");
    let addr = server.local_addr();

    eprintln!("serve_fanout: connecting {SUBS} subscribers…");
    let mut subs = Vec::with_capacity(SUBS);
    for _ in 0..SUBS {
        let mut s = Subscriber::connect(addr).expect("subscriber connects");
        s.subscribe(&[]).expect("subscribe");
        subs.push(s);
    }

    // The published payloads: one Arc per variable, cloned per iteration
    // — exactly how the plugin shares frames, refcounts instead of copies.
    let payloads: Vec<Arc<Vec<u8>>> = (0..FANOUT_VARS)
        .map(|v| Arc::new(vec![v as u8; FANOUT_BYTES]))
        .collect();

    let bytes_seen = AtomicU64::new(0);
    let ends_seen = AtomicU64::new(0);
    let lags_seen = AtomicU64::new(0);
    let per_pool = SUBS.div_ceil(POLLERS);
    let start = Barrier::new(POLLERS + 1);
    let elapsed = thread::scope(|scope| {
        let mut pools: Vec<&mut [Subscriber]> = subs.chunks_mut(per_pool).collect();
        for pool in pools.drain(..) {
            let (start, bytes_seen, ends_seen, lags_seen) =
                (&start, &bytes_seen, &ends_seen, &lags_seen);
            scope.spawn(move || {
                start.wait();
                drain_pool(pool, FANOUT_ITERS - 1, bytes_seen, ends_seen, lags_seen);
            });
        }
        start.wait();
        let t0 = Instant::now();
        for it in 0..FANOUT_ITERS {
            let blocks = payloads
                .iter()
                .enumerate()
                .map(|(v, p)| PublishBlock {
                    variable: format!("v{v}"),
                    source: 0,
                    payload: Payload::Owned(p.clone()),
                })
                .collect();
            server.publish(it, blocks);
            // Pace: don't publish ahead of the slowest subscriber, so
            // the run measures sustained no-loss fan-out, not the lag
            // policy.
            let target = SUBS as u64 * (it + 1);
            while ends_seen.load(Ordering::Relaxed) < target {
                thread::sleep(Duration::from_micros(50));
            }
        }
        t0.elapsed().as_secs_f64()
    });

    let stats = server.stats();
    assert_eq!(stats.subscribers_connected, SUBS as u64);
    server.shutdown(Duration::from_secs(5));

    let delivered = ends_seen.load(Ordering::Relaxed) as f64;
    assert_eq!(
        lags_seen.load(Ordering::Relaxed),
        0,
        "paced run must not lag"
    );
    FanoutSample {
        subscribers: SUBS,
        iterations: FANOUT_ITERS,
        throughput: bytes_seen.load(Ordering::Relaxed) as f64 / elapsed.max(1e-9),
        publish_ns_max: stats.publish_ns_max as f64,
        delivered_frac: delivered / (SUBS as u64 * FANOUT_ITERS) as f64,
    }
}

struct WriteSample {
    serve: &'static str,
    write_ns_p50: f64,
    write_ns_p90: f64,
}

fn config(serve: bool) -> String {
    let serve = if serve {
        r#"<serve listen="127.0.0.1:0" queue_frames="256"/>"#
    } else {
        ""
    };
    let vars: String = VARS
        .iter()
        .map(|v| format!(r#"<variable name="{v}" layout="grid"/>"#))
        .collect();
    format!(
        r#"<simulation name="serve-path">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="{}"/>
               <queue capacity="{}" kind="sharded"/>
               {serve}
             </architecture>
             <data>
               <layout name="grid" type="f64" dimensions="{ELEMS}"/>
               {vars}
             </data>
           </simulation>"#,
        64 << 20,
        (VARS.len() + 1) * (WARMUP_ITERS + MEASURED_ITERS + 2) as usize
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn field(rank: usize, iteration: u64) -> Vec<f64> {
    (0..ELEMS)
        .map(|i| 300.0 + rank as f64 + iteration as f64 * 0.01 + (i % 64) as f64 * 0.125)
        .collect()
}

/// One full two-client run; returns every measured `write()` latency in
/// nanoseconds, sorted. With `serve` on, one live subscriber drains the
/// stream for the whole run.
fn run_once(serve: bool) -> Vec<f64> {
    let node = DamarisNode::builder()
        .config_str(&config(serve))
        .expect("config")
        .clients(CLIENTS)
        .build()
        .expect("node");
    let drainer = serve.then(|| {
        let addr = node.serve_addr().expect("serve tier bound");
        thread::spawn(move || {
            let mut sub = Subscriber::connect(addr).expect("subscriber connects");
            sub.subscribe(&[]).expect("subscribe");
            let mut frames = 0u64;
            loop {
                match sub.next_event().expect("stream healthy") {
                    SubscriberEvent::Bye => break,
                    SubscriberEvent::Data { .. } => frames += 1,
                    _ => {}
                }
            }
            frames
        })
    });
    // Bound each client's lead over the dedicated core, emulating the
    // compute phase during which blocks are recycled.
    const WINDOW: u64 = 4;
    let start = Arc::new(Barrier::new(CLIENTS));
    let mut all: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                let start = start.clone();
                let node = &node;
                scope.spawn(move || {
                    let mut h = Damaris::threads(client);
                    let rank = h.id();
                    let mut samples = Vec::with_capacity(VARS.len() * MEASURED_ITERS as usize);
                    start.wait();
                    for it in 0..WARMUP_ITERS + MEASURED_ITERS {
                        let data = field(rank, it);
                        for var in VARS {
                            let t0 = Instant::now();
                            h.write(var, it, &data).expect("write");
                            if it >= WARMUP_ITERS {
                                samples.push(t0.elapsed().as_nanos() as f64);
                            }
                        }
                        h.end_iteration(it).expect("end");
                        while node.iterations_completed() + WINDOW <= it {
                            thread::yield_now();
                        }
                    }
                    h.finalize().expect("finalize");
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    if serve {
        let stats = node.serve_stats().expect("serve stats");
        assert_eq!(
            stats.iterations_published,
            WARMUP_ITERS + MEASURED_ITERS,
            "every completed iteration was offered to the stream"
        );
    }
    let report = node.shutdown().expect("shutdown");
    assert_eq!(report.iterations_completed, WARMUP_ITERS + MEASURED_ITERS);
    if let Some(d) = drainer {
        let frames = d.join().expect("drainer thread");
        assert!(frames > 0, "the live subscriber saw data");
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    all
}

fn run_write_case(serve: bool) -> WriteSample {
    let (mut p50, mut p90) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..RUN_REPEATS {
        let samples = run_once(serve);
        p50 = p50.min(percentile(&samples, 0.50));
        p90 = p90.min(percentile(&samples, 0.90));
    }
    WriteSample {
        serve: if serve { "on" } else { "off" },
        write_ns_p50: p50,
        write_ns_p90: p90,
    }
}

fn main() {
    eprintln!("serve_fanout: {SUBS}-subscriber fan-out…");
    let fanout = run_fanout();
    print_table(
        "serve — iteration fan-out to concurrent subscribers",
        &[
            "subscribers",
            "iterations",
            "MB/s",
            "publish ns max",
            "delivered",
        ],
        &[vec![
            fanout.subscribers.to_string(),
            fanout.iterations.to_string(),
            format!("{:.0}", fanout.throughput / 1e6),
            format!("{:.0}", fanout.publish_ns_max),
            format!("{:.3}", fanout.delivered_frac),
        ]],
    );

    eprintln!("serve_fanout: end-to-end write p50, serve off…");
    let off = run_write_case(false);
    eprintln!("serve_fanout: end-to-end write p50, serve on…");
    let on = run_write_case(true);
    print_table(
        "serve — client-visible write() latency, serve on vs off",
        &["serve", "write ns p50", "write ns p90"],
        &[&off, &on]
            .iter()
            .map(|s| {
                vec![
                    s.serve.to_string(),
                    format!("{:.0}", s.write_ns_p50),
                    format!("{:.0}", s.write_ns_p90),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let on_off_ratio = on.write_ns_p50 / off.write_ns_p50.max(1e-9);
    println!(
        "fan-out {:.0} MB/s to {SUBS} subscribers (delivered {:.3}); \
         serve on/off write p50 ratio {on_off_ratio:.3}",
        fanout.throughput / 1e6,
        fanout.delivered_frac
    );

    // Machine-readable trajectory record at the workspace root. The
    // on/off ratio is the zero-overhead claim and must stay <= 1.10;
    // the delivered fraction is the sustained-fan-out claim (1.0 means
    // no subscriber lost a single frame at 1000-way concurrency).
    let mut json = String::from("{\n  \"benchmark\": \"serve_fanout\",\n  \"frame_bytes\": ");
    json.push_str(&FANOUT_BYTES.to_string());
    json.push_str(",\n  \"block_bytes\": ");
    json.push_str(&(ELEMS * 8).to_string());
    json.push_str(",\n  \"samples\": [\n");
    json.push_str(&format!(
        "    {{\"series\": \"fanout\", \"subscribers\": {}, \"iterations\": {}, \"fanout_throughput\": {:.1}, \"publish_ns_max\": {:.1}, \"delivered_frac\": {:.4}}},\n",
        fanout.subscribers, fanout.iterations, fanout.throughput, fanout.publish_ns_max, fanout.delivered_frac
    ));
    for s in [&off, &on] {
        json.push_str(&format!(
            "    {{\"series\": \"write\", \"serve\": \"{}\", \"write_ns_p50\": {:.1}, \"write_ns_p90\": {:.1}}},\n",
            s.serve, s.write_ns_p50, s.write_ns_p90
        ));
    }
    json.push_str(&format!(
        "    {{\"series\": \"derived\", \"serve_on_write_p50_ratio\": {on_off_ratio:.3}, \"fanout_delivered_frac\": {:.4}}}\n",
        fanout.delivered_frac
    ));
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
