//! # damaris-bench
//!
//! The experiment harness: one bench target per table/figure of the
//! paper's evaluation, each printing `paper | measured` rows. Run all of
//! them with `cargo bench`; see `EXPERIMENTS.md` for the recorded results.
//!
//! | target | paper claim |
//! |---|---|
//! | `e1_scalability` | §IV.A: 800 s / 70 % collective I/O, 3.5× speedup |
//! | `e2_variability` | §IV.B: jitter hidden, writes ≈ 0.1 s at any scale |
//! | `e3_throughput` | §IV.C: 0.5 / 1.7 / 10 GB/s |
//! | `e4_idle_time` | §IV.D: dedicated cores 92–99 % idle |
//! | `e5_compression` | §IV.D: 600 % ratio, zero simulation overhead |
//! | `e6_scheduling` | §IV.D: smarter scheduling → 12.7 GB/s |
//! | `e7_insitu` | §V.C.1: sync VisIt stalls, Damaris in-situ free |
//! | `e8_backpressure` | §V.C.1: skip iterations instead of blocking |
//! | `e9_usability` | §V.C.2: >100 LoC (libsim) vs <10 LoC (Damaris) |
//! | `micro` (criterion) | shm / queue / codec / h5lite / kernel latencies |
//!
//! This library provides the shared table renderer plus the experiments
//! that exercise the *real* middleware rather than the cluster model
//! (E5 on real CM1 data, E8 on a live node, E9 counting real source).

use std::sync::Arc;
use std::time::Instant;

use codec::{Codec, Pipeline};
use damaris_core::plugins::FnPlugin;
use damaris_core::prelude::*;
use sim_apps::{Cm1, Cm1Config, ProxyApp};

/// Render an aligned ASCII table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Format seconds compactly.
pub fn fmt_s(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} s")
    } else if v >= 1.0 {
        format!("{v:.1} s")
    } else {
        format!("{:.0} ms", v * 1000.0)
    }
}

/// Result of the real-data compression experiment (E5).
#[derive(Debug, Clone)]
pub struct CompressionResult {
    /// Pipeline spec.
    pub pipeline: String,
    /// Achieved ratio (paper convention: 6.0 = 600 %).
    pub ratio: f64,
    /// Compression throughput (bytes/s of input).
    pub throughput: f64,
}

/// E5, real part: compress genuine CM1-proxy output with several pipelines
/// on this machine. `steps` evolves the field first (later fields are less
/// compressible than the initial state — both are reported).
pub fn e5_real_compression(steps: usize) -> Vec<CompressionResult> {
    let mut sim = Cm1::new(Cm1Config {
        nx: 96,
        ny: 96,
        nz: 32,
        ..Default::default()
    });
    for _ in 0..steps {
        sim.step();
    }
    let bytes: Vec<u8> = sim
        .fields()
        .iter()
        .flat_map(|(_, v)| v.iter().flat_map(|f| f.to_le_bytes()))
        .collect();
    [
        "rle",
        "lzss",
        "xor-delta8,rle",
        "xor-delta8,shuffle8,rle,lzss",
    ]
    .into_iter()
    .map(|spec| {
        let p = Pipeline::from_spec(spec).expect("specs are valid");
        let t0 = Instant::now();
        let packed = p.encode(&bytes);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(p.decode(&packed).expect("roundtrip"), bytes);
        CompressionResult {
            pipeline: spec.to_string(),
            ratio: codec::compression_ratio(bytes.len(), packed.len()),
            throughput: bytes.len() as f64 / dt.max(1e-9),
        }
    })
    .collect()
}

/// Result of the live backpressure experiment (E8).
#[derive(Debug, Clone)]
pub struct BackpressureResult {
    /// Policy label.
    pub policy: &'static str,
    /// Wall seconds for the whole run.
    pub wall_seconds: f64,
    /// Iterations the simulation completed.
    pub iterations: u64,
    /// Client-iterations dropped.
    pub skipped: u64,
    /// Mean sim-visible write call duration.
    pub mean_write_s: f64,
}

/// E8: a live Damaris node with a deliberately slow analysis plugin,
/// producing data faster than the plugin drains it. `block` selects the
/// policy; the paper's choice is drop-iteration (`block = false`).
pub fn e8_live_backpressure(block: bool, iterations: u64) -> BackpressureResult {
    let mode = if block { "block" } else { "drop-iteration" };
    let xml = format!(
        r#"<simulation name="backpressure">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="262144"/>
               <queue capacity="8"/>
               <skip mode="{mode}" high-watermark="0.5"/>
             </architecture>
             <data>
               <layout name="slab" type="f64" dimensions="4096"/>
               <variable name="field" layout="slab"/>
             </data>
           </simulation>"#
    );
    let node = DamarisNode::builder()
        .config_str(&xml)
        .expect("config valid")
        .clients(2)
        .build()
        .expect("node builds");
    // A plugin that takes far longer than the simulation's step time.
    node.register_plugin(Arc::new(FnPlugin::new("slow-analysis", |_ctx| {
        std::thread::sleep(std::time::Duration::from_millis(15));
        Ok(())
    })));
    // The producer loop is generic over the facade: the identical
    // function would overload a process-mode node.
    fn produce<H: SimHandle>(h: &mut H, iterations: u64) -> ClientStats {
        let data = vec![1.5f64; 4096];
        for it in 0..iterations {
            h.write("field", it, &data).expect("write path works");
            h.end_iteration(it).expect("end iteration");
            // The simulation's own step is fast.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        h.finalize().expect("finalize");
        h.stats()
    }
    let t0 = Instant::now();
    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            std::thread::spawn(move || produce(&mut Damaris::threads(client), iterations))
        })
        .collect();
    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client ok"))
        .collect();
    let report = node.shutdown().expect("shutdown");
    let wall = t0.elapsed().as_secs_f64();
    let total_writes: u64 = stats.iter().map(|s| s.writes).sum();
    let total_write_s: f64 = stats.iter().map(|s| s.total_write_seconds).sum();
    BackpressureResult {
        policy: if block { "block" } else { "drop-iteration" },
        wall_seconds: wall,
        iterations: report.iterations_completed,
        skipped: report.skipped_client_iterations,
        mean_write_s: if total_writes == 0 {
            0.0
        } else {
            total_write_s / total_writes as f64
        },
    }
}

/// Count instrumentation lines between `// BEGIN-INSTRUMENTATION(tag)` and
/// `// END-INSTRUMENTATION(tag)` markers in a source file (E9). Blank
/// lines and pure-comment lines are not counted, mirroring how the paper
/// counts "lines of code".
pub fn count_instrumentation_lines(source: &str, tag: &str) -> usize {
    let begin = format!("BEGIN-INSTRUMENTATION({tag})");
    let end = format!("END-INSTRUMENTATION({tag})");
    let mut counting = false;
    let mut count = 0;
    for line in source.lines() {
        if line.contains(&begin) {
            counting = true;
            continue;
        }
        if line.contains(&end) {
            counting = false;
            continue;
        }
        if counting {
            let t = line.trim();
            if !t.is_empty() && !t.starts_with("//") {
                count += 1;
            }
        }
    }
    count
}

/// Locate the workspace-root `examples/` directory from any crate.
pub fn examples_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_compression_reaches_paper_regime_on_early_fields() {
        let results = e5_real_compression(0);
        let best = results.iter().map(|r| r.ratio).fold(0.0f64, f64::max);
        assert!(
            best >= 6.0,
            "initial CM1 fields must compress ≥6:1, best {best:.1}"
        );
    }

    #[test]
    fn backpressure_drop_mode_skips_and_stays_fast() {
        let drop = e8_live_backpressure(false, 40);
        assert!(drop.skipped > 0, "overload must force skips, got {drop:?}");
        assert!(
            drop.mean_write_s < 0.05,
            "writes stay cheap: {}",
            drop.mean_write_s
        );
    }

    #[test]
    fn backpressure_block_mode_loses_nothing_but_stalls() {
        let block = e8_live_backpressure(true, 20);
        assert_eq!(block.skipped, 0);
        assert_eq!(block.iterations, 20);
    }

    #[test]
    fn instrumentation_counter() {
        let src = r#"
            setup();
            // BEGIN-INSTRUMENTATION(damaris)
            client.write("u", it, &u)?; // one line per variable

            // a comment, not counted
            client.end_iteration(it)?;
            // END-INSTRUMENTATION(damaris)
            teardown();
        "#;
        assert_eq!(count_instrumentation_lines(src, "damaris"), 2);
        assert_eq!(count_instrumentation_lines(src, "other"), 0);
    }

    #[test]
    fn table_renderer_smoke() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt_s(0.05), "50 ms");
        assert_eq!(fmt_s(2.5), "2.5 s");
        assert_eq!(fmt_s(800.0), "800 s");
    }
}
