//! Size-class machinery behind the segment allocator's lock-free fast
//! path, plus the per-client slab cache.
//!
//! The paper's §IV.B claim — a simulation-side write is *one memcpy into
//! shared memory* — dies the moment every allocation serializes on a
//! global free-list mutex. The structure of HPC output makes a cheap fix
//! possible: variables have fixed layouts, so every iteration reallocates
//! the *same* handful of block sizes. Those sizes become **size classes**:
//!
//! * each class owns a bounded lock-free MPMC queue of free offsets
//!   (`OffsetQueue`); a steady-state allocation is one CAS pop, a
//!   steady-state free (from the dedicated core's garbage collection) is
//!   one CAS push — no lock on either side;
//! * each client can additionally hold a tiny [`SlabCache`] of reserved
//!   offsets, refilled from the class queues, so repeated writes of the
//!   same variable don't even touch the shared queue head;
//! * any size that is not an exact class match — and any class miss —
//!   falls back to the segment's first-fit, coalescing free list, which
//!   remains the ground truth: under memory pressure the class queues are
//!   drained back into it so holes can coalesce before the allocator
//!   reports out-of-memory.

use damaris_sync::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::cell::UnsafeCell;

use crate::spsc::CachePadded;

/// A bounded lock-free MPMC queue of segment offsets (Vyukov-style array
/// queue: each slot carries a sequence number that encodes whether it is
/// ready to be pushed into or popped from).
///
/// Both ends are multi-access: any client may pop (allocate) while any
/// dedicated core or plugin thread pushes (frees a dropped `BlockRef`).
pub(crate) struct OffsetQueue {
    slots: Box<[QueueSlot]>,
    mask: usize,
    /// Next pop position.
    head: CachePadded<AtomicUsize>,
    /// Next push position.
    tail: CachePadded<AtomicUsize>,
}

struct QueueSlot {
    seq: AtomicUsize,
    value: UnsafeCell<usize>,
}

// SAFETY: a value is written by exactly one pusher (the slot's sequence
// number admits one writer per lap) and read by exactly one popper; the
// Release store on `seq` publishes the value to the Acquire load.
unsafe impl Send for OffsetQueue {}
unsafe impl Sync for OffsetQueue {}

impl OffsetQueue {
    /// Queue holding at least `capacity` offsets (rounded up to a power of
    /// two, minimum 2).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| QueueSlot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        OffsetQueue {
            slots,
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Push an offset; hands it back if the queue is full.
    ///
    /// Orderings model-checked by `vyukov_pop_vs_pop_claim_arbitration`
    /// and `vyukov_relaxed_seq_publication_is_caught`
    /// (crates/check/tests/models.rs): the per-slot `seq`
    /// Acquire/Release pair carries the value publication, so the
    /// head/tail claim CASes can stay fully Relaxed.
    pub(crate) fn push(&self, value: usize) -> Result<(), usize> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS grants exclusive
                            // write access to this slot for this lap.
                            unsafe { *slot.value.get() = value };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return Err(value), // full lap behind
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Pop an offset, if any.
    pub(crate) fn pop(&self) -> Option<usize> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS grants exclusive
                            // read access to this slot for this lap.
                            let value = unsafe { *slot.value.get() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }
}

/// Hard cap on cached offsets per class, so parked free blocks cannot
/// strand a meaningful fraction of a large segment.
const MAX_CLASS_QUEUE: usize = 1024;

/// Smallest buddy order: `2^6 = 64` bytes, one [`crate::segment::BLOCK_ALIGN`]
/// slot — the allocator's granularity, so no order can be finer.
pub(crate) const MIN_BUDDY_ORDER: u32 = 6;

/// Cap on cached offsets per buddy order (same rationale as
/// [`MAX_CLASS_QUEUE`]).
const MAX_ORDER_QUEUE: usize = 1024;

/// Free-state tag stored in [`BuddyTier::state`] for a free block of
/// order-index `oi` (0 = not a free buddy block). A byte is plenty: the
/// largest possible order count is `64 - MIN_BUDDY_ORDER`, so tags top
/// out at 59 — and the byte-wide table keeps the always-resident state
/// at 1/64th of the segment instead of 1/8th.
fn free_tag(oi: usize) -> u8 {
    (oi + 1) as u8
}

/// The variable-size tier under the exact size classes: a binary **buddy
/// allocator** whose per-order free lists are the same lock-free
/// [`OffsetQueue`]s the classes use.
///
/// AMR-style workloads allocate a different block size every iteration;
/// none of those sizes matches a declared class, so before this tier they
/// all serialized on the first-fit mutex. Here an odd request rounds up
/// to the nearest power-of-two *order*; a steady-state allocation is one
/// validated CAS pop from that order's queue, a free is a merge attempt
/// plus one CAS push — no lock on either side.
///
/// ## How split/merge stays lock-free
///
/// A Vyukov queue cannot remove an arbitrary element, which classic
/// eager buddy merging needs ("take my buddy off its free list"). The
/// tier instead keeps an authoritative per-slot **state word** next to
/// the queues: a block is free iff the state at its start offset holds
/// its order's tag, and *claiming* a block (by an allocator popping it,
/// or by its buddy merging with it) is one CAS of that word back to 0.
/// Queue entries are merely hints; a pop whose CAS fails discards the
/// stale entry and tries the next. Exactly one claimant can win each
/// published free, so blocks are never double-allocated and never merged
/// while live.
///
/// Offsets are always aligned to their block size (the segment carves
/// fresh chunks size-aligned and splits/merges preserve alignment), so a
/// block's buddy is at `offset ^ size` — the classic XOR trick over a
/// tree rooted at segment offset 0.
pub(crate) struct BuddyTier {
    /// `queues[oi]` holds free offsets of size `2^(MIN_BUDDY_ORDER + oi)`.
    queues: Box<[OffsetQueue]>,
    /// One state byte per `BLOCK_ALIGN` slot; the byte at a free buddy
    /// block's starting slot holds `free_tag(order_index)`.
    state: Box<[AtomicU8]>,
    /// Segment capacity in bytes (merge bounds check).
    capacity: usize,
    pub(crate) hits: AtomicU64,
    pub(crate) splits: AtomicU64,
    pub(crate) merges: AtomicU64,
    pub(crate) tq_hits: AtomicU64,
}

impl BuddyTier {
    /// Build the tier for a segment of `capacity` bytes (already
    /// `BLOCK_ALIGN`-rounded). Orders run from 64 bytes up to the largest
    /// power of two that fits the capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        let max_order = capacity.ilog2().max(MIN_BUDDY_ORDER);
        let orders = (max_order - MIN_BUDDY_ORDER + 1) as usize;
        let queues = (0..orders)
            .map(|oi| {
                let size = 1usize << (MIN_BUDDY_ORDER as usize + oi);
                OffsetQueue::with_capacity((capacity / size).clamp(2, MAX_ORDER_QUEUE))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let state = (0..capacity >> MIN_BUDDY_ORDER)
            .map(|_| AtomicU8::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BuddyTier {
            queues,
            state,
            capacity,
            hits: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            tq_hits: AtomicU64::new(0),
        }
    }

    /// Disabled tier (first-fit or pure size-class segments).
    pub(crate) fn none() -> Self {
        BuddyTier {
            queues: Box::new([]),
            state: Box::new([]),
            capacity: 0,
            hits: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            tq_hits: AtomicU64::new(0),
        }
    }

    /// Whether the tier is configured.
    pub(crate) fn enabled(&self) -> bool {
        !self.queues.is_empty()
    }

    /// Number of configured orders.
    pub(crate) fn order_count(&self) -> usize {
        self.queues.len()
    }

    /// Byte size served by order-index `oi`.
    pub(crate) fn size_of(&self, oi: usize) -> usize {
        1usize << (MIN_BUDDY_ORDER as usize + oi)
    }

    /// The order-index whose blocks serve an (align-rounded, non-zero)
    /// request of `alloc_len` bytes, or `None` when the tier is disabled
    /// or the power-of-two rounding overflows/exceeds the largest order —
    /// those requests stay on the first-fit path, which reports
    /// `RequestTooLarge`/`OutOfMemory` as appropriate.
    pub(crate) fn order_index(&self, alloc_len: usize) -> Option<usize> {
        if !self.enabled() {
            return None;
        }
        // checked: a near-usize::MAX request must surface as a miss (and
        // then RequestTooLarge upstream), not overflow to 0 or panic.
        let size = alloc_len
            .checked_next_power_of_two()?
            .max(1 << MIN_BUDDY_ORDER);
        let oi = (size.ilog2() - MIN_BUDDY_ORDER) as usize;
        (oi < self.queues.len()).then_some(oi)
    }

    /// Whether `offset` can be a buddy block of `len` bytes (power-of-two
    /// length within the configured orders, offset aligned to it) — the
    /// release-path guard routing frees to this tier.
    pub(crate) fn owns(&self, offset: usize, len: usize) -> bool {
        self.enabled()
            && len.is_power_of_two()
            && len >= (1 << MIN_BUDDY_ORDER)
            && ((len.ilog2() - MIN_BUDDY_ORDER) as usize) < self.queues.len()
            && offset.is_multiple_of(len)
    }

    /// Three-quarter fit: the byte length actually consumed when an
    /// order-`oi` parent serves `alloc_len` as a `3·2^(k-2)`-byte block
    /// (`2^k` = parent size), or `None` when the request needs more than
    /// three quarters of the parent or the quarter would drop below the
    /// minimum order. The pure power-of-two family wastes up to ~100 %
    /// of the payload (a `2^k + 64`-byte request burns nearly `2^k` of
    /// padding); admitting the `2^(k-1) + 2^(k-2)` sizes in between caps
    /// internal fragmentation at ~33 %.
    pub(crate) fn tq_len(&self, oi: usize, alloc_len: usize) -> Option<usize> {
        let quarter = self.size_of(oi) / 4;
        (quarter >= (1 << MIN_BUDDY_ORDER) && alloc_len <= 3 * quarter).then_some(3 * quarter)
    }

    /// Allocation-side half of the three-quarter family: publish the top
    /// quarter of the order-`oi` parent at `offset` as free (the caller
    /// keeps the lowest `3·parent/4` bytes). The quarter's buddy is
    /// inside the live block, so it cannot merge away while the block
    /// lives.
    pub(crate) fn trim_tq(&self, offset: usize, oi: usize, spill: &mut Vec<(usize, usize)>) {
        let quarter = self.size_of(oi) / 4;
        self.free_into(offset + 3 * quarter, oi - 2, spill);
        self.tq_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether `(offset, len)` has the shape of a live three-quarter
    /// block (`len = 3·2^(k-2)` at a parent-aligned offset within the
    /// configured orders) — the release-path guard routing such frees to
    /// [`BuddyTier::free_tq_into`].
    pub(crate) fn owns_tq(&self, offset: usize, len: usize) -> bool {
        if !self.enabled() || len == 0 || !len.is_multiple_of(3) {
            return false;
        }
        let quarter = len / 3;
        quarter.is_power_of_two()
            && quarter >= (1 << MIN_BUDDY_ORDER)
            && ((quarter.ilog2() - MIN_BUDDY_ORDER) as usize + 2) < self.queues.len()
            && offset.is_multiple_of(4 * quarter)
    }

    /// Free a three-quarter block: the half first (it cannot merge while
    /// the quarter beside it is still being freed), then the quarter,
    /// which eagerly re-merges up through the parent when the trimmed
    /// sibling is still free — restoring the full power-of-two block.
    pub(crate) fn free_tq_into(&self, offset: usize, len: usize, spill: &mut Vec<(usize, usize)>) {
        let quarter = len / 3;
        let qoi = (quarter.ilog2() - MIN_BUDDY_ORDER) as usize;
        self.free_into(offset, qoi + 1, spill);
        self.free_into(offset + 2 * quarter, qoi, spill);
    }

    /// Validated pop: discard entries whose block was since claimed by a
    /// merge (the queue is a hint, the state word is the truth).
    ///
    /// The claim CAS races a freeing buddy's merge CAS and a spilling
    /// freer's withdraw CAS on the same state byte; exactly-one-claimant
    /// is model-checked by `buddy_state_tag_claim_race` and
    /// `buddy_publish_withdraw_race` (crates/check/tests/models.rs).
    fn pop_order(&self, oi: usize) -> Option<usize> {
        loop {
            let offset = self.queues[oi].pop()?;
            if self.state[offset >> MIN_BUDDY_ORDER]
                .compare_exchange(free_tag(oi), 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(offset);
            }
        }
    }

    /// Pop one free block of exactly order `oi` — no splitting (the
    /// magazine warm path must not cascade splits for speculation).
    pub(crate) fn pop_exact(&self, oi: usize) -> Option<usize> {
        self.pop_order(oi)
    }

    /// Allocate one order-`oi` block from the free queues: exact order
    /// first, then split a larger free block down. `None` = every order
    /// missed (caller carves from the segment's first-fit list).
    ///
    /// Split siblings whose order queue is full land in `spill` (see
    /// [`BuddyTier::free_into`]); the caller **must** return those
    /// ranges to the segment's coalescing free list or they leak.
    pub(crate) fn alloc(&self, oi: usize, spill: &mut Vec<(usize, usize)>) -> Option<usize> {
        if let Some(offset) = self.pop_order(oi) {
            return Some(offset);
        }
        for higher in oi + 1..self.queues.len() {
            let Some(offset) = self.pop_order(higher) else {
                continue;
            };
            // Split down: keep the lowest 2^oi bytes, publish the upper
            // halves (sizes 2^oi, 2^(oi+1), …, 2^(higher-1)) as free.
            for m in oi..higher {
                self.free_into(offset + self.size_of(m), m, spill);
            }
            self.splits
                .fetch_add((higher - oi) as u64, Ordering::Relaxed);
            return Some(offset);
        }
        None
    }

    /// Free one order-`oi` block, eagerly merging with its buddy while
    /// the buddy is also free. When the target order queue is full
    /// (rare), the (possibly merged) range is pushed onto `spill` — the
    /// caller owns it and must hand it to the segment's coalescing free
    /// list; dropping it would leak the range out of every tier.
    pub(crate) fn free_into(
        &self,
        mut offset: usize,
        mut oi: usize,
        spill: &mut Vec<(usize, usize)>,
    ) {
        loop {
            let size = self.size_of(oi);
            if oi + 1 < self.queues.len() {
                let buddy = offset ^ size;
                if buddy + size <= self.capacity
                    && self.state[buddy >> MIN_BUDDY_ORDER]
                        .compare_exchange(free_tag(oi), 0, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    // Claimed the buddy (its queue entry turns stale);
                    // retry one order up with the combined block.
                    self.merges.fetch_add(1, Ordering::Relaxed);
                    offset = offset.min(buddy);
                    oi += 1;
                    continue;
                }
            }
            // Publish free *before* enqueueing so a pop can validate
            // (Release pairs with the claimant's AcqRel CAS; see
            // `buddy_state_tag_claim_race` in crates/check/tests/models.rs).
            self.state[offset >> MIN_BUDDY_ORDER].store(free_tag(oi), Ordering::Release);
            if self.queues[oi].push(offset).is_ok() {
                return;
            }
            // Queue full: withdraw the publication and spill the range to
            // the caller — unless a concurrent freer of the buddy already
            // claimed it for a merge (then it's theirs).
            if self.state[offset >> MIN_BUDDY_ORDER]
                .compare_exchange(free_tag(oi), 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                spill.push((offset, size));
            }
            return;
        }
    }

    /// Drain every free buddy block: `(offset, len)` pairs destined for
    /// the coalescing free list (pressure path and diagnostics — the
    /// buddy analogue of [`SizeClasses::drain`]).
    pub(crate) fn drain(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for oi in 0..self.queues.len() {
            while let Some(offset) = self.pop_order(oi) {
                out.push((offset, self.size_of(oi)));
            }
        }
        out
    }
}

/// The segment's segregated free lists: one [`OffsetQueue`] per declared
/// block size.
pub(crate) struct SizeClasses {
    /// Class sizes in bytes (alloc-rounded), sorted ascending, unique.
    sizes: Box<[usize]>,
    queues: Box<[OffsetQueue]>,
}

impl SizeClasses {
    /// Build classes for the given byte sizes (already rounded to the
    /// allocation granularity). Zero, oversized and duplicate entries are
    /// dropped.
    pub(crate) fn new(capacity: usize, sizes: &[usize]) -> Self {
        let mut sizes: Vec<usize> = sizes
            .iter()
            .copied()
            .filter(|&s| s > 0 && s <= capacity)
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        let queues = sizes
            .iter()
            .map(|&s| OffsetQueue::with_capacity((capacity / s).clamp(2, MAX_CLASS_QUEUE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SizeClasses {
            sizes: sizes.into_boxed_slice(),
            queues,
        }
    }

    /// No classes configured (plain first-fit segment).
    pub(crate) fn none() -> Self {
        SizeClasses {
            sizes: Box::new([]),
            queues: Box::new([]),
        }
    }

    /// Number of configured classes.
    pub(crate) fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Index of the class serving exactly `alloc_len`, if any.
    pub(crate) fn index_of(&self, alloc_len: usize) -> Option<usize> {
        self.sizes.binary_search(&alloc_len).ok()
    }

    /// Byte size served by class `ci`.
    pub(crate) fn size(&self, ci: usize) -> usize {
        self.sizes[ci]
    }

    /// Pop a free offset from class `ci`.
    pub(crate) fn pop(&self, ci: usize) -> Option<usize> {
        self.queues[ci].pop()
    }

    /// Push a free offset into class `ci`; false when the queue is full
    /// (caller must return the range to the coalescing list).
    pub(crate) fn push(&self, ci: usize, offset: usize) -> bool {
        self.queues[ci].push(offset).is_ok()
    }

    /// Drain every parked offset: `(offset, len)` pairs destined for the
    /// coalescing free list. Called under the free-list lock when a
    /// first-fit attempt fails, so fragmented-but-adjacent holes can merge
    /// before the allocator gives up.
    pub(crate) fn drain(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ci, q) in self.queues.iter().enumerate() {
            while let Some(off) = q.pop() {
                out.push((off, self.sizes[ci]));
            }
        }
        out
    }
}

/// Cached offsets per tier (size class or buddy order) held by one
/// [`SlabCache`].
pub(crate) const SLAB_SLOTS_PER_CLASS: usize = 2;

/// The slot array of one [`SlabCache`], shared (via `Weak`) with the
/// owning segment so its pressure path can raid parked reservations
/// before reporting out-of-memory. Tiers are indexed classes-first, then
/// buddy orders: `slots[ti * SLAB_SLOTS_PER_CLASS + j]` holds
/// `offset + 1` (0 = empty); every access is an atomic swap/CAS, so the
/// owner handing blocks out and the segment raiding race safely.
pub(crate) struct CacheSlots {
    slots: Box<[AtomicUsize]>,
}

impl CacheSlots {
    fn new(tiers: usize) -> Self {
        CacheSlots {
            slots: (0..tiers * SLAB_SLOTS_PER_CLASS)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    fn tier_slots(&self, ti: usize) -> &[AtomicUsize] {
        &self.slots[ti * SLAB_SLOTS_PER_CLASS..(ti + 1) * SLAB_SLOTS_PER_CLASS]
    }

    /// Take every parked offset, yielding `(tier_index, offset)` pairs
    /// (tier < class count = class, else buddy order) — the segment's
    /// raid-under-pressure hook.
    pub(crate) fn drain(&self, out: &mut Vec<(usize, usize)>) {
        for (idx, slot) in self.slots.iter().enumerate() {
            let v = slot.swap(0, Ordering::Acquire);
            if v != 0 {
                out.push((idx / SLAB_SLOTS_PER_CLASS, v - 1));
            }
        }
    }
}

/// A per-client magazine of reserved blocks, one tiny slot array per size
/// class of the owning segment.
///
/// The cache sits in front of the segment's class queues: an allocation
/// first swaps a cached offset out of a local slot (one uncontended
/// atomic swap — no shared queue head, no lock), then falls back to the
/// shared class queue, then to the segment's mutex free list. On a class
/// miss the cache opportunistically pulls one extra offset to warm the
/// next call.
///
/// Offsets parked here are accounted as *used* segment bytes (they are
/// unavailable to other clients), so occupancy-based backpressure stays
/// honest; the segment raids all registered caches before declaring
/// out-of-memory, and dropping the cache returns them to the shared pool.
pub struct SlabCache {
    seg: crate::SharedSegment,
    slots: std::sync::Arc<CacheSlots>,
}

impl SlabCache {
    /// Build a cache fronting `segment`'s size classes and buddy orders.
    /// A segment with neither yields an empty cache that simply forwards
    /// to the segment.
    pub fn new(segment: &crate::SharedSegment) -> Self {
        let slots = std::sync::Arc::new(CacheSlots::new(
            segment.class_count() + segment.buddy_order_count(),
        ));
        segment.register_cache(std::sync::Arc::downgrade(&slots));
        SlabCache {
            seg: segment.clone(),
            slots,
        }
    }

    /// The segment this cache allocates from.
    pub fn segment(&self) -> &crate::SharedSegment {
        &self.seg
    }

    /// Bytes a full [`SlabCache::prewarm`] would park in this cache
    /// (every slot of every class).
    pub fn prewarm_bytes(&self) -> usize {
        (0..self.seg.class_count())
            .map(|ci| SLAB_SLOTS_PER_CLASS * self.seg.class_size(ci))
            .sum()
    }

    fn class_slots(&self, ci: usize) -> &[AtomicUsize] {
        self.slots.tier_slots(ci)
    }

    fn stash(&self, ti: usize, offset: usize) -> bool {
        for slot in self.slots.tier_slots(ti) {
            if slot
                .compare_exchange(0, offset + 1, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    fn take_cached(&self, len: usize, alloc_len: usize) -> Option<crate::Block> {
        let ci = self.seg.class_index(alloc_len)?;
        for slot in self.class_slots(ci) {
            let v = slot.swap(0, Ordering::Acquire);
            if v != 0 {
                return Some(self.seg.adopt_reserved(ci, v - 1, len));
            }
        }
        let off = self.seg.class_pop_reserved(ci)?;
        // Warm the cache for the next call of this (common) size.
        if let Some(extra) = self.seg.class_pop_reserved(ci) {
            if !self.stash(ci, extra) {
                self.seg.return_reserved(ci, extra);
            }
        }
        Some(self.seg.adopt_reserved(ci, off, len))
    }

    /// The per-order magazine in front of the buddy tier: same slot-swap
    /// fast path [`SlabCache::take_cached`] gives the size classes, so an
    /// AMR client reallocating the same odd size twice in a row does not
    /// even touch the shared order queue.
    fn take_cached_buddy(&self, len: usize, alloc_len: usize) -> Option<crate::Block> {
        let oi = self.seg.buddy_order_index(alloc_len)?;
        let ti = self.seg.class_count() + oi;
        for slot in self.slots.tier_slots(ti) {
            let v = slot.swap(0, Ordering::Acquire);
            if v != 0 {
                return Some(self.seg.adopt_buddy_reserved(oi, v - 1, len, alloc_len));
            }
        }
        let off = self.seg.buddy_alloc_reserved(oi)?;
        // Warm the magazine from the exact order only (no speculative
        // splitting of larger free blocks for a block nobody asked for).
        if let Some(extra) = self.seg.buddy_pop_exact_reserved(oi) {
            if !self.stash(ti, extra) {
                self.seg.return_buddy_reserved(oi, extra);
            }
        }
        Some(self.seg.adopt_buddy_reserved(oi, off, len, alloc_len))
    }

    /// Allocate `len` bytes: local slot → shared class/order queue →
    /// segment free list (same failure modes as
    /// [`crate::SharedSegment::allocate`]).
    pub fn allocate(&self, len: usize) -> Result<crate::Block, crate::ShmError> {
        if let Some(alloc_len) = crate::segment::class_len(len) {
            if let Some(block) = self.take_cached(len, alloc_len) {
                return Ok(block);
            }
            if let Some(block) = self.take_cached_buddy(len, alloc_len) {
                return Ok(block);
            }
        }
        self.seg.allocate(len)
    }

    /// Blocking variant of [`SlabCache::allocate`].
    pub fn allocate_blocking(
        &self,
        len: usize,
        timeout: Option<std::time::Duration>,
    ) -> Result<crate::Block, crate::ShmError> {
        if let Some(alloc_len) = crate::segment::class_len(len) {
            if let Some(block) = self.take_cached(len, alloc_len) {
                return Ok(block);
            }
            if let Some(block) = self.take_cached_buddy(len, alloc_len) {
                return Ok(block);
            }
        }
        self.seg.allocate_blocking(len, timeout)
    }
}

impl SlabCache {
    /// Seed every empty cache slot (`SLAB_SLOTS_PER_CLASS` per size
    /// class) with a reserved block, pulled from the shared class queues
    /// when they already hold free offsets and carved from the first-fit
    /// list otherwise.
    ///
    /// Called at node-build time so a client's *first* allocations of
    /// every declared layout (iteration 0) are already slot swaps —
    /// without this, the cache warms lazily and iteration 0 serializes
    /// every client on the first-fit mutex. Best-effort: classes the
    /// segment cannot spare bytes for (see the half-capacity guard on the
    /// carve path) simply stay cold.
    ///
    /// Reservations count as *used* segment bytes, so callers sizing for
    /// occupancy-driven backpressure should check
    /// [`SlabCache::prewarm_bytes`] against their headroom first (as
    /// `NodeBuilder` does) — prewarming a segment that barely fits its
    /// working set would start it near the skip watermark.
    pub fn prewarm(&self) {
        for ci in 0..self.seg.class_count() {
            for slot in self.class_slots(ci) {
                if slot.load(Ordering::Relaxed) != 0 {
                    continue;
                }
                let Some(offset) = self
                    .seg
                    .class_pop_reserved(ci)
                    .or_else(|| self.seg.carve_reserved(ci))
                else {
                    break;
                };
                if slot
                    .compare_exchange(0, offset + 1, Ordering::Release, Ordering::Relaxed)
                    .is_err()
                {
                    // Lost a race against a concurrent stash; hand the
                    // reservation back rather than leaking it.
                    self.seg.return_reserved(ci, offset);
                }
            }
        }
    }

    /// Return every cached reservation to the shared pool (e.g. at node
    /// shutdown, once no further writes can arrive). The cache remains
    /// usable and will re-warm on the next allocation.
    pub fn flush(&self) {
        let classes = self.seg.class_count();
        for ci in 0..classes {
            for slot in self.class_slots(ci) {
                let v = slot.swap(0, Ordering::Acquire);
                if v != 0 {
                    self.seg.return_reserved(ci, v - 1);
                }
            }
        }
        for oi in 0..self.seg.buddy_order_count() {
            for slot in self.slots.tier_slots(classes + oi) {
                let v = slot.swap(0, Ordering::Acquire);
                if v != 0 {
                    self.seg.return_buddy_reserved(oi, v - 1);
                }
            }
        }
    }
}

impl Drop for SlabCache {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for SlabCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self
            .slots
            .slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != 0)
            .count();
        f.debug_struct("SlabCache")
            .field("classes", &self.seg.class_count())
            .field("cached", &cached)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_queue_fifo_and_capacity() {
        let q = OffsetQueue::with_capacity(4);
        for i in 0..4 {
            q.push(i * 64).unwrap();
        }
        assert_eq!(q.push(999), Err(999), "full queue hands the value back");
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i * 64));
        }
        assert_eq!(q.pop(), None);
        // Wrap around a few laps.
        for lap in 0..10 {
            q.push(lap).unwrap();
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    // 4 threads × 5k ops: minutes of interpreter time under Miri, and the
    // interleaving coverage comes from the model checker + TSan instead.
    #[cfg_attr(miri, ignore)]
    fn offset_queue_concurrent_no_loss() {
        let q = std::sync::Arc::new(OffsetQueue::with_capacity(64));
        let n = 4;
        let per = 5_000usize;
        let mut handles = Vec::new();
        for t in 0..n {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let mut v = t * per + i + 1;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let stop = std::sync::Arc::new(damaris_sync::AtomicBool::new(false));
        let mut sums = Vec::new();
        for _ in 0..2 {
            let q = q.clone();
            let stop = stop.clone();
            sums.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    match q.pop() {
                        Some(v) => sum += v as u64,
                        None => {
                            if stop.load(Ordering::Acquire) && q.pop().is_none() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let got: u64 = sums.into_iter().map(|h| h.join().unwrap()).sum();
        let total = n * per;
        assert_eq!(got, (total * (total + 1) / 2) as u64);
    }

    #[test]
    fn prewarm_makes_first_allocation_a_class_hit() {
        let seg = crate::SharedSegment::with_classes(1 << 14, &[256, 512]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        cache.prewarm();
        assert_eq!(seg.stats().class_hits, 0, "prewarm reserves, not allocates");
        assert_eq!(
            seg.used_bytes(),
            SLAB_SLOTS_PER_CLASS * (256 + 512),
            "reservations counted as used"
        );
        // The very first allocations of each class must be cache hits —
        // no trip through the first-fit mutex, even for two blocks of the
        // same class (e.g. two variables sharing a layout).
        let a = cache.allocate(256).unwrap();
        let b = cache.allocate(512).unwrap();
        let c = cache.allocate(512).unwrap();
        assert_eq!(seg.stats().class_hits, 3, "iteration 0 hits the classes");
        drop(a);
        drop(b);
        drop(c);
        // Idempotent: occupied slots are left alone.
        cache.prewarm();
        cache.prewarm();
        drop(cache);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn prewarm_respects_half_capacity_guard() {
        // A segment too small to park a reservation per class stays cold
        // instead of committing most of its bytes to idle caches.
        let seg = crate::SharedSegment::with_classes(512, &[512]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        cache.prewarm();
        assert_eq!(seg.used_bytes(), 0, "512 of 512 would exceed half capacity");
        // Allocation still works through the normal tiers.
        let b = cache.allocate(512).unwrap();
        drop(b);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn size_classes_exact_match_only() {
        let classes = SizeClasses::new(1 << 16, &[512, 64, 512, 0, 1 << 20]);
        assert_eq!(classes.len(), 2, "dedup + drop zero/oversized");
        assert_eq!(classes.index_of(64), Some(0));
        assert_eq!(classes.index_of(512), Some(1));
        assert_eq!(classes.index_of(128), None, "no rounding between classes");
        assert!(classes.push(0, 0));
        assert_eq!(classes.pop(0), Some(0));
        assert_eq!(classes.pop(0), None);
    }

    #[test]
    fn size_classes_drain_empties_queues() {
        let classes = SizeClasses::new(1 << 16, &[64, 128]);
        assert!(classes.push(0, 0));
        assert!(classes.push(0, 64));
        assert!(classes.push(1, 1024));
        let mut drained = classes.drain();
        drained.sort_unstable();
        assert_eq!(drained, vec![(0, 64), (64, 64), (1024, 128)]);
        assert!(classes.drain().is_empty());
    }
}
