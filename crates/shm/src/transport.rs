//! The event-transport abstraction: how client events reach dedicated
//! cores.
//!
//! Two implementations of [`EventChannel`]:
//!
//! * [`MessageQueue`] — the original bounded mutex+condvar MPMC queue.
//!   Simple, strictly FIFO across *all* clients, but every post serializes
//!   on one lock, so event-post cost grows with core count (§IV.B's
//!   "independent of scale" claim degrades).
//! * [`ShardedChannel`] — one cache-line-padded lock-free SPSC ring per
//!   client plus consumer-side work stealing: each dedicated core owns a
//!   disjoint shard set (`shard % n_cores == core`), drains it first, and
//!   steals from lagging shards when its own set runs dry. A post touches
//!   only the client's own ring: one slot write, one release store.
//!
//! Both preserve the semantics the middleware relies on: per-client FIFO,
//! no loss, no duplication, explicit [`EventChannel::close`] with
//! drain-then-error on the consumer side, and blocking/timed/non-blocking
//! variants on both ends. The mutex queue additionally guarantees global
//! FIFO, which the server layer deliberately does not require (it already
//! tolerates cross-client reordering via expected-block accounting).
//!
//! [`AnyTransport`] packages the two behind one concrete type so callers
//! can pick at runtime from the XML `<queue kind="…">` attribute.

use std::sync::Arc;
use std::time::{Duration, Instant};

use damaris_sync::{AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};

use crate::error::{RecvError, SendError, TryRecvError, TrySendError};
use crate::queue::MessageQueue;
use crate::spsc::{CachePadded, SpscRing};

/// A transport carrying events from per-client producers to one or more
/// dedicated-core consumers.
pub trait EventChannel<T: Send>: Clone + Send + Sync + 'static {
    /// Client-side handle; cheap to clone, owned per client.
    type Producer: EventProducer<T>;
    /// Dedicated-core-side handle.
    type Consumer: EventConsumer<T>;

    /// Handle for client `client` (its rank within the node).
    fn producer(&self, client: usize) -> Self::Producer;

    /// Handle for dedicated core `core` of `n_cores` total. The pair
    /// partitions shard ownership; every consumer can still reach all
    /// events (by stealing), so any single consumer fully drains the
    /// channel.
    fn consumer(&self, core: usize, n_cores: usize) -> Self::Consumer;

    /// Close the channel: subsequent sends fail, consumers drain what
    /// remains and then see `Closed`/`RecvError`.
    fn close(&self);

    /// Whether [`close`](EventChannel::close) has been called.
    fn is_closed(&self) -> bool;

    /// Events currently queued across the whole channel.
    fn len(&self) -> usize;

    /// Whether no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total event capacity across the whole channel.
    fn capacity(&self) -> usize;

    /// Aggregate occupancy in `[0, 1]` — the backpressure signal consumed
    /// by the iteration-skip policy. For the sharded transport this is
    /// the occupancy summed over every client's shard.
    fn pressure(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }
}

/// Client-side sending handle.
pub trait EventProducer<T: Send>: Clone + Send + 'static {
    /// Send, blocking while the transport is full.
    fn send(&self, msg: T) -> Result<(), SendError<T>>;
    /// Send without blocking.
    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>>;
    /// Send, blocking at most `timeout`.
    fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), TrySendError<T>>;
    /// Aggregate channel occupancy in `[0, 1]` (same scale as
    /// [`EventChannel::pressure`]).
    fn pressure(&self) -> f64;
}

/// Dedicated-core receiving handle.
pub trait EventConsumer<T: Send>: Send + 'static {
    /// Receive, blocking while empty; `Err` once closed *and* drained.
    fn recv(&mut self) -> Result<T, RecvError>;
    /// Receive without blocking.
    fn try_recv(&mut self) -> Result<T, TryRecvError>;
    /// Receive, blocking at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<T, TryRecvError>;
}

// ---- MessageQueue as the fallback transport ------------------------------

impl<T: Send + 'static> EventChannel<T> for MessageQueue<T> {
    type Producer = MessageQueue<T>;
    type Consumer = MessageQueue<T>;

    fn producer(&self, _client: usize) -> Self::Producer {
        self.clone()
    }

    fn consumer(&self, _core: usize, _n_cores: usize) -> Self::Consumer {
        self.clone()
    }

    fn close(&self) {
        MessageQueue::close(self);
    }

    fn is_closed(&self) -> bool {
        MessageQueue::is_closed(self)
    }

    fn len(&self) -> usize {
        MessageQueue::len(self)
    }

    fn capacity(&self) -> usize {
        MessageQueue::capacity(self)
    }
}

impl<T: Send + 'static> EventProducer<T> for MessageQueue<T> {
    fn send(&self, msg: T) -> Result<(), SendError<T>> {
        MessageQueue::send(self, msg)
    }

    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        MessageQueue::try_send(self, msg)
    }

    fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), TrySendError<T>> {
        MessageQueue::send_timeout(self, msg, timeout)
    }

    fn pressure(&self) -> f64 {
        MessageQueue::pressure(self)
    }
}

impl<T: Send + 'static> EventConsumer<T> for MessageQueue<T> {
    fn recv(&mut self) -> Result<T, RecvError> {
        MessageQueue::recv(self)
    }

    fn try_recv(&mut self) -> Result<T, TryRecvError> {
        MessageQueue::try_recv(self)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<T, TryRecvError> {
        MessageQueue::recv_timeout(self, timeout)
    }
}

// ---- the sharded transport -----------------------------------------------

/// One client's shard: its ring plus the two access guards.
struct Shard<T> {
    ring: SpscRing<T>,
    /// Serializes pushes from clones of the same client handle. Held for
    /// one ring push — an uncontended CAS in the common one-handle case.
    push_guard: CachePadded<AtomicBool>,
    /// Serializes pops between the owning consumer and thieves, keeping
    /// the ring's single-consumer contract while allowing work stealing.
    drain_guard: CachePadded<AtomicBool>,
}

struct ShardedInner<T> {
    shards: Box<[Shard<T>]>,
    closed: AtomicBool,
    /// Events a dropped consumer had batch-popped but not yet delivered;
    /// surviving consumers adopt them (see `StealingConsumer::drop`).
    orphans: Mutex<std::collections::VecDeque<T>>,
    /// Cheap emptiness signal for `orphans`, read on every sweep.
    orphan_count: AtomicUsize,
    /// Consumers currently asleep waiting for events.
    sleeping_consumers: AtomicUsize,
    /// Producers currently asleep waiting for space.
    sleeping_producers: AtomicUsize,
    /// Wakeup channel for sleeping consumers (and producers). The mutex
    /// protects nothing but the condvar wait itself — the hot send path
    /// never touches it unless a consumer is actually asleep.
    sleep_lock: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sharded lock-free event transport: per-client SPSC rings with
/// work-stealing consumers. See the module docs for the design.
pub struct ShardedChannel<T> {
    inner: Arc<ShardedInner<T>>,
}

impl<T> Clone for ShardedChannel<T> {
    fn clone(&self) -> Self {
        ShardedChannel {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> std::fmt::Debug for ShardedChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChannel")
            .field("shards", &self.inner.shards.len())
            .field("shard_capacity", &self.shard_capacity())
            .field("len", &self.total_len())
            .field("closed", &self.inner.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send> ShardedChannel<T> {
    /// Create a channel with `shards` rings (one per client) of
    /// `shard_capacity` events each (rounded up to a power of two).
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        assert!(shards > 0, "sharded channel needs at least one shard");
        assert!(shard_capacity > 0, "shard capacity must be positive");
        let shards = (0..shards)
            .map(|_| Shard {
                ring: SpscRing::with_capacity(shard_capacity),
                push_guard: CachePadded(AtomicBool::new(false)),
                drain_guard: CachePadded(AtomicBool::new(false)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedChannel {
            inner: Arc::new(ShardedInner {
                shards,
                closed: AtomicBool::new(false),
                orphans: Mutex::new(std::collections::VecDeque::new()),
                orphan_count: AtomicUsize::new(0),
                sleeping_consumers: AtomicUsize::new(0),
                sleeping_producers: AtomicUsize::new(0),
                sleep_lock: Mutex::new(()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// Number of shards (= clients).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Per-shard event capacity.
    pub fn shard_capacity(&self) -> usize {
        self.inner.shards[0].ring.capacity()
    }

    /// Occupancy of one shard, in events.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.inner.shards[shard].ring.len()
    }

    fn total_len(&self) -> usize {
        // Diagnostic snapshot only — never feeds the drained verdict, so
        // Relaxed suffices (the verdict path in `all_drained` keeps its
        // SeqCst load; see `push_guard_send_vs_close` in
        // crates/check/tests/models.rs).
        let queued: usize = self.inner.shards.iter().map(|s| s.ring.len()).sum();
        queued + self.inner.orphan_count.load(Ordering::Relaxed)
    }
}

impl<T> ShardedInner<T> {
    /// Wake sleeping consumers after a push. Cheap when nobody sleeps.
    fn ring_doorbell(&self) {
        // The push's Release store orders before this SeqCst load; a
        // consumer increments `sleeping_consumers` (SeqCst) *before* its
        // final empty re-scan, so either we observe the sleeper here or
        // the sleeper's re-scan observes our push.
        if self.sleeping_consumers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock();
            self.not_empty.notify_all();
        }
    }

    /// Wake sleeping producers after a pop freed a slot.
    fn space_doorbell(&self) {
        if self.sleeping_producers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock();
            self.not_full.notify_all();
        }
    }

    fn wake_everyone(&self) {
        let _g = self.sleep_lock.lock();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

impl<T: Send + 'static> EventChannel<T> for ShardedChannel<T> {
    type Producer = ShardProducer<T>;
    type Consumer = StealingConsumer<T>;

    /// Clients beyond the shard count share the last shards
    /// (`client % shards`); correctness is preserved by the push guard,
    /// only the lock-free property of the extra clients degrades.
    fn producer(&self, client: usize) -> ShardProducer<T> {
        ShardProducer {
            inner: self.inner.clone(),
            shard: client % self.inner.shards.len(),
        }
    }

    fn consumer(&self, core: usize, n_cores: usize) -> StealingConsumer<T> {
        assert!(n_cores > 0 && core < n_cores, "consumer index out of range");
        StealingConsumer {
            inner: self.inner.clone(),
            core,
            n_cores,
            next_owned: 0,
            next_steal: 0,
            pending: std::collections::VecDeque::with_capacity(DRAIN_BATCH),
        }
    }

    fn close(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        self.inner.wake_everyone();
    }

    fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    fn len(&self) -> usize {
        self.total_len()
    }

    fn capacity(&self) -> usize {
        self.shard_capacity() * self.shards()
    }
}

/// Producer half of a [`ShardedChannel`]: posts only to its own shard.
pub struct ShardProducer<T> {
    inner: Arc<ShardedInner<T>>,
    shard: usize,
}

impl<T> Clone for ShardProducer<T> {
    fn clone(&self) -> Self {
        ShardProducer {
            inner: self.inner.clone(),
            shard: self.shard,
        }
    }
}

impl<T: Send> ShardProducer<T> {
    /// The shard this producer posts to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// One guarded push attempt.
    ///
    /// The `closed` check happens *inside* the push guard: paired with the
    /// consumer's closed-verdict handshake (rings empty → all push guards
    /// free → rings empty again), this guarantees a send that returned
    /// `Ok` is always drained — either the closing consumer observes our
    /// held guard and rescans, or it observes the guard released, which
    /// happens-after the push landed.
    fn guarded_push(&self, value: T) -> Result<(), PushError<T>> {
        let shard = &self.inner.shards[self.shard];
        // Spin until the clone-guard is ours; uncontended unless the same
        // logical client sends from two cloned handles at once. SeqCst:
        // the guard store must precede the `closed` load in the single
        // total order, or `all_drained`'s guard scan could miss a
        // mid-push producer on weakly-ordered hardware. The handshake is
        // model-checked by `push_guard_send_vs_close`; weakening the
        // `closed` load below loses an accepted event, caught by
        // `push_guard_relaxed_closed_check_is_caught`
        // (crates/check/tests/models.rs).
        while shard.push_guard.swap(true, Ordering::SeqCst) {
            damaris_sync::hint::spin_loop();
        }
        if self.inner.closed.load(Ordering::SeqCst) {
            shard.push_guard.store(false, Ordering::Release);
            return Err(PushError::Closed(value));
        }
        let res = shard.ring.try_push(value).map_err(PushError::Full);
        shard.push_guard.store(false, Ordering::Release);
        if res.is_ok() {
            self.inner.ring_doorbell();
        }
        res
    }
}

/// Outcome of one guarded push attempt.
enum PushError<T> {
    Full(T),
    Closed(T),
}

impl<T: Send + 'static> EventProducer<T> for ShardProducer<T> {
    fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match self.send_deadline(msg, None) {
            Ok(()) => Ok(()),
            Err(TrySendError::Closed(m)) => Err(SendError(m)),
            Err(TrySendError::Full(_)) => unreachable!("untimed send cannot time out"),
        }
    }

    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match self.guarded_push(msg) {
            Ok(()) => Ok(()),
            Err(PushError::Full(m)) => Err(TrySendError::Full(m)),
            Err(PushError::Closed(m)) => Err(TrySendError::Closed(m)),
        }
    }

    fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), TrySendError<T>> {
        // Overflow-safe deadline: a huge timeout degrades to an untimed
        // blocking send instead of panicking on `Instant + Duration`.
        self.send_deadline(msg, Instant::now().checked_add(timeout))
    }

    /// Aggregate occupancy, floored by this producer's own shard: a full
    /// individual ring must engage the skip policy even while the other
    /// shards are idle, or `DropIteration` mode could stall in a blocking
    /// send — the one thing it promises never to do.
    fn pressure(&self) -> f64 {
        let total: usize = self.inner.shards.iter().map(|s| s.ring.len()).sum();
        let cap = self.inner.shards[0].ring.capacity() * self.inner.shards.len();
        let own = &self.inner.shards[self.shard].ring;
        let own_pressure = own.len() as f64 / own.capacity() as f64;
        (total as f64 / cap as f64).max(own_pressure)
    }
}

impl<T: Send> ShardProducer<T> {
    /// Blocking send with an optional deadline (`None` = wait forever).
    fn send_deadline(&self, msg: T, deadline: Option<Instant>) -> Result<(), TrySendError<T>> {
        let mut value = msg;
        let mut spins = 0u32;
        loop {
            match self.guarded_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(back)) => return Err(TrySendError::Closed(back)),
                Err(PushError::Full(back)) => value = back,
            }
            // Brief spin before sleeping: the consumer usually frees a
            // slot within microseconds.
            if spins < 64 {
                spins += 1;
                damaris_sync::hint::spin_loop();
                continue;
            }
            self.inner.sleeping_producers.fetch_add(1, Ordering::SeqCst);
            // Re-check after registering: a pop may have raced us.
            let shard = &self.inner.shards[self.shard];
            let full = shard.ring.len() >= shard.ring.capacity();
            if full && !self.inner.closed.load(Ordering::SeqCst) {
                let mut g = self.inner.sleep_lock.lock();
                // Bounded nap: correctness never depends on a wakeup.
                let nap = Duration::from_micros(200);
                match deadline {
                    Some(d) => {
                        if Instant::now() >= d {
                            drop(g);
                            self.inner.sleeping_producers.fetch_sub(1, Ordering::SeqCst);
                            return Err(TrySendError::Full(value));
                        }
                        let until = d.min(Instant::now() + nap);
                        self.inner.not_full.wait_until(&mut g, until);
                    }
                    None => {
                        self.inner.not_full.wait_for(&mut g, nap);
                    }
                }
            }
            self.inner.sleeping_producers.fetch_sub(1, Ordering::SeqCst);
            spins = 0;
        }
    }
}

/// Consumer half of a [`ShardedChannel`]: drains its owned shard set
/// first, then steals from any other shard.
///
/// Pops are batched: acquiring a shard's drain guard pulls up to
/// `DRAIN_BATCH` events into a local buffer, amortizing the guard CAS
/// and the shard scan to a fraction of an atomic op per event.
pub struct StealingConsumer<T> {
    inner: Arc<ShardedInner<T>>,
    core: usize,
    n_cores: usize,
    /// Rotating start offset within the owned set (fairness).
    next_owned: usize,
    /// Rotating start offset for steal scans.
    next_steal: usize,
    /// Events already popped from a shard, not yet handed to the caller.
    pending: std::collections::VecDeque<T>,
}

/// Maximum events pulled from one shard per guard acquisition. Bounds how
/// stale the per-shard fairness rotation can get while keeping the
/// per-event cost O(1).
const DRAIN_BATCH: usize = 64;

impl<T: Send> StealingConsumer<T> {
    /// The closed-and-drained verdict, raceproof against in-flight
    /// pushes: rings empty, then every push guard observed free, then
    /// rings empty *again*. A producer that passed its in-guard closed
    /// check either still holds its guard (we rescan) or released it
    /// after its push landed (the second scan sees the event).
    fn all_drained(&self) -> bool {
        let shards = &self.inner.shards;
        self.inner.orphan_count.load(Ordering::SeqCst) == 0
            && shards.iter().all(|s| s.ring.is_empty())
            && shards.iter().all(|s| !s.push_guard.load(Ordering::SeqCst))
            && shards.iter().all(|s| s.ring.is_empty())
    }

    /// Batch-pop from `shard` into `pending` if its drain guard can be
    /// taken right now. Returns how many events were pulled.
    fn try_drain(&mut self, shard: usize) -> usize {
        let s = &self.inner.shards[shard];
        // Cheap pre-check without the guard: empty shards are skipped for
        // one Acquire load, keeping scans over many idle clients cheap.
        if s.ring.is_empty() {
            return 0;
        }
        if s.drain_guard.swap(true, Ordering::Acquire) {
            return 0; // another consumer holds this shard
        }
        let mut pulled = 0;
        while pulled < DRAIN_BATCH {
            match s.ring.try_pop() {
                Some(v) => {
                    self.pending.push_back(v);
                    pulled += 1;
                }
                None => break,
            }
        }
        s.drain_guard.store(false, Ordering::Release);
        if pulled > 0 {
            self.inner.space_doorbell();
        }
        pulled
    }

    /// One full sweep: own pending batch, orphaned batches of dropped
    /// consumers, then owned shards (starting at a rotating offset),
    /// then a steal pass over all remaining shards.
    fn sweep(&mut self) -> Option<T> {
        if let Some(v) = self.pending.pop_front() {
            return Some(v);
        }
        if self.inner.orphan_count.load(Ordering::SeqCst) > 0 {
            let mut orphans = self.inner.orphans.lock();
            let take = orphans.len().min(DRAIN_BATCH);
            self.pending.extend(orphans.drain(..take));
            drop(orphans);
            if take > 0 {
                self.inner.orphan_count.fetch_sub(take, Ordering::SeqCst);
                return self.pending.pop_front();
            }
        }
        let n = self.inner.shards.len();
        let stride = self.n_cores;
        let lane = self.core % stride;
        let owned_count = n / stride + usize::from(lane < n % stride);
        for i in 0..owned_count {
            let shard = ((self.next_owned + i) % owned_count) * stride + lane;
            if self.try_drain(shard) > 0 {
                self.next_owned = (self.next_owned + i + 1) % owned_count;
                return self.pending.pop_front();
            }
        }
        for i in 0..n {
            let shard = (self.next_steal + i) % n;
            if shard % stride == lane {
                continue; // already swept above
            }
            if self.try_drain(shard) > 0 {
                self.next_steal = (shard + 1) % n;
                return self.pending.pop_front();
            }
        }
        None
    }

    fn recv_deadline(&mut self, deadline: Option<Instant>) -> Result<T, TryRecvError> {
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.sweep() {
                return Ok(v);
            }
            // Closed and the sweep found nothing: check emptiness under
            // SeqCst closed-read to decide Closed vs keep-draining.
            if self.inner.closed.load(Ordering::SeqCst) {
                if self.all_drained() {
                    return Err(TryRecvError::Closed);
                }
                // Items remain but another consumer holds the guards;
                // loop again rather than sleeping.
                damaris_sync::hint::spin_loop();
                continue;
            }
            if spins < 64 {
                spins += 1;
                damaris_sync::hint::spin_loop();
                continue;
            }
            // Register as sleeping, then re-scan before actually waiting
            // (the eventcount handshake with `ring_doorbell`).
            self.inner.sleeping_consumers.fetch_add(1, Ordering::SeqCst);
            let work_visible = self.inner.shards.iter().any(|s| !s.ring.is_empty())
                || self.inner.orphan_count.load(Ordering::SeqCst) > 0
                || self.inner.closed.load(Ordering::SeqCst);
            if !work_visible {
                let mut g = self.inner.sleep_lock.lock();
                let nap = Duration::from_micros(500);
                match deadline {
                    Some(d) => {
                        if Instant::now() >= d {
                            drop(g);
                            self.inner.sleeping_consumers.fetch_sub(1, Ordering::SeqCst);
                            return Err(TryRecvError::Empty);
                        }
                        let until = d.min(Instant::now() + nap);
                        self.inner.not_empty.wait_until(&mut g, until);
                    }
                    None => {
                        self.inner.not_empty.wait_for(&mut g, nap);
                    }
                }
            }
            self.inner.sleeping_consumers.fetch_sub(1, Ordering::SeqCst);
            spins = 0;
        }
    }
}

impl<T> Drop for StealingConsumer<T> {
    /// Hand any batch-popped but undelivered events to the surviving
    /// consumers. Without this, a consumer dropped mid-batch (e.g. a
    /// dedicated-core thread unwinding out of a panicking plugin) would
    /// silently destroy events the producers were told were delivered —
    /// a loss mode the mutex transport does not have.
    fn drop(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut orphans = self.inner.orphans.lock();
        let moved = self.pending.len();
        orphans.extend(self.pending.drain(..));
        drop(orphans);
        self.inner.orphan_count.fetch_add(moved, Ordering::SeqCst);
        // Wake everyone: a sleeping consumer must adopt these even if no
        // new push ever rings the doorbell again.
        self.inner.wake_everyone();
    }
}

impl<T: Send + 'static> EventConsumer<T> for StealingConsumer<T> {
    fn recv(&mut self) -> Result<T, RecvError> {
        match self.recv_deadline(None) {
            Ok(v) => Ok(v),
            Err(TryRecvError::Closed) => Err(RecvError),
            Err(TryRecvError::Empty) => unreachable!("untimed recv cannot time out"),
        }
    }

    fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if let Some(v) = self.sweep() {
            return Ok(v);
        }
        if self.inner.closed.load(Ordering::SeqCst) && self.all_drained() {
            Err(TryRecvError::Closed)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<T, TryRecvError> {
        // Overflow-safe: absurd timeouts become an untimed wait.
        self.recv_deadline(Instant::now().checked_add(timeout))
    }
}

// ---- runtime-selected transport ------------------------------------------

/// Which transport implementation to use, as named by the XML
/// `<queue kind="…">` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The mutex+condvar [`MessageQueue`] (global FIFO, contended posts).
    #[default]
    Mutex,
    /// Per-client SPSC rings with work stealing ([`ShardedChannel`]).
    Sharded,
}

impl TransportKind {
    /// Name used in XML and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Mutex => "mutex",
            TransportKind::Sharded => "sharded",
        }
    }
}

/// Runtime-selected transport: either implementation behind one concrete
/// type, so non-generic code paths (builders, FFI-ish surfaces) can defer
/// the choice to configuration.
pub enum AnyTransport<T: Send> {
    /// Mutex-queue transport.
    Mutex(MessageQueue<T>),
    /// Sharded SPSC transport.
    Sharded(ShardedChannel<T>),
}

impl<T: Send> Clone for AnyTransport<T> {
    fn clone(&self) -> Self {
        match self {
            AnyTransport::Mutex(q) => AnyTransport::Mutex(q.clone()),
            AnyTransport::Sharded(c) => AnyTransport::Sharded(c.clone()),
        }
    }
}

impl<T: Send + 'static> AnyTransport<T> {
    /// Build the transport `kind` for `clients` producers with `capacity`
    /// total queued events. The sharded transport splits the capacity
    /// evenly across shards (rounding each shard up to a power of two, at
    /// least 8), so aggregate backpressure engages at a comparable depth
    /// to the mutex queue.
    pub fn for_kind(kind: TransportKind, clients: usize, capacity: usize) -> Self {
        match kind {
            TransportKind::Mutex => AnyTransport::Mutex(MessageQueue::bounded(capacity)),
            TransportKind::Sharded => {
                let clients = clients.max(1);
                let per_shard = capacity.div_ceil(clients).max(8);
                AnyTransport::Sharded(ShardedChannel::new(clients, per_shard))
            }
        }
    }

    /// Which kind this transport is.
    pub fn kind(&self) -> TransportKind {
        match self {
            AnyTransport::Mutex(_) => TransportKind::Mutex,
            AnyTransport::Sharded(_) => TransportKind::Sharded,
        }
    }
}

/// Producer half of [`AnyTransport`].
pub enum AnyProducer<T: Send> {
    /// Mutex-queue producer (a queue handle).
    Mutex(MessageQueue<T>),
    /// Sharded producer (the client's shard handle).
    Sharded(ShardProducer<T>),
}

impl<T: Send> Clone for AnyProducer<T> {
    fn clone(&self) -> Self {
        match self {
            AnyProducer::Mutex(q) => AnyProducer::Mutex(q.clone()),
            AnyProducer::Sharded(p) => AnyProducer::Sharded(p.clone()),
        }
    }
}

/// Consumer half of [`AnyTransport`].
pub enum AnyConsumer<T: Send> {
    /// Mutex-queue consumer (a queue handle).
    Mutex(MessageQueue<T>),
    /// Sharded work-stealing consumer.
    Sharded(StealingConsumer<T>),
}

impl<T: Send + 'static> EventChannel<T> for AnyTransport<T> {
    type Producer = AnyProducer<T>;
    type Consumer = AnyConsumer<T>;

    fn producer(&self, client: usize) -> AnyProducer<T> {
        match self {
            AnyTransport::Mutex(q) => AnyProducer::Mutex(EventChannel::producer(q, client)),
            AnyTransport::Sharded(c) => AnyProducer::Sharded(c.producer(client)),
        }
    }

    fn consumer(&self, core: usize, n_cores: usize) -> AnyConsumer<T> {
        match self {
            AnyTransport::Mutex(q) => AnyConsumer::Mutex(EventChannel::consumer(q, core, n_cores)),
            AnyTransport::Sharded(c) => AnyConsumer::Sharded(c.consumer(core, n_cores)),
        }
    }

    fn close(&self) {
        match self {
            AnyTransport::Mutex(q) => EventChannel::close(q),
            AnyTransport::Sharded(c) => EventChannel::close(c),
        }
    }

    fn is_closed(&self) -> bool {
        match self {
            AnyTransport::Mutex(q) => EventChannel::is_closed(q),
            AnyTransport::Sharded(c) => EventChannel::is_closed(c),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyTransport::Mutex(q) => EventChannel::len(q),
            AnyTransport::Sharded(c) => EventChannel::len(c),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            AnyTransport::Mutex(q) => EventChannel::capacity(q),
            AnyTransport::Sharded(c) => EventChannel::capacity(c),
        }
    }
}

impl<T: Send + 'static> EventProducer<T> for AnyProducer<T> {
    fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match self {
            AnyProducer::Mutex(q) => EventProducer::send(q, msg),
            AnyProducer::Sharded(p) => p.send(msg),
        }
    }

    fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match self {
            AnyProducer::Mutex(q) => EventProducer::try_send(q, msg),
            AnyProducer::Sharded(p) => p.try_send(msg),
        }
    }

    fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), TrySendError<T>> {
        match self {
            AnyProducer::Mutex(q) => EventProducer::send_timeout(q, msg, timeout),
            AnyProducer::Sharded(p) => p.send_timeout(msg, timeout),
        }
    }

    fn pressure(&self) -> f64 {
        match self {
            AnyProducer::Mutex(q) => EventProducer::pressure(q),
            AnyProducer::Sharded(p) => p.pressure(),
        }
    }
}

impl<T: Send + 'static> EventConsumer<T> for AnyConsumer<T> {
    fn recv(&mut self) -> Result<T, RecvError> {
        match self {
            AnyConsumer::Mutex(q) => EventConsumer::recv(q),
            AnyConsumer::Sharded(c) => c.recv(),
        }
    }

    fn try_recv(&mut self) -> Result<T, TryRecvError> {
        match self {
            AnyConsumer::Mutex(q) => EventConsumer::try_recv(q),
            AnyConsumer::Sharded(c) => c.try_recv(),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<T, TryRecvError> {
        match self {
            AnyConsumer::Mutex(q) => EventConsumer::recv_timeout(q, timeout),
            AnyConsumer::Sharded(c) => c.recv_timeout(timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sharded_fifo_per_producer_single_consumer() {
        let ch: ShardedChannel<(usize, usize)> = ShardedChannel::new(3, 16);
        let producers: Vec<_> = (0..3).map(|p| ch.producer(p)).collect();
        for i in 0..5 {
            for (p, prod) in producers.iter().enumerate() {
                prod.send((p, i)).unwrap();
            }
        }
        ch.close();
        let mut consumer = ch.consumer(0, 1);
        let mut last = [None::<usize>; 3];
        let mut count = 0;
        while let Ok((p, i)) = consumer.recv() {
            if let Some(prev) = last[p] {
                assert!(i > prev, "per-producer FIFO violated: {prev} then {i}");
            }
            last[p] = Some(i);
            count += 1;
        }
        assert_eq!(count, 15);
        assert_eq!(consumer.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn sharded_close_then_drain_then_error() {
        let ch: ShardedChannel<u32> = ShardedChannel::new(2, 8);
        let p = ch.producer(0);
        p.send(1).unwrap();
        p.send(2).unwrap();
        EventChannel::close(&ch);
        assert!(matches!(p.send(3), Err(SendError(3))));
        assert!(matches!(p.try_send(4), Err(TrySendError::Closed(4))));
        let mut c = ch.consumer(0, 1);
        assert_eq!(c.recv().unwrap(), 1);
        assert_eq!(c.recv().unwrap(), 2);
        assert_eq!(c.recv(), Err(RecvError));
    }

    #[test]
    fn sharded_full_shard_try_send() {
        let ch: ShardedChannel<u32> = ShardedChannel::new(1, 2);
        let p = ch.producer(0);
        p.try_send(1).unwrap();
        p.try_send(2).unwrap();
        assert_eq!(p.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(
            p.send_timeout(3, Duration::from_millis(5)),
            Err(TrySendError::Full(3))
        );
        assert_eq!(EventChannel::pressure(&ch), 1.0);
    }

    #[test]
    fn sharded_recv_timeout_empty() {
        let ch: ShardedChannel<u32> = ShardedChannel::new(2, 4);
        let mut c = ch.consumer(0, 1);
        assert_eq!(
            c.recv_timeout(Duration::from_millis(5)),
            Err(TryRecvError::Empty)
        );
        // Degenerate huge timeout must not panic (Instant overflow).
        let p = ch.producer(1);
        p.send(7).unwrap();
        assert_eq!(c.recv_timeout(Duration::from_secs(u64::MAX)).unwrap(), 7);
    }

    #[test]
    fn sharded_blocking_send_wakes_on_drain() {
        let ch: ShardedChannel<u32> = ShardedChannel::new(1, 2);
        let p = ch.producer(0);
        p.send(0).unwrap();
        p.send(1).unwrap();
        let p2 = p.clone();
        let sender = thread::spawn(move || p2.send(2));
        thread::sleep(Duration::from_millis(20));
        let mut c = ch.consumer(0, 1);
        assert_eq!(c.recv().unwrap(), 0);
        sender.join().unwrap().unwrap();
        assert_eq!(c.recv().unwrap(), 1);
        assert_eq!(c.recv().unwrap(), 2);
    }

    #[test]
    fn sharded_close_wakes_blocked_parties() {
        // Sender blocked on a full shard nobody drains.
        let full: ShardedChannel<u32> = ShardedChannel::new(1, 2);
        let p = full.producer(0);
        p.send(0).unwrap();
        p.send(1).unwrap();
        let p2 = p.clone();
        let blocked_sender = thread::spawn(move || p2.send(2));
        // Receiver blocked on a channel nobody feeds.
        let empty: ShardedChannel<u32> = ShardedChannel::new(1, 2);
        let e2 = empty.clone();
        let blocked_receiver = thread::spawn(move || e2.consumer(0, 1).recv());
        thread::sleep(Duration::from_millis(20));
        EventChannel::close(&full);
        EventChannel::close(&empty);
        assert_eq!(blocked_sender.join().unwrap(), Err(SendError(2)));
        assert_eq!(blocked_receiver.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn stealing_consumer_reaches_unowned_shards() {
        // 4 shards, 2 consumers: consumer 0 owns shards 0 and 2. Fill only
        // shard 1 (owned by consumer 1, which never runs) — consumer 0
        // must steal everything.
        let ch: ShardedChannel<u32> = ShardedChannel::new(4, 8);
        let p = ch.producer(1);
        for i in 0..6 {
            p.send(i).unwrap();
        }
        ch.close();
        let mut c0 = ch.consumer(0, 2);
        let drained: Vec<u32> = std::iter::from_fn(|| c0.recv().ok()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn producer_overflow_maps_to_existing_shards() {
        let ch: ShardedChannel<u32> = ShardedChannel::new(2, 4);
        let p5 = ch.producer(5); // 5 % 2 == shard 1
        assert_eq!(p5.shard(), 1);
        p5.send(99).unwrap();
        assert_eq!(ch.shard_len(1), 1);
    }

    #[test]
    fn any_transport_for_kind() {
        let m = AnyTransport::<u32>::for_kind(TransportKind::Mutex, 4, 64);
        assert_eq!(m.kind(), TransportKind::Mutex);
        assert_eq!(EventChannel::capacity(&m), 64);
        let s = AnyTransport::<u32>::for_kind(TransportKind::Sharded, 4, 64);
        assert_eq!(s.kind(), TransportKind::Sharded);
        assert_eq!(EventChannel::capacity(&s), 64, "4 shards × 16");
        let p = s.producer(2);
        p.send(5).unwrap();
        assert!(EventChannel::pressure(&s) > 0.0);
        let mut c = s.consumer(0, 1);
        assert_eq!(c.recv().unwrap(), 5);
        EventChannel::close(&s);
        assert!(EventChannel::is_closed(&s));
        assert_eq!(c.recv(), Err(RecvError));
    }

    #[test]
    fn mutex_queue_implements_event_channel() {
        let q: MessageQueue<u32> = MessageQueue::bounded(4);
        let p = EventChannel::producer(&q, 0);
        let mut c = EventChannel::consumer(&q, 0, 1);
        EventProducer::send(&p, 11).unwrap();
        assert_eq!(EventConsumer::recv(&mut c).unwrap(), 11);
        EventChannel::close(&q);
        assert_eq!(EventConsumer::recv(&mut c), Err(RecvError));
    }

    #[test]
    fn dropped_consumer_batch_is_adopted_not_lost() {
        // Consumer A batch-pops several events into its local buffer but
        // only delivers one, then dies (plugin panic unwinds the server
        // thread). Consumer B must still receive the rest.
        let ch: ShardedChannel<u32> = ShardedChannel::new(2, 16);
        let p = ch.producer(0);
        for i in 0..5 {
            p.send(i).unwrap();
        }
        let mut a = ch.consumer(0, 2);
        assert_eq!(a.try_recv().unwrap(), 0, "A delivers one of its batch");
        drop(a); // 1..=4 were already popped into A's pending buffer
        assert_eq!(EventChannel::len(&ch), 4, "orphans still count as queued");
        EventChannel::close(&ch);
        let mut b = ch.consumer(1, 2);
        let rest: Vec<u32> = std::iter::from_fn(|| b.recv().ok()).collect();
        assert_eq!(rest, vec![1, 2, 3, 4], "B adopts A's stranded batch");
    }

    #[test]
    fn mpmc_no_loss_no_duplication_sharded() {
        // Mirror of queue.rs's mpmc_no_loss_no_duplication across the
        // sharded transport: 4 producers × 500 events, 3 stealing
        // consumers, every event seen exactly once.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let ch: ShardedChannel<usize> = ShardedChannel::new(PRODUCERS, 16);
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let prod = ch.producer(p);
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    prod.send(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for core in 0..CONSUMERS {
            let mut cons = ch.consumer(core, CONSUMERS);
            consumers.push(thread::spawn(move || {
                let mut seen = Vec::new();
                while let Ok(v) = cons.recv() {
                    seen.push(v);
                }
                seen
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        EventChannel::close(&ch);
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }
}
