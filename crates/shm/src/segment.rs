//! Fixed-capacity shared segment with a two-tier allocator: lock-free
//! size-class free lists over a first-fit, coalescing fallback list.
//!
//! The allocator is the mechanism behind two numbers in the paper:
//!
//! * the simulation-side cost of a "write" is one memcpy into this segment
//!   (§IV.B: "the time to write from the point of view of the simulation is
//!   cut down to the time required to write in shared-memory, which is in
//!   the order of 0.1 seconds"), and
//! * when analysis plugins cannot keep up, the segment fills and the
//!   iteration-skip policy engages (§V.C.1) — driven by
//!   [`SharedSegment::occupancy`].
//!
//! ## Allocator tiers
//!
//! HPC output is highly regular: every variable has a fixed layout, so
//! every iteration reallocates the same block sizes. A segment built with
//! [`SharedSegment::with_classes`] owns one lock-free queue of free
//! offsets per declared size (see [`crate::arena`]); steady-state
//! allocate and free are each a single CAS, and a per-client
//! [`crate::SlabCache`] removes even that shared CAS from the repeat
//! path. Odd sizes — and class misses — fall back to the mutex-guarded
//! first-fit free list, which the class queues drain back into under
//! pressure so adjacent holes can coalesce before the allocator reports
//! out-of-memory.
//!
//! ## Safety model
//!
//! The backing store is a heap allocation accessed through raw pointers.
//! Soundness rests on two invariants, both enforced by construction:
//!
//! 1. **Disjointness** — the allocator never hands out overlapping ranges
//!    (each range is owned by exactly one tier at any time: the free list,
//!    one class queue slot, one slab-cache slot, or one live [`Block`]/
//!    frozen ref), so each live [`Block`] has exclusive access to its
//!    byte range.
//! 2. **Write-xor-read** — a [`Block`] (unique, `&mut`-only access) must be
//!    [`Block::freeze`]-d into an immutable [`BlockRef`] before it can be
//!    shared; `BlockRef` only ever yields `&[u8]`. The happens-before edge
//!    between the writing thread and readers is provided by whatever channel
//!    transfers the `BlockRef` (the event transport in the middleware),
//!    exactly as with any `Send` value.

use std::mem::ManuallyDrop;
use std::sync::Arc;
use std::time::Duration;

use damaris_sync::{fence, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

use crate::arena::{BuddyTier, CacheSlots, SizeClasses};
use crate::error::ShmError;

/// Allocation granularity and guaranteed block alignment, in bytes.
///
/// One cache line: avoids false sharing between adjacent blocks written by
/// different cores, and is large enough for any primitive element type.
pub const BLOCK_ALIGN: usize = 64;

/// Failsafe re-check interval for blocked allocations. Wakeups are driven
/// by an eventcount handshake (`release_gen` + `waiters`, see
/// [`SegmentInner::signal_release`]): every release bumps a generation
/// counter and notifies the condvar whenever waiters are registered, so a
/// blocked allocation wakes within microseconds of a cross-thread free.
/// This long-interval poll only guards against bugs in that handshake —
/// it should never be what wakes a waiter.
const BLOCKED_ALLOC_FAILSAFE: Duration = Duration::from_millis(250);

/// Marker for plain-old-data element types that can be memcpy'd in and out
/// of a segment.
///
/// # Safety
///
/// Implementors must be `Copy` types with no padding bytes and no invalid
/// bit patterns (all primitive numeric types qualify).
pub unsafe trait Pod: Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => { $(
        // SAFETY: primitive numeric types are Copy, have no padding
        // bytes, and every bit pattern is a valid value.
        unsafe impl Pod for $t {}
    )* };
}
impl_pod!(i8, i16, i32, i64, u8, u16, u32, u64, f32, f64);

/// Counters describing a segment's lifetime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated (including alignment padding and offsets
    /// reserved in slab caches).
    pub used: usize,
    /// High-watermark of `used` over the segment's lifetime.
    pub peak: usize,
    /// Number of successful allocations.
    pub allocations: u64,
    /// Number of allocation failures (out of memory at request time).
    pub failures: u64,
    /// Number of blocks returned to the allocator.
    pub frees: u64,
    /// Allocations served without touching the free-list mutex (size-class
    /// queue or slab-cache hits).
    pub class_hits: u64,
    /// Variable-size allocations served by the buddy tier without the
    /// free-list mutex (order-queue or per-order magazine hits).
    pub buddy_hits: u64,
    /// Variable-size allocations served as a three-quarter fit: the
    /// parent order's top quarter trimmed straight back to the free
    /// pool, capping internal fragmentation near 33 %.
    pub buddy_tq_hits: u64,
    /// Buddy blocks split out of a larger free block (one count per
    /// halving step).
    pub buddy_splits: u64,
    /// Buddy pairs merged back into their parent block on free.
    pub buddy_merges: u64,
}

pub(crate) struct FreeList {
    /// Free ranges `(offset, len)`, sorted by offset, non-adjacent
    /// (adjacent ranges are coalesced on insert).
    holes: Vec<(usize, usize)>,
}

impl FreeList {
    fn new(capacity: usize) -> Self {
        FreeList {
            holes: vec![(0, capacity)],
        }
    }

    /// First-fit allocation. `len` must already be align-rounded.
    fn allocate(&mut self, len: usize) -> Option<usize> {
        let idx = self.holes.iter().position(|&(_, hlen)| hlen >= len)?;
        let (off, hlen) = self.holes[idx];
        if hlen == len {
            self.holes.remove(idx);
        } else {
            self.holes[idx] = (off + len, hlen - len);
        }
        Some(off)
    }

    /// First-fit allocation of `len` bytes starting at a multiple of
    /// `align` (a power of two) — how the buddy tier carves fresh chunks:
    /// buddy math (`offset ^ size`) is only sound for size-aligned
    /// blocks. Splits the chosen hole into up to three pieces (pre-pad,
    /// block, post-pad).
    fn allocate_aligned(&mut self, len: usize, align: usize) -> Option<usize> {
        let fits = |&(off, hlen): &(usize, usize)| {
            let aligned = (off + align - 1) & !(align - 1);
            aligned
                .checked_add(len)
                .is_some_and(|end| end <= off + hlen)
        };
        let idx = self.holes.iter().position(fits)?;
        let (off, hlen) = self.holes[idx];
        let aligned = (off + align - 1) & !(align - 1);
        let pre = aligned - off;
        let post = off + hlen - (aligned + len);
        match (pre > 0, post > 0) {
            (false, false) => {
                self.holes.remove(idx);
            }
            (true, false) => self.holes[idx] = (off, pre),
            (false, true) => self.holes[idx] = (aligned + len, post),
            (true, true) => {
                self.holes[idx] = (off, pre);
                self.holes.insert(idx + 1, (aligned + len, post));
            }
        }
        Some(aligned)
    }

    /// Return a range, merging with adjacent holes.
    fn free(&mut self, offset: usize, len: usize) {
        let idx = self.holes.partition_point(|&(o, _)| o < offset);
        // Coalesce with predecessor?
        let merged_prev = idx > 0 && {
            let (po, pl) = self.holes[idx - 1];
            debug_assert!(po + pl <= offset, "double free or overlap at {offset}");
            po + pl == offset
        };
        // Coalesce with successor?
        let merged_next = idx < self.holes.len() && {
            let (no, _) = self.holes[idx];
            debug_assert!(offset + len <= no, "double free or overlap at {offset}");
            offset + len == no
        };
        match (merged_prev, merged_next) {
            (true, true) => {
                let (no, nl) = self.holes.remove(idx);
                let _ = no;
                self.holes[idx - 1].1 += len + nl;
            }
            (true, false) => self.holes[idx - 1].1 += len,
            (false, true) => {
                self.holes[idx].0 = offset;
                self.holes[idx].1 += len;
            }
            (false, false) => self.holes.insert(idx, (offset, len)),
        }
    }

    fn total_free(&self) -> usize {
        self.holes.iter().map(|&(_, l)| l).sum()
    }

    fn largest_hole(&self) -> usize {
        self.holes.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

/// Backing storage, aligned to at least 16 bytes so every
/// `BLOCK_ALIGN`-multiple offset is suitably aligned for any [`Pod`] type.
enum Storage {
    /// Process-private heap allocation (thread worlds).
    Heap(Box<[u128]>),
    /// A slice of a shared file mapping (process worlds): the same bytes
    /// are visible in every process that maps the file. `base_offset` is
    /// `BLOCK_ALIGN`-aligned, and `mmap` returns page-aligned pointers,
    /// so the alignment guarantee carries over.
    Mapped {
        shm: Arc<crate::ShmFile>,
        base_offset: usize,
    },
}

impl Storage {
    fn heap(capacity_bytes: usize) -> Self {
        let words = capacity_bytes.div_ceil(16);
        Storage::Heap(vec![0u128; words].into_boxed_slice())
    }

    fn base(&self) -> *mut u8 {
        match self {
            Storage::Heap(words) => words.as_ptr() as *mut u8,
            // SAFETY: `base_offset` was bounds-checked at construction.
            Storage::Mapped { shm, base_offset } => unsafe { shm.base().add(*base_offset) },
        }
    }
}

struct SegmentInner {
    storage: Storage,
    capacity: usize,
    state: Mutex<FreeList>,
    classes: SizeClasses,
    /// Variable-size tier under the exact classes: odd requests round up
    /// to a power-of-two buddy order instead of falling through to the
    /// first-fit mutex (disabled unless built with
    /// [`SharedSegment::with_buddy`] / `over_mapping_with_buddy`).
    buddy: BuddyTier,
    /// Registered slab caches, raided (their parked reservations pulled
    /// back into the free list) when a first-fit attempt fails even after
    /// draining the class queues. Lock ordering: always `state` before
    /// `caches`; no path locks them in the other order.
    caches: Mutex<Vec<std::sync::Weak<CacheSlots>>>,
    /// One reference count per `BLOCK_ALIGN` slot; the slot at a frozen
    /// block's starting offset counts its live [`BlockRef`] clones, so
    /// freezing and cloning never touch the heap.
    refcounts: Box<[AtomicU32]>,
    space_freed: Condvar,
    /// Blocked allocations currently waiting; releases notify the condvar
    /// only while any are present (see [`SegmentInner::signal_release`]).
    waiters: AtomicUsize,
    /// Eventcount generation: bumped by every release. A blocked
    /// allocation reads it before re-checking the tiers and sleeps only
    /// if it is unchanged after registering as a waiter, so a lock-free
    /// class-queue release between check and sleep can never be missed.
    release_gen: AtomicU64,
    used: AtomicUsize,
    peak: AtomicUsize,
    allocations: AtomicU64,
    failures: AtomicU64,
    frees: AtomicU64,
    class_hits: AtomicU64,
}

// SAFETY: all mutation of `storage` goes through `Block`s whose ranges the
// allocator guarantees to be disjoint; `BlockRef` reads are only possible
// after the unique `Block` has been consumed by `freeze`.
unsafe impl Send for SegmentInner {}
unsafe impl Sync for SegmentInner {}

impl SegmentInner {
    /// Return a range to the allocator: class queue when possible (no
    /// lock), else the buddy tier (merge + order-queue push, no lock),
    /// else the coalescing free list. Either way the eventcount is
    /// bumped so blocked allocations wake immediately — a waiter needing
    /// a larger contiguous range re-runs `alloc_locked`, which drains the
    /// class and order queues back into the coalescing list.
    fn release(&self, offset: usize, len: usize) {
        self.used.fetch_sub(len, Ordering::Relaxed);
        self.frees.fetch_add(1, Ordering::Relaxed);
        if let Some(ci) = self.classes.index_of(len) {
            if self.classes.push(ci, offset) {
                self.signal_release();
                return;
            }
        } else if self.buddy.owns(offset, len) {
            let oi = (len.ilog2() - crate::arena::MIN_BUDDY_ORDER) as usize;
            let mut spill = Vec::new();
            self.buddy.free_into(offset, oi, &mut spill);
            self.dispose_spill(spill);
            self.signal_release();
            return;
        } else if self.buddy.owns_tq(offset, len) {
            // A three-quarter block decomposes into its half + quarter;
            // the quarter re-merges through the parent when the sibling
            // trimmed at allocation time is still free.
            let mut spill = Vec::new();
            self.buddy.free_tq_into(offset, len, &mut spill);
            self.dispose_spill(spill);
            self.signal_release();
            return;
        }
        let mut fl = self.state.lock();
        fl.free(offset, len);
        drop(fl);
        self.signal_release();
    }

    /// Hand spilled buddy ranges (full order queues) to the coalescing
    /// free list. No-op without taking the lock when nothing spilled —
    /// the overwhelmingly common case.
    fn dispose_spill(&self, spill: Vec<(usize, usize)>) {
        if spill.is_empty() {
            return;
        }
        let mut fl = self.state.lock();
        for (off, len) in spill {
            fl.free(off, len);
        }
    }

    /// Eventcount publish side: bump the generation, then wake any
    /// registered waiters. Acquiring (and immediately dropping) the
    /// free-list mutex before notifying serializes with a waiter that has
    /// registered but not yet slept — it holds the lock from its
    /// generation read until `Condvar::wait` releases it, so the notify
    /// cannot fire in that window and be lost.
    ///
    /// Both SeqCst sites are load-bearing: the gen bump / waiters load
    /// here and the waiter's gen re-read form a Dekker-style store/load
    /// pattern over two locations, which Release/Acquire cannot order.
    /// Model-checked by `eventcount_no_lost_wakeup`; downgrading the
    /// waiter's re-read is caught as a deadlock by
    /// `seeded_relaxed_gen_bug_is_caught` (crates/check/tests/models.rs).
    fn signal_release(&self) {
        self.release_gen.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            drop(self.state.lock());
            self.space_freed.notify_all();
        }
    }

    /// Carve a fresh, size-aligned buddy chunk for order-index `oi` out
    /// of the first-fit list. Prefers one order up (splitting in half and
    /// publishing the sibling as free) so the next same-order request is
    /// a lock-free queue hit, halving mutex trips under churn.
    fn carve_buddy(&self, fl: &mut FreeList, oi: usize) -> Option<usize> {
        let size = self.buddy.size_of(oi);
        if oi + 1 < self.buddy.order_count() {
            if let Some(off) = fl.allocate_aligned(size * 2, size * 2) {
                let mut spill = Vec::new();
                self.buddy.free_into(off + size, oi, &mut spill);
                for (sib, sib_len) in spill {
                    // Order queue full (rare): sibling goes back whole.
                    fl.free(sib, sib_len);
                }
                self.buddy.splits.fetch_add(1, Ordering::Relaxed);
                return Some(off);
            }
        }
        fl.allocate_aligned(size, size)
    }

    /// Under the lock: satisfy the request from the free list — for
    /// buddy-eligible requests by carving an aligned power-of-two chunk,
    /// otherwise plain first-fit. On a miss, drain the class and order
    /// queues back into the list (coalescing adjacent holes) and retry,
    /// then raid the registered slab caches' parked reservations and
    /// retry once more. Only after all tiers miss is the request
    /// genuinely unsatisfiable. Returns `(offset, alloc_len)` — the
    /// buddy path rounds the allocation up to its power-of-two order.
    fn alloc_locked(
        &self,
        fl: &mut FreeList,
        alloc_len: usize,
        buddy_oi: Option<usize>,
    ) -> Option<(usize, usize)> {
        let try_fit = |this: &Self, fl: &mut FreeList| -> Option<(usize, usize)> {
            if let Some(oi) = buddy_oi {
                if let Some(off) = this.carve_buddy(fl, oi) {
                    if let Some(tq) = this.buddy.tq_len(oi, alloc_len) {
                        let mut spill = Vec::new();
                        this.buddy.trim_tq(off, oi, &mut spill);
                        for (s, s_len) in spill {
                            fl.free(s, s_len);
                        }
                        return Some((off, tq));
                    }
                    return Some((off, this.buddy.size_of(oi)));
                }
            }
            fl.allocate(alloc_len).map(|off| (off, alloc_len))
        };
        if let Some(hit) = try_fit(self, fl) {
            return Some(hit);
        }
        if self.classes.len() == 0 && !self.buddy.enabled() {
            return None;
        }
        let mut progressed = false;
        for (off, len) in self.classes.drain() {
            fl.free(off, len);
            progressed = true;
        }
        for (off, len) in self.buddy.drain() {
            fl.free(off, len);
            progressed = true;
        }
        if progressed {
            if let Some(hit) = try_fit(self, fl) {
                return Some(hit);
            }
        }
        // Last resort: reclaim reservations parked in (possibly idle)
        // clients' slab caches — they are counted as used, so raiding
        // must give those bytes back.
        let mut raided = Vec::new();
        {
            let mut caches = self.caches.lock();
            caches.retain(|w| match w.upgrade() {
                Some(slots) => {
                    slots.drain(&mut raided);
                    true
                }
                None => false,
            });
        }
        if raided.is_empty() {
            return None;
        }
        for &(ti, off) in &raided {
            // Tier indices are classes-first, then buddy orders (the
            // CacheSlots layout).
            let size = if ti < self.classes.len() {
                self.classes.size(ti)
            } else {
                self.buddy.size_of(ti - self.classes.len())
            };
            self.used.fetch_sub(size, Ordering::Relaxed);
            fl.free(off, size);
        }
        try_fit(self, fl)
    }
}

/// A fixed-capacity shared-memory segment.
///
/// Cloning the handle is cheap (`Arc`); all clones refer to the same
/// underlying region, as all cores of an SMP node map the same POSIX
/// segment in the original middleware.
#[derive(Clone)]
pub struct SharedSegment {
    inner: Arc<SegmentInner>,
}

impl std::fmt::Debug for SharedSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSegment")
            .field("capacity", &self.capacity())
            .field("used", &self.used_bytes())
            .field("classes", &self.inner.classes.len())
            .finish()
    }
}

/// The alloc-rounded length `len` bytes occupy, or `None` when the
/// request is zero or overflows the rounding.
pub(crate) fn class_len(len: usize) -> Option<usize> {
    if len == 0 {
        return None;
    }
    round_up(len, BLOCK_ALIGN)
}

impl SharedSegment {
    /// Create a segment with the given capacity in bytes (rounded up to
    /// [`BLOCK_ALIGN`]) and no size classes: every allocation uses the
    /// first-fit list.
    pub fn new(capacity: usize) -> Result<Self, ShmError> {
        Self::build(capacity, &[], false, None)
    }

    /// Create a segment with lock-free size classes for the given block
    /// sizes (each rounded up to [`BLOCK_ALIGN`]; zero, oversized and
    /// duplicate sizes are ignored).
    ///
    /// The middleware seeds the classes from the configuration's variable
    /// layouts, so every steady-state `write` allocation is an exact class
    /// hit.
    pub fn with_classes(capacity: usize, class_sizes: &[usize]) -> Result<Self, ShmError> {
        Self::build(capacity, class_sizes, false, None)
    }

    /// [`SharedSegment::with_classes`] plus the **buddy tier** for
    /// variable-size workloads: any request that matches no class rounds
    /// up to the nearest power-of-two order and allocates from a
    /// lock-free per-order free queue (split/merge on miss/free), so
    /// AMR-style varying block sizes stay off the first-fit mutex.
    pub fn with_buddy(capacity: usize, class_sizes: &[usize]) -> Result<Self, ShmError> {
        Self::build(capacity, class_sizes, true, None)
    }

    /// Lay a segment over `capacity` bytes of a shared file mapping,
    /// starting at `base_offset` (both `BLOCK_ALIGN`-aligned multiples).
    ///
    /// The allocator state (free lists, class queues, refcounts) is
    /// process-local: this is the *writer's* view, carving blocks out of
    /// its own region of the file. Readers in other processes locate
    /// blocks by file offset (`base_offset + Block::offset()`) through
    /// their own [`crate::ShmFile`] mapping — the cross-process protocol
    /// (who may read when, and when a range is recycled) lives one layer
    /// up, in the event transport.
    pub fn over_mapping(
        shm: &Arc<crate::ShmFile>,
        base_offset: usize,
        capacity: usize,
        class_sizes: &[usize],
    ) -> Result<Self, ShmError> {
        let storage = Self::mapped_storage(shm, base_offset, capacity)?;
        Self::build(capacity, class_sizes, false, Some(storage))
    }

    /// [`SharedSegment::over_mapping`] with the buddy tier enabled (the
    /// process-mode analogue of [`SharedSegment::with_buddy`]).
    pub fn over_mapping_with_buddy(
        shm: &Arc<crate::ShmFile>,
        base_offset: usize,
        capacity: usize,
        class_sizes: &[usize],
    ) -> Result<Self, ShmError> {
        let storage = Self::mapped_storage(shm, base_offset, capacity)?;
        Self::build(capacity, class_sizes, true, Some(storage))
    }

    fn mapped_storage(
        shm: &Arc<crate::ShmFile>,
        base_offset: usize,
        capacity: usize,
    ) -> Result<Storage, ShmError> {
        if !base_offset.is_multiple_of(BLOCK_ALIGN) || !capacity.is_multiple_of(BLOCK_ALIGN) {
            return Err(ShmError::MapFailed(format!(
                "segment region ({base_offset}, {capacity}) not {BLOCK_ALIGN}-byte aligned"
            )));
        }
        if base_offset
            .checked_add(capacity)
            .is_none_or(|end| end > shm.len())
        {
            return Err(ShmError::MapFailed(format!(
                "segment region ({base_offset}, {capacity}) outside the {}-byte mapping",
                shm.len()
            )));
        }
        Ok(Storage::Mapped {
            shm: shm.clone(),
            base_offset,
        })
    }

    fn build(
        capacity: usize,
        class_sizes: &[usize],
        buddy: bool,
        storage: Option<Storage>,
    ) -> Result<Self, ShmError> {
        if capacity == 0 {
            return Err(ShmError::ZeroSize);
        }
        let capacity = round_up(capacity, BLOCK_ALIGN).ok_or(ShmError::RequestTooLarge {
            requested: capacity,
            capacity: usize::MAX - (BLOCK_ALIGN - 1),
        })?;
        let rounded: Vec<usize> = class_sizes
            .iter()
            .filter_map(|&s| {
                if s == 0 {
                    None
                } else {
                    round_up(s, BLOCK_ALIGN)
                }
            })
            .collect();
        let classes = if rounded.is_empty() {
            SizeClasses::none()
        } else {
            SizeClasses::new(capacity, &rounded)
        };
        let buddy = if buddy {
            BuddyTier::new(capacity)
        } else {
            BuddyTier::none()
        };
        let refcounts = (0..capacity / BLOCK_ALIGN)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(SharedSegment {
            inner: Arc::new(SegmentInner {
                storage: storage.unwrap_or_else(|| Storage::heap(capacity)),
                capacity,
                state: Mutex::new(FreeList::new(capacity)),
                classes,
                buddy,
                caches: Mutex::new(Vec::new()),
                refcounts,
                space_freed: Condvar::new(),
                waiters: AtomicUsize::new(0),
                release_gen: AtomicU64::new(0),
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                allocations: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                frees: AtomicU64::new(0),
                class_hits: AtomicU64::new(0),
            }),
        })
    }

    fn check_len(&self, len: usize) -> Result<usize, ShmError> {
        if len == 0 {
            return Err(ShmError::ZeroSize);
        }
        let alloc_len = round_up(len, BLOCK_ALIGN).ok_or(ShmError::RequestTooLarge {
            requested: len,
            capacity: self.inner.capacity,
        })?;
        if alloc_len > self.inner.capacity {
            return Err(ShmError::RequestTooLarge {
                requested: len,
                capacity: self.inner.capacity,
            });
        }
        Ok(alloc_len)
    }

    /// Allocate `len` bytes without blocking.
    ///
    /// Fails with [`ShmError::OutOfMemory`] when no free range fits the
    /// (align-rounded) request even after coalescing; this is the signal
    /// the iteration-skip policy listens for.
    pub fn allocate(&self, len: usize) -> Result<Block, ShmError> {
        let alloc_len = self.check_len(len)?;
        // Lock-free fast paths: exact size-class hit, then the buddy
        // tier's order queues (split included) for everything else.
        if let Some(ci) = self.inner.classes.index_of(alloc_len) {
            if let Some(offset) = self.inner.classes.pop(ci) {
                self.note_alloc(alloc_len);
                self.inner.class_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(self.block(offset, len, alloc_len));
            }
        }
        let buddy_oi = self.inner.buddy.order_index(alloc_len);
        if let Some(oi) = buddy_oi {
            let mut spill = Vec::new();
            let popped = self.inner.buddy.alloc(oi, &mut spill);
            let mut size = self.inner.buddy.size_of(oi);
            if let (Some(offset), Some(tq)) = (popped, self.inner.buddy.tq_len(oi, alloc_len)) {
                // Three-quarter fit: hand the parent's top quarter
                // straight back, capping internal fragmentation at ~33 %.
                self.inner.buddy.trim_tq(offset, oi, &mut spill);
                size = tq;
            }
            self.inner.dispose_spill(spill);
            if let Some(offset) = popped {
                self.note_alloc(size);
                self.inner.buddy.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(self.block(offset, len, size));
            }
        }
        let mut fl = self.inner.state.lock();
        match self.inner.alloc_locked(&mut fl, alloc_len, buddy_oi) {
            Some((offset, alloc_len)) => {
                drop(fl);
                self.note_alloc(alloc_len);
                Ok(self.block(offset, len, alloc_len))
            }
            None => {
                let free = fl.total_free();
                drop(fl);
                self.inner.failures.fetch_add(1, Ordering::Relaxed);
                Err(ShmError::OutOfMemory {
                    requested: len,
                    free,
                })
            }
        }
    }

    /// Allocate, blocking until space frees up or `timeout` expires
    /// (`None` = wait forever).
    pub fn allocate_blocking(
        &self,
        len: usize,
        timeout: Option<Duration>,
    ) -> Result<Block, ShmError> {
        let alloc_len = self.check_len(len)?;
        // Lock-free fast paths first, exactly as in `allocate` — blocking
        // mode must not serialize class or buddy hits on the free-list
        // mutex.
        if let Some(ci) = self.inner.classes.index_of(alloc_len) {
            if let Some(offset) = self.inner.classes.pop(ci) {
                self.note_alloc(alloc_len);
                self.inner.class_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(self.block(offset, len, alloc_len));
            }
        }
        let buddy_oi = self.inner.buddy.order_index(alloc_len);
        if let Some(oi) = buddy_oi {
            let mut spill = Vec::new();
            let popped = self.inner.buddy.alloc(oi, &mut spill);
            let mut size = self.inner.buddy.size_of(oi);
            if let (Some(offset), Some(tq)) = (popped, self.inner.buddy.tq_len(oi, alloc_len)) {
                self.inner.buddy.trim_tq(offset, oi, &mut spill);
                size = tq;
            }
            self.inner.dispose_spill(spill);
            if let Some(offset) = popped {
                self.note_alloc(size);
                self.inner.buddy.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(self.block(offset, len, size));
            }
        }
        // A timeout so large it overflows the clock means: wait forever.
        let deadline = timeout.and_then(|t| std::time::Instant::now().checked_add(t));
        let mut fl = self.inner.state.lock();
        loop {
            // Eventcount wait side: read the generation *before*
            // re-checking the tiers. If a release lands after the checks,
            // the generation no longer matches below and the sleep is
            // skipped entirely.
            let gen = self.inner.release_gen.load(Ordering::SeqCst);
            if let Some(ci) = self.inner.classes.index_of(alloc_len) {
                if let Some(offset) = self.inner.classes.pop(ci) {
                    drop(fl);
                    self.note_alloc(alloc_len);
                    self.inner.class_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(self.block(offset, len, alloc_len));
                }
            }
            if let Some(oi) = buddy_oi {
                // Holding `fl` already, so spills coalesce in place.
                let mut spill = Vec::new();
                let popped = self.inner.buddy.alloc(oi, &mut spill);
                let mut size = self.inner.buddy.size_of(oi);
                if let (Some(offset), Some(tq)) = (popped, self.inner.buddy.tq_len(oi, alloc_len)) {
                    self.inner.buddy.trim_tq(offset, oi, &mut spill);
                    size = tq;
                }
                for (off, spilled_len) in spill {
                    fl.free(off, spilled_len);
                }
                if let Some(offset) = popped {
                    drop(fl);
                    self.note_alloc(size);
                    self.inner.buddy.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(self.block(offset, len, size));
                }
            }
            if let Some((offset, alloc_len)) = self.inner.alloc_locked(&mut fl, alloc_len, buddy_oi)
            {
                drop(fl);
                self.note_alloc(alloc_len);
                return Ok(self.block(offset, len, alloc_len));
            }
            let wait_until = std::time::Instant::now() + BLOCKED_ALLOC_FAILSAFE;
            let wake_at = match deadline {
                Some(d) if d < wait_until => d,
                _ => wait_until,
            };
            self.inner.waiters.fetch_add(1, Ordering::SeqCst);
            // Releases since the generation read are handled by retrying
            // immediately; otherwise the registered waiter count makes
            // the next `signal_release` take the lock and notify, which
            // cannot race ahead of the `wait` below (we still hold `fl`).
            // SeqCst on the register and re-read is required (Dekker with
            // `signal_release`): `eventcount_no_lost_wakeup` proves the
            // protocol, and `seeded_relaxed_gen_bug_is_caught` shows this
            // exact load at Relaxed sleeping through a lost wakeup
            // (crates/check/tests/models.rs).
            let timed_out = if self.inner.release_gen.load(Ordering::SeqCst) == gen {
                self.inner
                    .space_freed
                    .wait_until(&mut fl, wake_at)
                    .timed_out()
            } else {
                false
            };
            self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return Err(ShmError::Timeout);
                    }
                }
            }
        }
    }

    fn block(&self, offset: usize, len: usize, alloc_len: usize) -> Block {
        Block {
            seg: self.inner.clone(),
            offset,
            len,
            alloc_len,
        }
    }

    fn note_alloc(&self, alloc_len: usize) {
        let used = self.inner.used.fetch_add(alloc_len, Ordering::Relaxed) + alloc_len;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        self.inner.allocations.fetch_add(1, Ordering::Relaxed);
    }

    // ----- slab-cache hooks (crate-internal) -------------------------------

    /// Register a slab cache's slot array so the pressure path can raid
    /// its reservations.
    pub(crate) fn register_cache(&self, slots: std::sync::Weak<CacheSlots>) {
        self.inner.caches.lock().push(slots);
    }

    /// Number of configured size classes.
    pub(crate) fn class_count(&self) -> usize {
        self.inner.classes.len()
    }

    /// Index of the class serving exactly `alloc_len` bytes.
    pub(crate) fn class_index(&self, alloc_len: usize) -> Option<usize> {
        self.inner.classes.index_of(alloc_len)
    }

    /// Byte size served by class `ci`.
    pub(crate) fn class_size(&self, ci: usize) -> usize {
        self.inner.classes.size(ci)
    }

    /// Pop an offset from class `ci` and account its bytes as used
    /// (reserved for a cache; not yet an allocation).
    pub(crate) fn class_pop_reserved(&self, ci: usize) -> Option<usize> {
        let offset = self.inner.classes.pop(ci)?;
        let size = self.inner.classes.size(ci);
        let used = self.inner.used.fetch_add(size, Ordering::Relaxed) + size;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        Some(offset)
    }

    /// Carve a fresh range for class `ci` straight from the first-fit
    /// list and account it as used (reserved for a cache; not yet an
    /// allocation). Used by [`crate::SlabCache::prewarm`] to seed caches
    /// at node-build time, before any block has been freed into the class
    /// queues. Best-effort: `None` when the segment cannot spare the
    /// bytes (more than half the capacity already committed).
    pub(crate) fn carve_reserved(&self, ci: usize) -> Option<usize> {
        let size = self.inner.classes.size(ci);
        if self.inner.used.load(Ordering::Relaxed).saturating_add(size) > self.inner.capacity / 2 {
            return None;
        }
        let mut fl = self.inner.state.lock();
        let offset = fl.allocate(size)?;
        drop(fl);
        let used = self.inner.used.fetch_add(size, Ordering::Relaxed) + size;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        Some(offset)
    }

    /// Turn a reserved offset into a live [`Block`] (bytes already counted
    /// as used by [`SharedSegment::class_pop_reserved`]).
    pub(crate) fn adopt_reserved(&self, ci: usize, offset: usize, len: usize) -> Block {
        let alloc_len = self.inner.classes.size(ci);
        debug_assert!(len <= alloc_len);
        self.inner.allocations.fetch_add(1, Ordering::Relaxed);
        self.inner.class_hits.fetch_add(1, Ordering::Relaxed);
        self.block(offset, len, alloc_len)
    }

    /// Give a reserved offset back to the shared pool (cache drop/overflow).
    pub(crate) fn return_reserved(&self, ci: usize, offset: usize) {
        let size = self.inner.classes.size(ci);
        self.inner.used.fetch_sub(size, Ordering::Relaxed);
        if self.inner.classes.push(ci, offset) {
            self.inner.signal_release();
            return;
        }
        let mut fl = self.inner.state.lock();
        fl.free(offset, size);
        drop(fl);
        self.inner.signal_release();
    }

    // ----- buddy-tier hooks (crate-internal) -------------------------------

    /// Number of configured buddy orders (0 = tier disabled).
    pub(crate) fn buddy_order_count(&self) -> usize {
        self.inner.buddy.order_count()
    }

    /// Order-index serving `alloc_len` bytes, if the buddy tier can.
    pub(crate) fn buddy_order_index(&self, alloc_len: usize) -> Option<usize> {
        self.inner.buddy.order_index(alloc_len)
    }

    /// Allocate one order-`oi` block from the order queues (splitting a
    /// larger free block if needed) and account its bytes as used
    /// (reserved for a magazine; not yet an allocation).
    pub(crate) fn buddy_alloc_reserved(&self, oi: usize) -> Option<usize> {
        let mut spill = Vec::new();
        let popped = self.inner.buddy.alloc(oi, &mut spill);
        self.inner.dispose_spill(spill);
        let offset = popped?;
        let size = self.inner.buddy.size_of(oi);
        let used = self.inner.used.fetch_add(size, Ordering::Relaxed) + size;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        Some(offset)
    }

    /// Pop one free block of exactly order `oi` (no splitting) and
    /// account it as used — the magazine warm path.
    pub(crate) fn buddy_pop_exact_reserved(&self, oi: usize) -> Option<usize> {
        let offset = self.inner.buddy.pop_exact(oi)?;
        let size = self.inner.buddy.size_of(oi);
        let used = self.inner.used.fetch_add(size, Ordering::Relaxed) + size;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        Some(offset)
    }

    /// Turn a reserved buddy offset into a live [`Block`] (bytes already
    /// counted as used). When the request fits in three quarters of the
    /// reserved order, the top quarter is trimmed back to the free pool
    /// and the used accounting is adjusted down.
    pub(crate) fn adopt_buddy_reserved(
        &self,
        oi: usize,
        offset: usize,
        len: usize,
        request_len: usize,
    ) -> Block {
        let full = self.inner.buddy.size_of(oi);
        debug_assert!(len <= full);
        let alloc_len = match self.inner.buddy.tq_len(oi, request_len) {
            Some(tq) => {
                let mut spill = Vec::new();
                self.inner.buddy.trim_tq(offset, oi, &mut spill);
                self.inner.dispose_spill(spill);
                self.inner.used.fetch_sub(full - tq, Ordering::Relaxed);
                self.inner.signal_release();
                tq
            }
            None => full,
        };
        self.inner.allocations.fetch_add(1, Ordering::Relaxed);
        self.inner.buddy.hits.fetch_add(1, Ordering::Relaxed);
        self.block(offset, len, alloc_len)
    }

    /// Give a reserved buddy offset back to the shared pool (magazine
    /// drop/overflow).
    pub(crate) fn return_buddy_reserved(&self, oi: usize, offset: usize) {
        let size = self.inner.buddy.size_of(oi);
        self.inner.used.fetch_sub(size, Ordering::Relaxed);
        let mut spill = Vec::new();
        self.inner.buddy.free_into(offset, oi, &mut spill);
        self.inner.dispose_spill(spill);
        self.inner.signal_release();
    }

    // -----------------------------------------------------------------------

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated (alignment-rounded, including slab-cache
    /// reservations).
    pub fn used_bytes(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Fraction of the segment currently allocated, in `[0, 1]` — one
    /// atomic load, O(1) regardless of allocator tier.
    pub fn occupancy(&self) -> f64 {
        self.used_bytes() as f64 / self.inner.capacity as f64
    }

    /// Largest single allocation currently possible (contiguity-aware).
    ///
    /// Drains the size-class queues into the coalescing list first, so the
    /// answer reflects every free byte; intended for diagnostics and
    /// tests, not hot paths.
    pub fn largest_free_block(&self) -> usize {
        let mut fl = self.inner.state.lock();
        for (off, len) in self.inner.classes.drain() {
            fl.free(off, len);
        }
        for (off, len) in self.inner.buddy.drain() {
            fl.free(off, len);
        }
        fl.largest_hole()
    }

    /// Snapshot of lifetime counters.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            capacity: self.inner.capacity,
            used: self.inner.used.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
            allocations: self.inner.allocations.load(Ordering::Relaxed),
            failures: self.inner.failures.load(Ordering::Relaxed),
            frees: self.inner.frees.load(Ordering::Relaxed),
            class_hits: self.inner.class_hits.load(Ordering::Relaxed),
            buddy_hits: self.inner.buddy.hits.load(Ordering::Relaxed),
            buddy_tq_hits: self.inner.buddy.tq_hits.load(Ordering::Relaxed),
            buddy_splits: self.inner.buddy.splits.load(Ordering::Relaxed),
            buddy_merges: self.inner.buddy.merges.load(Ordering::Relaxed),
        }
    }
}

/// A uniquely-owned, writable allocation inside a [`SharedSegment`].
///
/// Dropping a `Block` without freezing it returns the space immediately
/// (used when a client aborts mid-write).
pub struct Block {
    seg: Arc<SegmentInner>,
    offset: usize,
    len: usize,
    alloc_len: usize,
}

impl Block {
    /// Requested length in bytes (what `freeze` exposes to readers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block has zero requested length (never true in practice;
    /// zero-size allocations are rejected).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte offset of this block inside the segment (useful for debugging
    /// and for the allocator property tests).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Exclusive access to the block's bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: the allocator guarantees [offset, offset+alloc_len) is not
        // shared with any other live Block/BlockRef, and `&mut self` makes
        // this the only access path right now.
        unsafe {
            std::slice::from_raw_parts_mut(self.seg.storage.base().add(self.offset), self.len)
        }
    }

    /// Copy `src` into the beginning of the block.
    ///
    /// Panics if `src` is longer than the block — that is a logic error in
    /// the caller (layout mismatch), not a runtime condition.
    pub fn write_bytes(&mut self, src: &[u8]) {
        assert!(
            src.len() <= self.len,
            "write of {} bytes into a {}-byte block",
            src.len(),
            self.len
        );
        self.as_mut_slice()[..src.len()].copy_from_slice(src);
    }

    /// Copy a typed slice into the block (the single memcpy of the Damaris
    /// write path).
    pub fn write_pod<T: Pod>(&mut self, src: &[T]) {
        // SAFETY: Pod types have no padding and no invalid bit patterns.
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        self.write_bytes(bytes);
    }

    /// Consume the writable block, producing a shareable read-only handle.
    ///
    /// Allocation-free: the reference count lives in the segment's slot
    /// table, not in a fresh heap cell, so the steady-state write path
    /// never touches the global allocator.
    pub fn freeze(self) -> BlockRef {
        let this = ManuallyDrop::new(self);
        this.seg.refcounts[this.offset / BLOCK_ALIGN].store(1, Ordering::Release);
        BlockRef {
            // SAFETY: `this` is ManuallyDrop, so the Arc is moved out
            // exactly once and the Block's Drop (which would release the
            // range) never runs.
            seg: unsafe { std::ptr::read(&this.seg) },
            offset: this.offset,
            len: this.len,
            alloc_len: this.alloc_len,
        }
    }
}

impl Drop for Block {
    fn drop(&mut self) {
        self.seg.release(self.offset, self.alloc_len);
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// An immutable, reference-counted view of a frozen block.
///
/// Clones share the same bytes; the space returns to the allocator when the
/// last clone is dropped. This is what flows through the event transport to
/// the dedicated core and on to plugins — no copies anywhere. The count
/// lives in the segment's per-slot table, so cloning and dropping are plain
/// atomic ops with no heap traffic.
pub struct BlockRef {
    seg: Arc<SegmentInner>,
    offset: usize,
    len: usize,
    alloc_len: usize,
}

impl Clone for BlockRef {
    fn clone(&self) -> Self {
        let old = self.seg.refcounts[self.offset / BLOCK_ALIGN].fetch_add(1, Ordering::Relaxed);
        debug_assert!(old > 0, "cloning a dead BlockRef");
        BlockRef {
            seg: self.seg.clone(),
            offset: self.offset,
            len: self.len,
            alloc_len: self.alloc_len,
        }
    }
}

impl Drop for BlockRef {
    fn drop(&mut self) {
        if self.seg.refcounts[self.offset / BLOCK_ALIGN].fetch_sub(1, Ordering::Release) == 1 {
            // Pair with the Release decrements of other clones before the
            // range is handed back for reuse.
            fence(Ordering::Acquire);
            self.seg.release(self.offset, self.alloc_len);
        }
    }
}

impl BlockRef {
    /// The block's bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: frozen blocks are never written again; the range stays
        // allocated while any BlockRef clone is alive.
        unsafe { std::slice::from_raw_parts(self.seg.storage.base().add(self.offset), self.len) }
    }

    /// Reinterpret the bytes as a typed slice.
    ///
    /// Panics if the length is not a multiple of `size_of::<T>()` —
    /// a layout/type mismatch between writer and reader.
    pub fn as_pod<T: Pod>(&self) -> &[T] {
        let size = std::mem::size_of::<T>();
        assert_eq!(
            self.len % size,
            0,
            "block of {} bytes is not a whole number of {}-byte elements",
            self.len,
            size
        );
        debug_assert_eq!(self.offset % BLOCK_ALIGN, 0);
        // SAFETY: base is 16-byte aligned, offsets are BLOCK_ALIGN-multiples,
        // so the pointer is aligned for any Pod; Pod types accept any bits.
        unsafe {
            std::slice::from_raw_parts(
                self.seg.storage.base().add(self.offset) as *const T,
                self.len / size,
            )
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte offset inside the segment.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl std::fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRef")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// Round `n` up to a multiple of `align`; `None` on overflow (satellite
/// fix: a near-`usize::MAX` request must surface as `RequestTooLarge`,
/// not overflow the arithmetic).
fn round_up(n: usize, align: usize) -> Option<usize> {
    n.checked_add(align - 1).map(|v| v / align * align)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_freeze_read() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(32).unwrap();
        b.write_pod(&[1.5f64, 2.5, 3.5, 4.5]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<f64>(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(r.len(), 32);
    }

    #[test]
    fn drop_returns_space() {
        let seg = SharedSegment::new(4096).unwrap();
        let b = seg.allocate(100).unwrap();
        assert_eq!(seg.used_bytes(), 128); // rounded to BLOCK_ALIGN
        drop(b);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), 4096);
    }

    #[test]
    fn frozen_clones_share_until_last_drop() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[7u8; 64]);
        let r1 = b.freeze();
        let r2 = r1.clone();
        drop(r1);
        assert_eq!(seg.used_bytes(), 64, "still referenced by r2");
        assert_eq!(r2.as_slice()[63], 7);
        drop(r2);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn zero_and_oversize_rejected() {
        let seg = SharedSegment::new(1024).unwrap();
        match seg.allocate(0) {
            Err(ShmError::ZeroSize) => {}
            other => panic!("unexpected: {other:?}"),
        }
        match seg.allocate(4096) {
            Err(ShmError::RequestTooLarge {
                requested,
                capacity,
            }) => {
                assert_eq!(requested, 4096);
                assert_eq!(capacity, 1024);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn near_max_request_is_rejected_not_overflowed() {
        // Satellite fix: `round_up(usize::MAX - k)` used to overflow in
        // debug builds; it must report RequestTooLarge instead.
        let seg = SharedSegment::new(1024).unwrap();
        for req in [usize::MAX, usize::MAX - 1, usize::MAX - BLOCK_ALIGN + 1] {
            match seg.allocate(req) {
                Err(ShmError::RequestTooLarge { requested, .. }) => assert_eq!(requested, req),
                other => panic!("unexpected: {other:?}"),
            }
            match seg.allocate_blocking(req, Some(Duration::from_millis(1))) {
                Err(ShmError::RequestTooLarge { .. }) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        // A capacity that cannot be rounded is equally rejected.
        assert!(SharedSegment::new(usize::MAX - 2).is_err());
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let seg = SharedSegment::new(256).unwrap();
        let _a = seg.allocate(128).unwrap();
        let _b = seg.allocate(128).unwrap();
        match seg.allocate(64) {
            Err(ShmError::OutOfMemory { free, .. }) => assert_eq!(free, 0),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(seg.stats().failures, 1);
    }

    #[test]
    fn fragmentation_and_coalescing() {
        let seg = SharedSegment::new(64 * 4).unwrap();
        let a = seg.allocate(64).unwrap();
        let b = seg.allocate(64).unwrap();
        let c = seg.allocate(64).unwrap();
        let d = seg.allocate(64).unwrap();
        // Free b and d: two separate 64-byte holes.
        drop(b);
        drop(d);
        assert_eq!(seg.largest_free_block(), 64);
        assert!(seg.allocate(128).is_err(), "fragmented: no contiguous 128");
        // Free c: holes b+c+d coalesce into 192.
        drop(c);
        assert_eq!(seg.largest_free_block(), 192);
        let big = seg.allocate(128).unwrap();
        drop(big);
        drop(a);
        assert_eq!(seg.largest_free_block(), 256);
    }

    #[test]
    fn class_hit_reuses_offset_without_lock_contention() {
        let seg = SharedSegment::with_classes(4096, &[512]).unwrap();
        let b = seg.allocate(512).unwrap();
        let first_offset = b.offset();
        drop(b); // returns to the class queue, not the free list
        let b2 = seg.allocate(512).unwrap();
        assert_eq!(b2.offset(), first_offset, "class queue recycled the slot");
        assert_eq!(seg.stats().class_hits, 1, "second allocation was a hit");
        drop(b2);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), 4096, "drain coalesces fully");
    }

    #[test]
    fn class_miss_falls_back_and_flushes_under_pressure() {
        // Two 512-byte blocks fill the segment; both return to the class
        // queue. A 1024-byte request has no class and the free list is
        // empty — the allocator must drain the class queues, coalesce,
        // and satisfy it.
        let seg = SharedSegment::with_classes(1024, &[512]).unwrap();
        let a = seg.allocate(512).unwrap();
        let b = seg.allocate(512).unwrap();
        drop(a);
        drop(b);
        let big = seg.allocate(1024).expect("coalesced after class drain");
        drop(big);
    }

    #[test]
    fn classed_segment_odd_sizes_use_free_list() {
        let seg = SharedSegment::with_classes(4096, &[512]).unwrap();
        let odd = seg.allocate(100).unwrap(); // no 128-byte class
        assert_eq!(seg.stats().class_hits, 0);
        drop(odd);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn blocking_allocation_wakes_on_free() {
        let seg = SharedSegment::new(256).unwrap();
        let hog = seg.allocate(256).unwrap();
        let seg2 = seg.clone();
        let waiter = std::thread::spawn(move || {
            seg2.allocate_blocking(64, Some(Duration::from_secs(5)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(hog);
        let block = waiter.join().unwrap();
        assert_eq!(block.len(), 64);
    }

    #[test]
    fn blocking_allocation_wakes_on_class_release() {
        // The hog's release goes to the lock-free class queue; the blocked
        // waiter (of the same class size) must still obtain it.
        let seg = SharedSegment::with_classes(256, &[256]).unwrap();
        let hog = seg.allocate(256).unwrap();
        let seg2 = seg.clone();
        let waiter = std::thread::spawn(move || {
            seg2.allocate_blocking(256, Some(Duration::from_secs(5)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(hog);
        let block = waiter.join().unwrap();
        assert_eq!(block.len(), 256);
    }

    #[test]
    fn blocked_allocation_wakes_sub_millisecond() {
        // The eventcount handshake must wake a blocked allocation on the
        // release itself, not on the failsafe poll (the old 20 ms
        // BLOCKED_ALLOC_POLL tail). The release under test is the
        // lock-free class-queue push — the path that used to rely on the
        // poll. Scheduling noise on a loaded CI box can stretch any one
        // wakeup, so the bound is on the best of several trials.
        let mut best = Duration::from_secs(1);
        for _ in 0..5 {
            let seg = SharedSegment::with_classes(256, &[256]).unwrap();
            let hog = seg.allocate(256).unwrap();
            let seg2 = seg.clone();
            let (tx, rx) = std::sync::mpsc::channel();
            let waiter = std::thread::spawn(move || {
                tx.send(()).unwrap();
                seg2.allocate_blocking(256, Some(Duration::from_secs(5)))
                    .map(|b| (b.len(), std::time::Instant::now()))
            });
            rx.recv().unwrap();
            // Give the waiter time to actually park on the condvar.
            std::thread::sleep(Duration::from_millis(20));
            let released_at = std::time::Instant::now();
            drop(hog);
            let (len, woke_at) = waiter.join().unwrap().expect("waiter must get the block");
            assert_eq!(len, 256);
            best = best.min(woke_at.duration_since(released_at));
        }
        assert!(
            best < Duration::from_millis(1),
            "best-of-5 wakeup latency {best:?} is not sub-millisecond"
        );
    }

    #[test]
    fn blocking_allocation_times_out() {
        let seg = SharedSegment::new(256).unwrap();
        let _hog = seg.allocate(256).unwrap();
        let err = seg
            .allocate_blocking(64, Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err, ShmError::Timeout);
    }

    #[test]
    fn occupancy_and_peak_track() {
        let seg = SharedSegment::new(1000).unwrap(); // rounds to 1024
        assert_eq!(seg.capacity(), 1024);
        let a = seg.allocate(512).unwrap();
        assert!((seg.occupancy() - 0.5).abs() < 1e-9);
        drop(a);
        assert_eq!(seg.occupancy(), 0.0);
        assert_eq!(seg.stats().peak, 512);
        assert_eq!(seg.stats().allocations, 1);
        assert_eq!(seg.stats().frees, 1);
    }

    #[test]
    fn write_bytes_shorter_than_block_ok() {
        let seg = SharedSegment::new(256).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[1, 2, 3]);
        let r = b.freeze();
        assert_eq!(&r.as_slice()[..3], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "write of 128 bytes into a 64-byte block")]
    fn write_overflow_panics() {
        let seg = SharedSegment::new(256).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[0u8; 128]);
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn as_pod_misaligned_length_panics() {
        let seg = SharedSegment::new(256).unwrap();
        let b = seg.allocate(12).unwrap();
        let r = b.freeze();
        let _ = r.as_pod::<f64>(); // 12 % 8 != 0
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let seg = SharedSegment::new(1 << 16).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let seg = seg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let size = 64 + (i % 7) * 64;
                    let mut b = match seg.allocate_blocking(size, Some(Duration::from_secs(10))) {
                        Ok(b) => b,
                        Err(e) => panic!("thread {t}: {e}"),
                    };
                    b.as_mut_slice().fill(t);
                    let r = b.freeze();
                    assert!(r.as_slice().iter().all(|&x| x == t), "corruption detected");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn concurrent_classed_alloc_free_stress() {
        // Same stress, but with every size a class: alloc/free races go
        // through the lock-free queues.
        let sizes: Vec<usize> = (1..8).map(|k| k * 64).collect();
        let seg = SharedSegment::with_classes(1 << 16, &sizes).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let seg = seg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let size = 64 + (i % 7) * 64;
                    let mut b = seg
                        .allocate_blocking(size, Some(Duration::from_secs(10)))
                        .unwrap();
                    b.as_mut_slice().fill(t);
                    let r = b.freeze();
                    assert!(r.as_slice().iter().all(|&x| x == t), "corruption detected");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
        assert!(seg.stats().class_hits > 0, "classes actually served hits");
    }

    #[test]
    fn segment_over_mapping_shares_bytes() {
        // A classed segment laid over a slice of a shared file mapping:
        // blocks written through the segment must be readable — at
        // base_offset + block offset — through an independent mapping of
        // the same file, exactly as a second process would see them.
        let path = crate::ShmFile::default_dir()
            .join(format!("damaris-seg-map-test-{}", std::process::id()));
        let shm = Arc::new(crate::ShmFile::create(&path, 8192).unwrap());
        let base = 4096;
        let seg = SharedSegment::over_mapping(&shm, base, 4096, &[512]).unwrap();
        let mut b = seg.allocate(512).unwrap();
        b.write_pod(&[7.5f64; 64]);
        let file_offset = base + b.offset();
        let r = b.freeze();
        let other = crate::ShmFile::open(&path).unwrap();
        assert_eq!(other.read_at(file_offset, 512), r.as_slice());
        other.with_bytes(file_offset, 512, |bytes| {
            assert!(bytes.chunks_exact(8).all(|c| c == 7.5f64.to_le_bytes()));
        });
        drop(r);
        assert_eq!(seg.used_bytes(), 0);
        // Misaligned or out-of-range regions are rejected.
        assert!(SharedSegment::over_mapping(&shm, 8, 4096, &[]).is_err());
        assert!(SharedSegment::over_mapping(&shm, 4096, 8192, &[]).is_err());
    }

    #[test]
    fn typed_roundtrip_various_types() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(16).unwrap();
        b.write_pod(&[1u32, 2, 3, 4]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<u32>(), &[1, 2, 3, 4]);

        let mut b = seg.allocate(8).unwrap();
        b.write_pod(&[-5i16, 6, -7, 8]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<i16>(), &[-5, 6, -7, 8]);
    }

    #[test]
    fn slab_cache_round_trips_blocks() {
        let seg = SharedSegment::with_classes(1 << 14, &[512]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        let b = cache.allocate(512).unwrap();
        let off = b.offset();
        drop(b);
        // The freed offset sits in the shared class queue; the cache pulls
        // it (and accounts it as used while held).
        let b2 = cache.allocate(512).unwrap();
        assert_eq!(b2.offset(), off);
        drop(b2);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0, "cache drop returns reservations");
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn pressure_raids_idle_slab_caches() {
        // A reservation parked in a (now idle) client's cache must not
        // strand memory: an allocation that would otherwise fail reclaims
        // it through the raid tier.
        let seg = SharedSegment::with_classes(512, &[256]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        let a = cache.allocate(256).unwrap();
        let b = cache.allocate(256).unwrap();
        drop(a);
        drop(b); // both offsets now in the shared class queue
        let block = cache.allocate(256).unwrap(); // pops one, warm-stashes the other
        drop(block); // queue holds one, cache holds one (counted as used)
        assert_eq!(seg.used_bytes(), 256, "one reservation parked");
        // 512 bytes need the queued block AND the cached one, coalesced.
        let big = seg.allocate(512).expect("raid reclaims cached reservation");
        assert_eq!(big.len(), 512);
        drop(big);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), 512);
    }

    #[test]
    fn buddy_odd_sizes_recycle_lock_free() {
        // An odd size (no class) rounds to its power-of-two order; after
        // the first carve, free → allocate of the same size is a pure
        // order-queue round trip (a buddy hit), reusing the offset.
        let seg = SharedSegment::with_buddy(1 << 14, &[512]).unwrap();
        let b = seg.allocate(100).unwrap(); // order 7 (128 bytes)
        assert_eq!(seg.used_bytes(), 128, "rounded to the buddy order");
        assert!(b.offset().is_multiple_of(128), "buddy blocks size-aligned");
        let first = b.offset();
        drop(b);
        let b2 = seg.allocate(100).unwrap();
        assert_eq!(b2.offset(), first, "order queue recycled the block");
        let s = seg.stats();
        assert_eq!(s.buddy_hits, 1, "second allocation was a buddy hit");
        assert_eq!(s.class_hits, 0, "classes untouched by odd sizes");
        drop(b2);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_class_sizes_still_use_classes() {
        // Exact class matches keep their dedicated queues even with the
        // buddy tier enabled.
        let seg = SharedSegment::with_buddy(1 << 14, &[512]).unwrap();
        let a = seg.allocate(512).unwrap();
        drop(a);
        let b = seg.allocate(512).unwrap();
        assert_eq!(seg.stats().class_hits, 1);
        assert_eq!(seg.stats().buddy_hits, 0);
        drop(b);
    }

    #[test]
    fn buddy_splits_and_merges_siblings() {
        let seg = SharedSegment::with_buddy(1 << 14, &[]).unwrap();
        // First odd allocation carves one order up and splits, parking
        // the sibling in the order queue.
        let b = seg.allocate(100).unwrap();
        assert_eq!(seg.stats().buddy_splits, 1, "carve split the double");
        // Freeing rejoins the sibling: the pair merges back into the
        // parent, which then serves a double-size request lock-free.
        drop(b);
        assert_eq!(seg.stats().buddy_merges, 1, "free merged the pair");
        let big = seg.allocate(200).unwrap(); // order 8 (256 bytes)
        assert_eq!(seg.stats().buddy_hits, 1, "merged parent served it");
        drop(big);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_three_quarter_fit_trims_and_remerges() {
        // 1244 rounds to 1280, one order below 2048: the three-quarter
        // family serves it as 1536 (1024 + 512), handing the top quarter
        // straight back instead of wasting it.
        let seg = SharedSegment::with_buddy(1 << 14, &[]).unwrap();
        let b = seg.allocate(1244).unwrap();
        assert_eq!(seg.used_bytes(), 1536, "3/4 of the 2048 order");
        assert_eq!(seg.stats().buddy_tq_hits, 1, "trim counted");
        // The trimmed quarter is immediately allocatable.
        let q = seg.allocate(500).unwrap();
        assert_eq!(seg.used_bytes(), 1536 + 512);
        drop(q);
        // Releasing decomposes half + quarter and merges all the way
        // back to the root hole.
        drop(b);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_three_quarter_fit_round_trips_through_slab_cache() {
        // The per-order magazine reserves the full parent; adoption must
        // trim the quarter and adjust the used accounting back down.
        let seg = SharedSegment::with_buddy(1 << 14, &[]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        let b = cache.allocate(1244).unwrap();
        assert_eq!(b.len(), 1244);
        assert_eq!(seg.stats().buddy_tq_hits, 1);
        drop(b);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0, "cache drop returns reservations");
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_zero_and_near_max_rejected() {
        // Satellite fix: the buddy order computation must not overflow —
        // zero-length and near-usize::MAX requests surface as the same
        // typed errors the classed path reports.
        let seg = SharedSegment::with_buddy(4096, &[]).unwrap();
        match seg.allocate(0) {
            Err(ShmError::ZeroSize) => {}
            other => panic!("unexpected: {other:?}"),
        }
        for req in [usize::MAX, usize::MAX - 1, (usize::MAX >> 1) + 2] {
            match seg.allocate(req) {
                Err(ShmError::RequestTooLarge { requested, .. }) => assert_eq!(requested, req),
                other => panic!("unexpected: {other:?}"),
            }
            match seg.allocate_blocking(req, Some(Duration::from_millis(1))) {
                Err(ShmError::RequestTooLarge { .. }) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn buddy_request_beyond_largest_order_uses_free_list() {
        // Capacity 6144 is not a power of two: the largest order is 4096,
        // so a 5000-byte request cannot round into any order and must be
        // served (64-byte-rounded, unaligned) by first-fit.
        let seg = SharedSegment::with_buddy(6144, &[]).unwrap();
        let b = seg.allocate(5000).unwrap();
        assert_eq!(seg.used_bytes(), 5056, "64-rounded, not power-of-two");
        assert_eq!(seg.stats().buddy_hits, 0);
        drop(b);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_pressure_drains_order_queues() {
        // Odd blocks fill the segment through the buddy tier; a request
        // needing the whole capacity must drain the order queues back
        // into the coalescing list and succeed.
        let seg = SharedSegment::with_buddy(4096, &[]).unwrap();
        let blocks: Vec<_> = (0..4).map(|_| seg.allocate(1000).unwrap()).collect();
        assert!(seg.allocate(1000).is_err(), "segment genuinely full");
        drop(blocks);
        let whole = seg.allocate(4096).expect("drain + coalesce serves it");
        drop(whole);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn slab_cache_buddy_magazine_round_trips() {
        let seg = SharedSegment::with_buddy(1 << 14, &[]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        let b = cache.allocate(100).unwrap();
        let off = b.offset();
        drop(b);
        // The freed block sits in the shared order queue; the magazine
        // pulls it (accounted used while parked) and serves repeats from
        // the local slot.
        let b2 = cache.allocate(100).unwrap();
        assert_eq!(b2.offset(), off);
        assert!(seg.stats().buddy_hits >= 1);
        drop(b2);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0, "cache drop returns reservations");
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn buddy_concurrent_mixed_size_stress() {
        // AMR-shaped churn: every thread allocates a different odd size
        // per step. Disjointness is asserted by data integrity; the
        // segment must come back empty and fully merged.
        let seg = SharedSegment::with_buddy(1 << 16, &[]).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let seg = seg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let size = 48 + ((i * 37 + t as usize * 211) % 900);
                    let mut b = seg
                        .allocate_blocking(size, Some(Duration::from_secs(10)))
                        .unwrap();
                    b.as_mut_slice().fill(t);
                    let r = b.freeze();
                    assert!(r.as_slice().iter().all(|&x| x == t), "corruption detected");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
        let s = seg.stats();
        assert!(s.buddy_hits > 0, "order queues actually served hits");
        assert!(s.buddy_merges > 0, "frees merged buddies");
    }

    #[test]
    fn slab_cache_falls_back_for_odd_sizes() {
        let seg = SharedSegment::with_classes(1 << 14, &[512]).unwrap();
        let cache = crate::SlabCache::new(&seg);
        let b = cache.allocate(100).unwrap();
        drop(b);
        drop(cache);
        assert_eq!(seg.used_bytes(), 0);
    }
}
