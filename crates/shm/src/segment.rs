//! Fixed-capacity shared segment with a first-fit, coalescing free-list
//! allocator.
//!
//! The allocator is the mechanism behind two numbers in the paper:
//!
//! * the simulation-side cost of a "write" is one memcpy into this segment
//!   (§IV.B: "the time to write from the point of view of the simulation is
//!   cut down to the time required to write in shared-memory, which is in
//!   the order of 0.1 seconds"), and
//! * when analysis plugins cannot keep up, the segment fills and the
//!   iteration-skip policy engages (§V.C.1) — driven by
//!   [`SharedSegment::occupancy`].
//!
//! ## Safety model
//!
//! The backing store is a heap allocation accessed through raw pointers.
//! Soundness rests on two invariants, both enforced by construction:
//!
//! 1. **Disjointness** — the free-list allocator (guarded by a mutex) never
//!    hands out overlapping ranges, so each live [`Block`] has exclusive
//!    access to its byte range.
//! 2. **Write-xor-read** — a [`Block`] (unique, `&mut`-only access) must be
//!    [`Block::freeze`]-d into an immutable [`BlockRef`] before it can be
//!    shared; `BlockRef` only ever yields `&[u8]`. The happens-before edge
//!    between the writing thread and readers is provided by whatever channel
//!    transfers the `BlockRef` (the [`crate::MessageQueue`] mutex in the
//!    middleware), exactly as with any `Send` value.

use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::ShmError;

/// Allocation granularity and guaranteed block alignment, in bytes.
///
/// One cache line: avoids false sharing between adjacent blocks written by
/// different cores, and is large enough for any primitive element type.
pub const BLOCK_ALIGN: usize = 64;

/// Marker for plain-old-data element types that can be memcpy'd in and out
/// of a segment.
///
/// # Safety
///
/// Implementors must be `Copy` types with no padding bytes and no invalid
/// bit patterns (all primitive numeric types qualify).
pub unsafe trait Pod: Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => { $( unsafe impl Pod for $t {} )* };
}
impl_pod!(i8, i16, i32, i64, u8, u16, u32, u64, f32, f64);

/// Counters describing a segment's lifetime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated (including alignment padding).
    pub used: usize,
    /// High-watermark of `used` over the segment's lifetime.
    pub peak: usize,
    /// Number of successful allocations.
    pub allocations: u64,
    /// Number of allocation failures (out of memory at request time).
    pub failures: u64,
    /// Number of blocks returned to the free list.
    pub frees: u64,
}

struct FreeList {
    /// Free ranges `(offset, len)`, sorted by offset, non-adjacent
    /// (adjacent ranges are coalesced on insert).
    holes: Vec<(usize, usize)>,
}

impl FreeList {
    fn new(capacity: usize) -> Self {
        FreeList {
            holes: vec![(0, capacity)],
        }
    }

    /// First-fit allocation. `len` must already be align-rounded.
    fn allocate(&mut self, len: usize) -> Option<usize> {
        let idx = self.holes.iter().position(|&(_, hlen)| hlen >= len)?;
        let (off, hlen) = self.holes[idx];
        if hlen == len {
            self.holes.remove(idx);
        } else {
            self.holes[idx] = (off + len, hlen - len);
        }
        Some(off)
    }

    /// Return a range, merging with adjacent holes.
    fn free(&mut self, offset: usize, len: usize) {
        let idx = self.holes.partition_point(|&(o, _)| o < offset);
        // Coalesce with predecessor?
        let merged_prev = idx > 0 && {
            let (po, pl) = self.holes[idx - 1];
            debug_assert!(po + pl <= offset, "double free or overlap at {offset}");
            po + pl == offset
        };
        // Coalesce with successor?
        let merged_next = idx < self.holes.len() && {
            let (no, _) = self.holes[idx];
            debug_assert!(offset + len <= no, "double free or overlap at {offset}");
            offset + len == no
        };
        match (merged_prev, merged_next) {
            (true, true) => {
                let (no, nl) = self.holes.remove(idx);
                let _ = no;
                self.holes[idx - 1].1 += len + nl;
            }
            (true, false) => self.holes[idx - 1].1 += len,
            (false, true) => {
                self.holes[idx].0 = offset;
                self.holes[idx].1 += len;
            }
            (false, false) => self.holes.insert(idx, (offset, len)),
        }
    }

    fn total_free(&self) -> usize {
        self.holes.iter().map(|&(_, l)| l).sum()
    }

    fn largest_hole(&self) -> usize {
        self.holes.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

/// Backing storage, aligned to 16 bytes so every `BLOCK_ALIGN`-multiple
/// offset is suitably aligned for any [`Pod`] type.
struct Storage(Box<[u128]>);

impl Storage {
    fn new(capacity_bytes: usize) -> Self {
        let words = capacity_bytes.div_ceil(16);
        Storage(vec![0u128; words].into_boxed_slice())
    }

    fn base(&self) -> *mut u8 {
        self.0.as_ptr() as *mut u8
    }
}

struct SegmentInner {
    storage: Storage,
    capacity: usize,
    state: Mutex<FreeList>,
    space_freed: Condvar,
    used: AtomicUsize,
    peak: AtomicUsize,
    allocations: AtomicU64,
    failures: AtomicU64,
    frees: AtomicU64,
}

// SAFETY: all mutation of `storage` goes through `Block`s whose ranges the
// mutex-guarded free list guarantees to be disjoint; `BlockRef` reads are
// only possible after the unique `Block` has been consumed by `freeze`.
unsafe impl Send for SegmentInner {}
unsafe impl Sync for SegmentInner {}

impl SegmentInner {
    fn release(&self, offset: usize, len: usize) {
        let mut fl = self.state.lock();
        fl.free(offset, len);
        self.used.fetch_sub(len, Ordering::Relaxed);
        self.frees.fetch_add(1, Ordering::Relaxed);
        drop(fl);
        self.space_freed.notify_all();
    }
}

/// A fixed-capacity shared-memory segment.
///
/// Cloning the handle is cheap (`Arc`); all clones refer to the same
/// underlying region, as all cores of an SMP node map the same POSIX
/// segment in the original middleware.
#[derive(Clone)]
pub struct SharedSegment {
    inner: Arc<SegmentInner>,
}

impl std::fmt::Debug for SharedSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSegment")
            .field("capacity", &self.capacity())
            .field("used", &self.used_bytes())
            .finish()
    }
}

impl SharedSegment {
    /// Create a segment with the given capacity in bytes (rounded up to
    /// [`BLOCK_ALIGN`]).
    pub fn new(capacity: usize) -> Result<Self, ShmError> {
        if capacity == 0 {
            return Err(ShmError::ZeroSize);
        }
        let capacity = round_up(capacity, BLOCK_ALIGN);
        Ok(SharedSegment {
            inner: Arc::new(SegmentInner {
                storage: Storage::new(capacity),
                capacity,
                state: Mutex::new(FreeList::new(capacity)),
                space_freed: Condvar::new(),
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                allocations: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                frees: AtomicU64::new(0),
            }),
        })
    }

    /// Allocate `len` bytes without blocking.
    ///
    /// Fails with [`ShmError::OutOfMemory`] when no contiguous hole fits the
    /// (align-rounded) request; this is the signal the iteration-skip policy
    /// listens for.
    pub fn allocate(&self, len: usize) -> Result<Block, ShmError> {
        if len == 0 {
            return Err(ShmError::ZeroSize);
        }
        let alloc_len = round_up(len, BLOCK_ALIGN);
        if alloc_len > self.inner.capacity {
            return Err(ShmError::RequestTooLarge {
                requested: len,
                capacity: self.inner.capacity,
            });
        }
        let mut fl = self.inner.state.lock();
        match fl.allocate(alloc_len) {
            Some(offset) => {
                drop(fl);
                self.note_alloc(alloc_len);
                Ok(Block {
                    seg: self.inner.clone(),
                    offset,
                    len,
                    alloc_len,
                })
            }
            None => {
                let free = fl.total_free();
                drop(fl);
                self.inner.failures.fetch_add(1, Ordering::Relaxed);
                Err(ShmError::OutOfMemory {
                    requested: len,
                    free,
                })
            }
        }
    }

    /// Allocate, blocking until space frees up or `timeout` expires
    /// (`None` = wait forever).
    pub fn allocate_blocking(
        &self,
        len: usize,
        timeout: Option<Duration>,
    ) -> Result<Block, ShmError> {
        if len == 0 {
            return Err(ShmError::ZeroSize);
        }
        let alloc_len = round_up(len, BLOCK_ALIGN);
        if alloc_len > self.inner.capacity {
            return Err(ShmError::RequestTooLarge {
                requested: len,
                capacity: self.inner.capacity,
            });
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut fl = self.inner.state.lock();
        loop {
            if let Some(offset) = fl.allocate(alloc_len) {
                drop(fl);
                self.note_alloc(alloc_len);
                return Ok(Block {
                    seg: self.inner.clone(),
                    offset,
                    len,
                    alloc_len,
                });
            }
            match deadline {
                None => self.inner.space_freed.wait(&mut fl),
                Some(d) => {
                    if self.inner.space_freed.wait_until(&mut fl, d).timed_out() {
                        return Err(ShmError::Timeout);
                    }
                }
            }
        }
    }

    fn note_alloc(&self, alloc_len: usize) {
        let used = self.inner.used.fetch_add(alloc_len, Ordering::Relaxed) + alloc_len;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        self.inner.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated (alignment-rounded).
    pub fn used_bytes(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Fraction of the segment currently allocated, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used_bytes() as f64 / self.inner.capacity as f64
    }

    /// Largest single allocation currently possible (contiguity-aware).
    pub fn largest_free_block(&self) -> usize {
        self.inner.state.lock().largest_hole()
    }

    /// Snapshot of lifetime counters.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            capacity: self.inner.capacity,
            used: self.inner.used.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
            allocations: self.inner.allocations.load(Ordering::Relaxed),
            failures: self.inner.failures.load(Ordering::Relaxed),
            frees: self.inner.frees.load(Ordering::Relaxed),
        }
    }
}

/// A uniquely-owned, writable allocation inside a [`SharedSegment`].
///
/// Dropping a `Block` without freezing it returns the space immediately
/// (used when a client aborts mid-write).
pub struct Block {
    seg: Arc<SegmentInner>,
    offset: usize,
    len: usize,
    alloc_len: usize,
}

impl Block {
    /// Requested length in bytes (what `freeze` exposes to readers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block has zero requested length (never true in practice;
    /// zero-size allocations are rejected).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte offset of this block inside the segment (useful for debugging
    /// and for the allocator property tests).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Exclusive access to the block's bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: the allocator guarantees [offset, offset+alloc_len) is not
        // shared with any other live Block/BlockRef, and `&mut self` makes
        // this the only access path right now.
        unsafe {
            std::slice::from_raw_parts_mut(self.seg.storage.base().add(self.offset), self.len)
        }
    }

    /// Copy `src` into the beginning of the block.
    ///
    /// Panics if `src` is longer than the block — that is a logic error in
    /// the caller (layout mismatch), not a runtime condition.
    pub fn write_bytes(&mut self, src: &[u8]) {
        assert!(
            src.len() <= self.len,
            "write of {} bytes into a {}-byte block",
            src.len(),
            self.len
        );
        self.as_mut_slice()[..src.len()].copy_from_slice(src);
    }

    /// Copy a typed slice into the block (the single memcpy of the Damaris
    /// write path).
    pub fn write_pod<T: Pod>(&mut self, src: &[T]) {
        // SAFETY: Pod types have no padding and no invalid bit patterns.
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        self.write_bytes(bytes);
    }

    /// Consume the writable block, producing a shareable read-only handle.
    pub fn freeze(self) -> BlockRef {
        let this = ManuallyDrop::new(self);
        BlockRef {
            inner: Arc::new(Frozen {
                seg: this.seg.clone(),
                offset: this.offset,
                len: this.len,
                alloc_len: this.alloc_len,
            }),
        }
    }
}

impl Drop for Block {
    fn drop(&mut self) {
        self.seg.release(self.offset, self.alloc_len);
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

struct Frozen {
    seg: Arc<SegmentInner>,
    offset: usize,
    len: usize,
    alloc_len: usize,
}

impl Drop for Frozen {
    fn drop(&mut self) {
        self.seg.release(self.offset, self.alloc_len);
    }
}

/// An immutable, reference-counted view of a frozen block.
///
/// Clones share the same bytes; the space returns to the allocator when the
/// last clone is dropped. This is what flows through the message queue to
/// the dedicated core and on to plugins — no copies anywhere.
#[derive(Clone)]
pub struct BlockRef {
    inner: Arc<Frozen>,
}

impl BlockRef {
    /// The block's bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: frozen blocks are never written again; the range stays
        // allocated while any BlockRef clone is alive.
        unsafe {
            std::slice::from_raw_parts(
                self.inner.seg.storage.base().add(self.inner.offset),
                self.inner.len,
            )
        }
    }

    /// Reinterpret the bytes as a typed slice.
    ///
    /// Panics if the length is not a multiple of `size_of::<T>()` —
    /// a layout/type mismatch between writer and reader.
    pub fn as_pod<T: Pod>(&self) -> &[T] {
        let size = std::mem::size_of::<T>();
        assert_eq!(
            self.inner.len % size,
            0,
            "block of {} bytes is not a whole number of {}-byte elements",
            self.inner.len,
            size
        );
        debug_assert_eq!(self.inner.offset % BLOCK_ALIGN, 0);
        // SAFETY: base is 16-byte aligned, offsets are BLOCK_ALIGN-multiples,
        // so the pointer is aligned for any Pod; Pod types accept any bits.
        unsafe {
            std::slice::from_raw_parts(
                self.inner.seg.storage.base().add(self.inner.offset) as *const T,
                self.inner.len / size,
            )
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Byte offset inside the segment.
    pub fn offset(&self) -> usize {
        self.inner.offset
    }
}

impl std::fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRef")
            .field("offset", &self.inner.offset)
            .field("len", &self.inner.len)
            .finish()
    }
}

fn round_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_freeze_read() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(32).unwrap();
        b.write_pod(&[1.5f64, 2.5, 3.5, 4.5]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<f64>(), &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(r.len(), 32);
    }

    #[test]
    fn drop_returns_space() {
        let seg = SharedSegment::new(4096).unwrap();
        let b = seg.allocate(100).unwrap();
        assert_eq!(seg.used_bytes(), 128); // rounded to BLOCK_ALIGN
        drop(b);
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), 4096);
    }

    #[test]
    fn frozen_clones_share_until_last_drop() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[7u8; 64]);
        let r1 = b.freeze();
        let r2 = r1.clone();
        drop(r1);
        assert_eq!(seg.used_bytes(), 64, "still referenced by r2");
        assert_eq!(r2.as_slice()[63], 7);
        drop(r2);
        assert_eq!(seg.used_bytes(), 0);
    }

    #[test]
    fn zero_and_oversize_rejected() {
        let seg = SharedSegment::new(1024).unwrap();
        match seg.allocate(0) {
            Err(ShmError::ZeroSize) => {}
            other => panic!("unexpected: {other:?}"),
        }
        match seg.allocate(4096) {
            Err(ShmError::RequestTooLarge {
                requested,
                capacity,
            }) => {
                assert_eq!(requested, 4096);
                assert_eq!(capacity, 1024);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let seg = SharedSegment::new(256).unwrap();
        let _a = seg.allocate(128).unwrap();
        let _b = seg.allocate(128).unwrap();
        match seg.allocate(64) {
            Err(ShmError::OutOfMemory { free, .. }) => assert_eq!(free, 0),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(seg.stats().failures, 1);
    }

    #[test]
    fn fragmentation_and_coalescing() {
        let seg = SharedSegment::new(64 * 4).unwrap();
        let a = seg.allocate(64).unwrap();
        let b = seg.allocate(64).unwrap();
        let c = seg.allocate(64).unwrap();
        let d = seg.allocate(64).unwrap();
        // Free b and d: two separate 64-byte holes.
        drop(b);
        drop(d);
        assert_eq!(seg.largest_free_block(), 64);
        assert!(seg.allocate(128).is_err(), "fragmented: no contiguous 128");
        // Free c: holes b+c+d coalesce into 192.
        drop(c);
        assert_eq!(seg.largest_free_block(), 192);
        let big = seg.allocate(128).unwrap();
        drop(big);
        drop(a);
        assert_eq!(seg.largest_free_block(), 256);
    }

    #[test]
    fn blocking_allocation_wakes_on_free() {
        let seg = SharedSegment::new(256).unwrap();
        let hog = seg.allocate(256).unwrap();
        let seg2 = seg.clone();
        let waiter = std::thread::spawn(move || {
            seg2.allocate_blocking(64, Some(Duration::from_secs(5)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(hog);
        let block = waiter.join().unwrap();
        assert_eq!(block.len(), 64);
    }

    #[test]
    fn blocking_allocation_times_out() {
        let seg = SharedSegment::new(256).unwrap();
        let _hog = seg.allocate(256).unwrap();
        let err = seg
            .allocate_blocking(64, Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err, ShmError::Timeout);
    }

    #[test]
    fn occupancy_and_peak_track() {
        let seg = SharedSegment::new(1000).unwrap(); // rounds to 1024
        assert_eq!(seg.capacity(), 1024);
        let a = seg.allocate(512).unwrap();
        assert!((seg.occupancy() - 0.5).abs() < 1e-9);
        drop(a);
        assert_eq!(seg.occupancy(), 0.0);
        assert_eq!(seg.stats().peak, 512);
        assert_eq!(seg.stats().allocations, 1);
        assert_eq!(seg.stats().frees, 1);
    }

    #[test]
    fn write_bytes_shorter_than_block_ok() {
        let seg = SharedSegment::new(256).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[1, 2, 3]);
        let r = b.freeze();
        assert_eq!(&r.as_slice()[..3], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "write of 128 bytes into a 64-byte block")]
    fn write_overflow_panics() {
        let seg = SharedSegment::new(256).unwrap();
        let mut b = seg.allocate(64).unwrap();
        b.write_bytes(&[0u8; 128]);
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn as_pod_misaligned_length_panics() {
        let seg = SharedSegment::new(256).unwrap();
        let b = seg.allocate(12).unwrap();
        let r = b.freeze();
        let _ = r.as_pod::<f64>(); // 12 % 8 != 0
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let seg = SharedSegment::new(1 << 16).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let seg = seg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200usize {
                    let size = 64 + (i % 7) * 64;
                    let mut b = match seg.allocate_blocking(size, Some(Duration::from_secs(10))) {
                        Ok(b) => b,
                        Err(e) => panic!("thread {t}: {e}"),
                    };
                    b.as_mut_slice().fill(t);
                    let r = b.freeze();
                    assert!(r.as_slice().iter().all(|&x| x == t), "corruption detected");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.used_bytes(), 0);
        assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    #[test]
    fn typed_roundtrip_various_types() {
        let seg = SharedSegment::new(4096).unwrap();
        let mut b = seg.allocate(16).unwrap();
        b.write_pod(&[1u32, 2, 3, 4]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<u32>(), &[1, 2, 3, 4]);

        let mut b = seg.allocate(8).unwrap();
        b.write_pod(&[-5i16, 6, -7, 8]);
        let r = b.freeze();
        assert_eq!(r.as_pod::<i16>(), &[-5, 6, -7, 8]);
    }
}
