//! # damaris-shm
//!
//! The node-local **shared-memory substrate** of the Damaris approach
//! (Dorier, IPDPS 2013 PhD Forum, §III.A):
//!
//! > "Central to the Damaris approach is the use of shared memory to
//! > communicate data from the cores running the simulation to the cores
//! > running the data management service. […] We attempt with Damaris to
//! > have a finer control on the memory usage and to avoid unnecessary
//! > copies."
//!
//! Two pieces implement that design:
//!
//! * [`SharedSegment`] — a fixed-capacity memory region with a tiered
//!   allocator: lock-free size-class free lists (seeded from the declared
//!   variable layouts, see [`SharedSegment::with_classes`] and the
//!   per-client [`SlabCache`]), an optional lock-free buddy tier for
//!   variable-size AMR-style requests ([`SharedSegment::with_buddy`]),
//!   and a first-fit, coalescing fallback
//!   list. Compute cores [`SharedSegment::allocate`] a [`Block`], write
//!   their variable into it (one memcpy — *the only copy in the whole
//!   pipeline*), then [`Block::freeze`] it into an immutable,
//!   reference-counted [`BlockRef`] that the dedicated core (and any number
//!   of analysis plugins) can read in place. Dropping the last `BlockRef`
//!   returns the space to the allocator. Freeze, clone and drop keep the
//!   reference count in a per-slot table inside the segment, so the whole
//!   steady-state write path performs zero heap allocations.
//! * [`MessageQueue`] — the bounded shared event queue through which
//!   simulation cores notify dedicated cores ("a shared message queue is
//!   used for the simulation processes to send events to the dedicated
//!   cores").
//!
//! In the original middleware the segment is a POSIX shared-memory object
//! shared by the processes of one SMP node. Here a *node* is one OS process
//! and its cores are threads, so the segment is process memory shared
//! between threads — the semantics the paper relies on (single copy, no
//! serialization, allocator-level backpressure) are identical.
//!
//! ## Example
//!
//! ```
//! use damaris_shm::{SharedSegment, MessageQueue};
//!
//! let seg = SharedSegment::new(1 << 20).unwrap();
//! let queue = MessageQueue::<(String, damaris_shm::BlockRef)>::bounded(16);
//!
//! // Simulation core: allocate, fill, freeze, notify.
//! let mut block = seg.allocate(8 * 4).unwrap();
//! block.write_pod(&[1.0f64, 2.0, 3.0, 4.0]);
//! queue.send(("temperature".to_string(), block.freeze())).unwrap();
//!
//! // Dedicated core: receive and read in place, zero copies.
//! let (name, data) = queue.recv().unwrap();
//! assert_eq!(name, "temperature");
//! assert_eq!(data.as_pod::<f64>()[1], 2.0);
//! drop(data); // space returns to the allocator
//! assert_eq!(seg.used_bytes(), 0);
//! ```

// Every operation inside an `unsafe fn` must state its own `unsafe {}`
// block (with its SAFETY comment — enforced by scripts/unsafe_audit.py).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod error;
pub mod mapping;
pub mod queue;
pub mod segment;
pub mod spsc;
pub mod transport;

pub use arena::SlabCache;
pub use error::{RecvError, SendError, ShmError, TryRecvError, TrySendError};
pub use mapping::ShmFile;
pub use queue::MessageQueue;
pub use segment::{Block, BlockRef, Pod, SegmentStats, SharedSegment};
pub use spsc::SpscRing;
pub use transport::{
    AnyConsumer, AnyProducer, AnyTransport, EventChannel, EventConsumer, EventProducer,
    ShardProducer, ShardedChannel, StealingConsumer, TransportKind,
};
