//! File-backed shared memory: a `/dev/shm` (or tmpfs) file mapped
//! `MAP_SHARED` into every participating process.
//!
//! The in-process [`crate::SharedSegment`] backs its storage with a heap
//! allocation — perfect for thread worlds, useless across a real process
//! boundary. [`ShmFile`] provides the missing piece: the *same bytes*
//! visible in several address spaces, exactly like the POSIX shared
//! memory segment the original Damaris middleware opens on every core of
//! an SMP node. A client process lays a [`crate::SharedSegment`] over a
//! slice of the mapping (see [`crate::SharedSegment::over_mapping`]) and
//! allocates/writes as usual; the dedicated-core process opens the same
//! file and reads blocks by their file offset.
//!
//! No external crates: the two `mmap`/`munmap` calls are declared
//! directly against libc (which `std` already links on every Unix
//! platform this workspace targets).

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::error::ShmError;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A shared, writable file mapping.
///
/// Every process that [`ShmFile::create`]s or [`ShmFile::open`]s the same
/// path sees the same bytes. Dropping unmaps; the *creator* also unlinks
/// the file, so segments do not accumulate in `/dev/shm` across runs.
pub struct ShmFile {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
    owner: bool,
    _file: File,
}

// SAFETY: the mapping itself is just memory; all access goes through
// explicit unsafe raw reads/writes whose disjointness the callers
// (segment allocator / reader protocol) are responsible for — the same
// contract as `SegmentInner`'s heap storage.
unsafe impl Send for ShmFile {}
unsafe impl Sync for ShmFile {}

impl ShmFile {
    /// The conventional place for segment files: `/dev/shm` when the
    /// platform mounts it (Linux), the system temp directory otherwise.
    pub fn default_dir() -> PathBuf {
        let shm = PathBuf::from("/dev/shm");
        if shm.is_dir() {
            shm
        } else {
            std::env::temp_dir()
        }
    }

    /// Create (or truncate) the file at `path`, size it to `len` bytes
    /// and map it shared.
    pub fn create(path: impl AsRef<Path>, len: usize) -> Result<Self, ShmError> {
        if len == 0 {
            return Err(ShmError::ZeroSize);
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(map_io)?;
        file.set_len(len as u64).map_err(map_io)?;
        Self::map(file, path, len, true)
    }

    /// Open and map an existing segment file created by another process.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ShmError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(map_io)?;
        let len = file.metadata().map_err(map_io)?.len() as usize;
        if len == 0 {
            return Err(ShmError::ZeroSize);
        }
        Self::map(file, path, len, false)
    }

    #[cfg(unix)]
    fn map(file: File, path: PathBuf, len: usize, owner: bool) -> Result<Self, ShmError> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: mapping a file we own a descriptor to; length matches
        // the file size set above; the pointer is checked before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(map_io(io::Error::last_os_error()));
        }
        Ok(ShmFile {
            ptr: ptr as *mut u8,
            len,
            path,
            owner,
            _file: file,
        })
    }

    #[cfg(not(unix))]
    fn map(_file: File, _path: PathBuf, _len: usize, _owner: bool) -> Result<Self, ShmError> {
        Err(ShmError::MapFailed(
            "file-backed shared memory requires a Unix platform".into(),
        ))
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true; zero lengths are rejected).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the backing file (share it with the other processes).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Base pointer of the mapping (page-aligned).
    pub(crate) fn base(&self) -> *mut u8 {
        self.ptr
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    ///
    /// The copy is deliberate: another process may recycle the range the
    /// moment it is acknowledged, so handing out a long-lived `&[u8]`
    /// into the mapping would be unsound as a public API. Panics if the
    /// range is out of bounds.
    pub fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "read of {len} bytes at {offset} outside a {}-byte mapping",
            self.len
        );
        let mut out = vec![0u8; len];
        // SAFETY: bounds checked above; overlapping concurrent writes are
        // the caller's protocol responsibility (same contract as any
        // shared-memory consumer).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), out.as_mut_ptr(), len);
        }
        out
    }

    /// Run `f` over the bytes at `[offset, offset + len)` without copying
    /// (e.g. checksum or kernel-style scans on the dedicated core). The
    /// borrow cannot escape `f`. Panics if the range is out of bounds.
    pub fn with_bytes<R>(&self, offset: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "view of {len} bytes at {offset} outside a {}-byte mapping",
            self.len
        );
        // SAFETY: bounds checked above; lifetime confined to `f`.
        f(unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) })
    }
}

impl Drop for ShmFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len are exactly what mmap returned.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl std::fmt::Debug for ShmFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmFile")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("owner", &self.owner)
            .finish()
    }
}

fn map_io(e: io::Error) -> ShmError {
    ShmError::MapFailed(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_path(tag: &str) -> PathBuf {
        ShmFile::default_dir().join(format!(
            "damaris-shm-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    // Real mmap/libc syscalls: outside Miri's interpreter.
    #[cfg_attr(miri, ignore)]
    fn create_write_open_read() {
        let path = unique_path("rw");
        let shm = ShmFile::create(&path, 4096).unwrap();
        assert_eq!(shm.len(), 4096);
        // Write through one mapping…
        // SAFETY: offset 128 + 12 bytes is inside the 4096-byte mapping
        // and nothing else touches the file during the test.
        unsafe { std::ptr::copy_nonoverlapping(b"hello shared".as_ptr(), shm.base().add(128), 12) };
        // …and read it back through an independent mapping of the file,
        // as a second process would.
        let other = ShmFile::open(&path).unwrap();
        assert_eq!(other.read_at(128, 12), b"hello shared");
        other.with_bytes(128, 5, |b| assert_eq!(b, b"hello"));
        drop(other);
        drop(shm); // owner unlinks
        assert!(!path.exists(), "creator must unlink the segment file");
    }

    #[test]
    // Real mmap/libc syscalls: outside Miri's interpreter.
    #[cfg_attr(miri, ignore)]
    fn bounds_are_enforced() {
        let path = unique_path("bounds");
        let shm = ShmFile::create(&path, 256).unwrap();
        assert_eq!(shm.read_at(192, 64).len(), 64);
        assert!(std::panic::catch_unwind(|| shm.read_at(193, 64)).is_err());
        assert!(std::panic::catch_unwind(|| shm.read_at(usize::MAX, 2)).is_err());
    }

    #[test]
    // Real mmap/libc syscalls: outside Miri's interpreter.
    #[cfg_attr(miri, ignore)]
    fn zero_and_missing_rejected() {
        assert!(matches!(
            ShmFile::create(unique_path("zero"), 0),
            Err(ShmError::ZeroSize)
        ));
        assert!(ShmFile::open(unique_path("missing")).is_err());
    }
}
