//! A bounded, lock-free single-producer/single-consumer ring buffer — one
//! per client in the sharded event transport.
//!
//! Paper §IV.B claims a client "write" costs one memcpy plus one event
//! post, *independent of scale*. A shared mutex queue breaks that claim:
//! every post serializes all clients on one lock. This ring restores it —
//! a post is one slot write plus one release store, never contending with
//! other clients.
//!
//! The ring itself only guarantees safety under one pusher and one popper
//! *at a time*; [`crate::transport::ShardedChannel`] layers tiny atomic
//! guards on top so cloned client handles and work-stealing consumers
//! serialize their access without a real lock.

use damaris_sync::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// Pads/aligns a value to a cache line so head and tail counters (and the
/// hot counters of neighbouring shards) never share a line — the classic
/// false-sharing fix.
#[repr(align(128))]
#[derive(Default)]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Bounded SPSC ring. Capacity is rounded up to a power of two.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will pop. Only the consumer advances it.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will fill. Only the producer advances it.
    tail: CachePadded<AtomicUsize>,
}

// Safety: T moves across the ring exactly once (written by the producer,
// read by the consumer); the Release/Acquire pair on `tail`/`head`
// publishes the slot contents.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Create a ring holding at least `capacity` items (rounded up to a
    /// power of two; minimum 2). Panics on zero capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            buf,
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Usable capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of occupied slots (racy snapshot; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push `value`, failing (and handing it back) when the ring is full.
    ///
    /// # Safety contract
    /// Must not be called concurrently with another `try_push` on the same
    /// ring (single producer). The caller enforces this.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        // Orderings model-checked by `spsc_no_loss_no_duplication`
        // (crates/check/tests/models.rs): tail is ours (Relaxed); the
        // Acquire on head pairs with the consumer's Release so a reused
        // slot is observed empty before we overwrite it.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.buf.len() {
            return Err(value);
        }
        // SAFETY: the not-full check above plus the single-producer
        // contract give exclusive access to this slot, and the consumer's
        // head Release (acquired above) ordered its last read of the slot
        // before this write.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(value);
        }
        // Release publishes the slot write; downgrading it to Relaxed is
        // caught by `spsc_relaxed_tail_publication_is_caught`.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pop the oldest item, if any.
    ///
    /// # Safety contract
    /// Must not be called concurrently with another `try_pop` on the same
    /// ring (single consumer *at a time*; the sharded channel's per-shard
    /// drain guard provides the required mutual exclusion and the
    /// Acquire/Release ordering that makes consumer hand-off sound).
    pub fn try_pop(&self) -> Option<T> {
        // Mirror image of `try_push`, same model test: the Acquire on
        // tail pairs with the producer's Release to make the slot write
        // visible; the Release on head re-publishes the emptied slot.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head != tail means the producer initialized this slot,
        // and its tail Release (acquired above) published the write; the
        // single-consumer contract makes this the only read of it.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any items still in flight.
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn capacity_rounds_up() {
        let r = SpscRing::<u8>::with_capacity(5);
        assert_eq!(r.capacity(), 8);
        assert_eq!(SpscRing::<u8>::with_capacity(1).capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpscRing::<u8>::with_capacity(0);
    }

    #[test]
    fn push_pop_fifo() {
        let r = SpscRing::with_capacity(4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.try_push(9), Err(9), "full ring rejects");
        assert_eq!(r.len(), 4);
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let r = SpscRing::with_capacity(2);
        for i in 0..1000 {
            r.try_push(i).unwrap();
            assert_eq!(r.try_pop(), Some(i));
        }
        assert!(r.is_empty());
    }

    #[test]
    // 100k spins of real threading: minutes of interpreter time under
    // Miri; the model checker covers the interleavings instead.
    #[cfg_attr(miri, ignore)]
    fn concurrent_producer_consumer_no_loss() {
        const N: usize = 100_000;
        let r = Arc::new(SpscRing::with_capacity(64));
        let p = {
            let r = r.clone();
            thread::spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match r.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                damaris_sync::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let mut seen = Vec::with_capacity(N);
        while seen.len() < N {
            if let Some(v) = r.try_pop() {
                seen.push(v);
            } else {
                damaris_sync::hint::spin_loop();
            }
        }
        p.join().unwrap();
        let expected: Vec<usize> = (0..N).collect();
        assert_eq!(seen, expected, "strict FIFO, no loss, no duplication");
    }

    #[test]
    fn drop_releases_in_flight_items() {
        let r = SpscRing::with_capacity(8);
        let tracker = Arc::new(());
        for _ in 0..5 {
            r.try_push(tracker.clone()).unwrap();
        }
        drop(r);
        assert_eq!(Arc::strong_count(&tracker), 1, "queued clones dropped");
    }
}
