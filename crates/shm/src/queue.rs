//! The shared event queue between simulation cores and dedicated cores.
//!
//! Paper §III.B: "A shared message queue is used for the simulation
//! processes to send events to the dedicated cores. These events activate
//! the user-provided plugins. The message queue is also used for sending
//! events that inform dedicated cores of the state of the simulation, and
//! help Damaris adapting its behavior."
//!
//! This is a bounded multi-producer/multi-consumer queue with blocking,
//! non-blocking and timed variants on both ends, plus an explicit
//! [`MessageQueue::close`] for orderly shutdown (producers learn the service
//! is gone; consumers drain remaining messages, then see
//! [`crate::TryRecvError::Closed`]).
//!
//! The bound matters: queue depth is the second backpressure signal (after
//! segment occupancy) consumed by the iteration-skip policy.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use damaris_sync::{Condvar, Mutex};

use crate::error::{RecvError, SendError, TryRecvError, TrySendError};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Bounded MPMC queue; clones share the same channel.
pub struct MessageQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        MessageQueue {
            inner: self.inner.clone(),
        }
    }
}

impl<T> std::fmt::Debug for MessageQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageQueue")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> MessageQueue<T> {
    /// Create a queue holding at most `capacity` messages.
    ///
    /// Panics if `capacity` is zero (a rendezvous queue is never what the
    /// middleware wants; events must not block the simulation by default).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        MessageQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    buf: VecDeque::with_capacity(capacity),
                    closed: false,
                }),
                capacity,
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued messages.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Queue depth as a fraction of capacity, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.len() as f64 / self.inner.capacity as f64
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Close the queue: subsequent sends fail, receivers drain what remains.
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        drop(st);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Send, blocking while the queue is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock();
        loop {
            if st.closed {
                return Err(SendError(msg));
            }
            if st.buf.len() < self.inner.capacity {
                st.buf.push_back(msg);
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            self.inner.not_full.wait(&mut st);
        }
    }

    /// Send without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock();
        if st.closed {
            return Err(TrySendError::Closed(msg));
        }
        if st.buf.len() >= self.inner.capacity {
            return Err(TrySendError::Full(msg));
        }
        st.buf.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Send, blocking at most `timeout`.
    ///
    /// A timeout too large to represent as a deadline (e.g.
    /// `Duration::MAX`) degrades to an untimed blocking wait instead of
    /// panicking on `Instant` overflow.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), TrySendError<T>> {
        let deadline = Instant::now().checked_add(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if st.closed {
                return Err(TrySendError::Closed(msg));
            }
            if st.buf.len() < self.inner.capacity {
                st.buf.push_back(msg);
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            match deadline {
                Some(d) => {
                    if self.inner.not_full.wait_until(&mut st, d).timed_out() {
                        return Err(TrySendError::Full(msg));
                    }
                }
                None => self.inner.not_full.wait(&mut st),
            }
        }
    }

    /// Receive, blocking while the queue is empty; `Err` once closed *and*
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(msg) = st.buf.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.closed {
                return Err(RecvError);
            }
            self.inner.not_empty.wait(&mut st);
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock();
        if let Some(msg) = st.buf.pop_front() {
            drop(st);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if st.closed {
            Err(TryRecvError::Closed)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, blocking at most `timeout`.
    ///
    /// As with [`send_timeout`](Self::send_timeout), an unrepresentable
    /// deadline falls back to an untimed wait rather than panicking.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if let Some(msg) = st.buf.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.closed {
                return Err(TryRecvError::Closed);
            }
            match deadline {
                Some(d) => {
                    if self.inner.not_empty.wait_until(&mut st, d).timed_out() {
                        return Err(TryRecvError::Empty);
                    }
                }
                None => self.inner.not_empty.wait(&mut st),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = MessageQueue::bounded(8);
        for i in 0..5 {
            q.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_send_full_and_try_recv_empty() {
        let q = MessageQueue::bounded(2);
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert_eq!(q.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(q.pressure(), 1.0);
        q.try_recv().unwrap();
        q.try_recv().unwrap();
        assert_eq!(q.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn close_drains_then_errors() {
        let q = MessageQueue::bounded(4);
        q.send("a").unwrap();
        q.send("b").unwrap();
        q.close();
        assert_eq!(q.send("c"), Err(SendError("c")));
        assert_eq!(q.recv().unwrap(), "a");
        assert_eq!(q.recv().unwrap(), "b");
        assert_eq!(q.recv(), Err(RecvError));
        assert_eq!(q.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let q = MessageQueue::bounded(1);
        q.send(0u32).unwrap();
        let q2 = q.clone();
        let sender = thread::spawn(move || q2.send(1).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.recv().unwrap(), 0);
        sender.join().unwrap();
        assert_eq!(q.recv().unwrap(), 1);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let q = MessageQueue::<u32>::bounded(1);
        let q2 = q.clone();
        let receiver = thread::spawn(move || q2.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        q.send(42).unwrap();
        assert_eq!(receiver.join().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_expires() {
        let q = MessageQueue::<u32>::bounded(1);
        let err = q.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, TryRecvError::Empty);
    }

    #[test]
    fn send_timeout_expires() {
        let q = MessageQueue::bounded(1);
        q.send(1).unwrap();
        assert_eq!(
            q.send_timeout(2, Duration::from_millis(10)),
            Err(TrySendError::Full(2))
        );
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let q = MessageQueue::<u32>::bounded(1);
        let q2 = q.clone();
        let receiver = thread::spawn(move || q2.recv());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(receiver.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn close_wakes_blocked_sender() {
        let q = MessageQueue::bounded(1);
        q.send(1).unwrap();
        let q2 = q.clone();
        let sender = thread::spawn(move || q2.send(2));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let q = MessageQueue::bounded(16);
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.send(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = q.clone();
            consumers.push(thread::spawn(move || {
                let mut seen = Vec::new();
                while let Ok(v) = q.recv() {
                    seen.push(v);
                }
                seen
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = MessageQueue::<u8>::bounded(0);
    }

    #[test]
    fn huge_timeouts_do_not_panic() {
        // Instant::now() + Duration::MAX overflows; checked_add must turn
        // these into (effectively) untimed waits that still succeed when
        // the queue can make progress immediately.
        let q = MessageQueue::bounded(1);
        q.send_timeout(1, Duration::MAX).unwrap();
        assert_eq!(q.recv_timeout(Duration::MAX).unwrap(), 1);
        // And wake up on close rather than sleeping forever.
        let q2 = q.clone();
        let waiter = thread::spawn(move || q2.recv_timeout(Duration::MAX));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), Err(TryRecvError::Closed));
    }
}
