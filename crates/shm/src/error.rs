//! Error types for segment allocation and message-queue operations.

use std::fmt;

/// Failure of a shared-memory segment operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// Requested allocation exceeds the segment's total capacity and can
    /// never succeed.
    RequestTooLarge {
        /// Bytes requested.
        requested: usize,
        /// Total capacity of the segment.
        capacity: usize,
    },
    /// No contiguous free range is currently available (transient; retry
    /// after blocks are released, or apply the skip policy).
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free (possibly fragmented).
        free: usize,
    },
    /// A blocking allocation timed out.
    Timeout,
    /// Zero-byte allocations are not representable.
    ZeroSize,
    /// Creating/opening/mapping a file-backed segment failed.
    MapFailed(
        /// Underlying I/O error text.
        String,
    ),
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::RequestTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "allocation of {requested} bytes exceeds segment capacity of {capacity} bytes"
            ),
            ShmError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "segment exhausted: {requested} bytes requested, {free} bytes free"
                )
            }
            ShmError::Timeout => write!(f, "blocking allocation timed out"),
            ShmError::ZeroSize => write!(f, "zero-byte allocation"),
            ShmError::MapFailed(e) => write!(f, "shared-memory mapping failed: {e}"),
        }
    }
}

impl std::error::Error for ShmError {}

/// Error returned by blocking [`crate::MessageQueue::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(
    /// The message that could not be delivered (queue closed).
    pub T,
);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message queue is closed")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`crate::MessageQueue::try_send`] and
/// [`crate::MessageQueue::send_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Queue is at capacity; the message is handed back.
    Full(T),
    /// Queue was closed; the message is handed back.
    Closed(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "message queue is full"),
            TrySendError::Closed(_) => write!(f, "message queue is closed"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by blocking [`crate::MessageQueue::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message queue is closed and drained")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`crate::MessageQueue::try_recv`] and
/// [`crate::MessageQueue::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue is currently empty.
    Empty,
    /// Queue is closed and fully drained.
    Closed,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "message queue is empty"),
            TryRecvError::Closed => write!(f, "message queue is closed and drained"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_error_messages() {
        let e = ShmError::OutOfMemory {
            requested: 100,
            free: 10,
        };
        assert!(e.to_string().contains("100 bytes requested"));
        let e = ShmError::RequestTooLarge {
            requested: 10,
            capacity: 4,
        };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn queue_error_messages() {
        assert_eq!(
            TrySendError::Full(7u32).to_string(),
            "message queue is full"
        );
        assert_eq!(
            TryRecvError::Closed.to_string(),
            "message queue is closed and drained"
        );
        assert_eq!(SendError(1u8).to_string(), "message queue is closed");
    }
}
