//! Property tests for the segment allocator and the message queue.

use damaris_shm::{Block, MessageQueue, SharedSegment};
use proptest::prelude::*;

/// A scripted allocator operation.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a block of the given size (bytes).
    Alloc(usize),
    /// Free the i-th oldest live block (modulo live count).
    Free(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..2048).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
        ],
        1..200,
    )
}

proptest! {
    /// The allocator never hands out overlapping ranges, and after freeing
    /// everything the free list coalesces back to full capacity.
    #[test]
    fn allocator_disjoint_and_coalescing(ops in ops_strategy()) {
        let capacity = 1 << 16;
        let seg = SharedSegment::new(capacity).unwrap();
        let mut live: Vec<Block> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(b) = seg.allocate(size) {
                        // Check disjointness against every live block.
                        let (s, e) = (b.offset(), b.offset() + b.len());
                        for other in &live {
                            let (os, oe) = (other.offset(), other.offset() + other.len());
                            prop_assert!(e <= os || oe <= s,
                                "overlap: [{s},{e}) vs [{os},{oe})");
                        }
                        live.push(b);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
        }
        drop(live);
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    /// Data written into a block reads back identically after freeze.
    #[test]
    fn block_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let seg = SharedSegment::new(1 << 14).unwrap();
        let mut b = seg.allocate(data.len()).unwrap();
        b.write_bytes(&data);
        let r = b.freeze();
        prop_assert_eq!(r.as_slice(), &data[..]);
    }

    /// f64 payloads survive the pod round-trip bit-exactly (including NaN
    /// payloads and signed zeros).
    #[test]
    fn pod_roundtrip_f64(data in proptest::collection::vec(any::<u64>(), 1..512)) {
        let floats: Vec<f64> = data.iter().map(|&bits| f64::from_bits(bits)).collect();
        let seg = SharedSegment::new(1 << 14).unwrap();
        let mut b = seg.allocate(floats.len() * 8).unwrap();
        b.write_pod(&floats);
        let r = b.freeze();
        let back: Vec<u64> = r.as_pod::<f64>().iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(back, data);
    }

    /// Single-threaded queue use preserves exact FIFO content.
    #[test]
    fn queue_fifo(content in proptest::collection::vec(any::<u32>(), 0..128)) {
        let q = MessageQueue::bounded(content.len().max(1));
        for &x in &content {
            q.send(x).unwrap();
        }
        q.close();
        let mut out = Vec::new();
        while let Ok(x) = q.recv() {
            out.push(x);
        }
        prop_assert_eq!(out, content);
    }
}

/// A scripted operation against the sharded transport.
#[derive(Debug, Clone)]
enum ChanOp {
    /// Producer `p % producers` sends one event.
    Send(usize),
    /// Consumer `c % consumers` tries to receive one event.
    Recv(usize),
    /// Close the channel.
    Close,
}

fn chan_ops() -> impl Strategy<Value = Vec<ChanOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8).prop_map(ChanOp::Send),
            (0usize..4).prop_map(ChanOp::Recv),
            Just(ChanOp::Close),
        ],
        1..300,
    )
}

proptest! {
    /// Interleaved sends, receives and close against the sharded
    /// transport: every accepted event is delivered exactly once, in
    /// per-producer FIFO order, and after close the consumers drain what
    /// remains and then see `Closed` — never a lost or duplicated event.
    #[test]
    fn sharded_transport_interleaved_close_drain(
        ops in chan_ops(),
        producers in 1usize..5,
        consumers in 1usize..4,
        shard_capacity in 1usize..9,
    ) {
        use damaris_shm::transport::{
            EventChannel, EventConsumer, EventProducer, ShardedChannel,
        };
        use damaris_shm::{TryRecvError, TrySendError};

        let ch: ShardedChannel<(usize, u64)> = ShardedChannel::new(producers, shard_capacity);
        let prods: Vec<_> = (0..producers).map(|p| ch.producer(p)).collect();
        let mut cons: Vec<_> = (0..consumers).map(|c| ch.consumer(c, consumers)).collect();

        let mut seq = vec![0u64; producers];   // per-producer send counter
        let mut accepted: Vec<Vec<u64>> = vec![Vec::new(); producers];
        // Per (consumer, producer) receive streams: each must be strictly
        // increasing (per-producer FIFO holds within one consumer; across
        // consumers no MPMC drain — mutex queue included — orders events).
        let mut received: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); producers]; consumers];
        let mut closed = false;

        for op in ops {
            match op {
                ChanOp::Send(p) => {
                    let p = p % producers;
                    let tag = seq[p];
                    seq[p] += 1;
                    match prods[p].try_send((p, tag)) {
                        Ok(()) => accepted[p].push(tag),
                        Err(TrySendError::Full(_)) => prop_assert!(!closed, "Full after close"),
                        Err(TrySendError::Closed(_)) => {
                            prop_assert!(closed, "Closed error before close()")
                        }
                    }
                }
                ChanOp::Recv(c) => {
                    let c = c % consumers;
                    match cons[c].try_recv() {
                        Ok((p, tag)) => received[c][p].push(tag),
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Closed) => prop_assert!(closed, "Closed before close()"),
                    }
                }
                ChanOp::Close => {
                    EventChannel::close(&ch);
                    closed = true;
                }
            }
        }

        // Final drain: every consumer empties its local batch buffer and
        // the rings; everything accepted must still be deliverable.
        EventChannel::close(&ch);
        for (c, consumer) in cons.iter_mut().enumerate() {
            loop {
                match consumer.try_recv() {
                    Ok((p, tag)) => received[c][p].push(tag),
                    Err(TryRecvError::Closed) => break,
                    // No other thread holds drain guards here, so Empty
                    // cannot occur once the channel is closed.
                    Err(TryRecvError::Empty) => prop_assert!(false, "Empty after close"),
                }
            }
        }

        for p in 0..producers {
            let mut all: Vec<u64> = Vec::new();
            for (c, streams) in received.iter().enumerate() {
                // FIFO within each consumer's stream of this producer.
                for w in streams[p].windows(2) {
                    prop_assert!(
                        w[0] < w[1],
                        "consumer {} saw producer {} events out of order: {:?}",
                        c, p, streams[p]
                    );
                }
                all.extend(&streams[p]);
            }
            // Exactly-once delivery of every accepted event.
            all.sort_unstable();
            prop_assert_eq!(
                &all, &accepted[p],
                "producer {} events lost or duplicated", p
            );
        }
    }
}

/// Size classes used by the classed-allocator property tests. Chosen so
/// `ops_strategy`'s 1..2048-byte requests produce a healthy mix of class
/// hits (requests rounding to exactly 64, 192 or 640) and first-fit
/// fallbacks (everything else).
const CLASS_SIZES: [usize; 3] = [64, 192, 640];

proptest! {
    /// The two-tier allocator never hands out overlapping ranges, and
    /// after freeing everything the class queues drain back into the
    /// free list and coalesce to full capacity.
    #[test]
    fn classed_allocator_disjoint_and_coalesces_on_drain(ops in ops_strategy()) {
        let capacity = 1 << 16;
        let seg = SharedSegment::with_classes(capacity, &CLASS_SIZES).unwrap();
        let mut live: Vec<Block> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(b) = seg.allocate(size) {
                        let (s, e) = (b.offset(), b.offset() + b.len());
                        for other in &live {
                            let (os, oe) = (other.offset(), other.offset() + other.len());
                            prop_assert!(e <= os || oe <= s,
                                "overlap: [{s},{e}) vs [{os},{oe})");
                        }
                        live.push(b);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
        }
        drop(live);
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    /// Same invariants when every allocation goes through a per-client
    /// slab cache, plus the reuse bound: with a single class size, the
    /// allocator materializes at most (peak live + cache slots) distinct
    /// offsets — freed blocks are recycled, not re-carved.
    #[test]
    fn slab_cache_reuse_and_no_overlap(ops in ops_strategy()) {
        let capacity = 1 << 16;
        let class = 640usize;
        let seg = SharedSegment::with_classes(capacity, &[class]).unwrap();
        let cache = damaris_shm::SlabCache::new(&seg);
        let mut live: Vec<Block> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut peak_live = 0usize;
        for op in ops {
            match op {
                Op::Alloc(_) => {
                    // Fixed-size requests: the steady-state Damaris shape.
                    if let Ok(b) = cache.allocate(class) {
                        let (s, e) = (b.offset(), b.offset() + b.len());
                        for other in &live {
                            let (os, oe) = (other.offset(), other.offset() + other.len());
                            prop_assert!(e <= os || oe <= s,
                                "overlap: [{s},{e}) vs [{os},{oe})");
                        }
                        seen.insert(b.offset());
                        live.push(b);
                        peak_live = peak_live.max(live.len());
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
        }
        // 2 cache slots per class (SLAB_SLOTS_PER_CLASS): carving a fresh
        // offset only happens when cache and class queue are both empty.
        prop_assert!(seen.len() <= peak_live + 2,
            "{} distinct offsets for peak {} live blocks: slab reuse broken",
            seen.len(), peak_live);
        drop(live);
        cache.flush();
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity());
        drop(cache);
    }

    /// Buddy-tier invariants under mixed-size churn (the AMR shape: no
    /// two requests need share a size): the allocator never hands out
    /// overlapping ranges, every allocation is conserved exactly —
    /// `used_bytes` equals the sum of the live blocks' buddy-rounded
    /// sizes, however many splits and merges happened in between — and
    /// after draining every block the tier merges back to the root: one
    /// hole spanning the whole capacity.
    #[test]
    fn buddy_disjoint_conserving_and_merges_to_root(ops in ops_strategy()) {
        let capacity = 1 << 16;
        let seg = SharedSegment::with_buddy(capacity, &[]).unwrap();
        // (block, footprint): footprint measured as the used_bytes delta
        // the allocation caused (single-threaded, so exact).
        let mut live: Vec<(Block, usize)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let before = seg.used_bytes();
                    if let Ok(b) = seg.allocate(size) {
                        let footprint = seg.used_bytes() - before;
                        // A buddy-served request occupies its power-of-two
                        // order or the three-quarter trim of that order
                        // (2^k + 2^(k-1)); the fragmentation fallback
                        // occupies the plain 64-rounded length. Nothing
                        // else is legal.
                        let rounded = size.div_ceil(64) * 64;
                        let pow2 = rounded.next_power_of_two().max(64);
                        let tq = 3 * (pow2 / 4);
                        let tq_legal = pow2 / 4 >= 64 && rounded <= tq;
                        prop_assert!(footprint == pow2
                                || footprint == rounded
                                || (tq_legal && footprint == tq),
                            "footprint {footprint} for request {size}");
                        // The three-quarter family caps internal
                        // fragmentation: strictly less than a third of
                        // every footprint is padding.
                        prop_assert!(3 * (footprint - rounded) < footprint.max(1),
                            "fragmentation {} of footprint {footprint} for request {size}",
                            footprint - rounded);
                        let (s, e) = (b.offset(), b.offset() + b.len());
                        for (other, _) in &live {
                            let (os, oe) = (other.offset(), other.offset() + other.len());
                            prop_assert!(e <= os || oe <= s,
                                "overlap: [{s},{e}) vs [{os},{oe})");
                        }
                        live.push((b, footprint));
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
            // Split/merge conservation of bytes: however many splits and
            // merges happened, the accounting must equal exactly the sum
            // of the live blocks' footprints at every step.
            let expected: usize = live.iter().map(|(_, f)| f).sum();
            prop_assert_eq!(seg.used_bytes(), expected,
                "conservation broken with {} live blocks", live.len());
        }
        drop(live);
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity(),
            "full drain must merge back to the root");
    }

    /// Frozen-block data written through the buddy fast path reads back
    /// intact while mixed-size churn splits, merges and reuses the
    /// neighbouring ranges.
    #[test]
    fn buddy_blocks_keep_data_under_mixed_churn(
        sizes in proptest::collection::vec(1usize..1500, 1..40),
    ) {
        let seg = SharedSegment::with_buddy(1 << 16, &[]).unwrap();
        let mut kept: Vec<(u8, damaris_shm::BlockRef)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let fill = (i % 251) as u8;
            let mut b = seg.allocate(size).unwrap();
            b.as_mut_slice().fill(fill);
            let r = b.freeze();
            if i % 2 == 0 {
                kept.push((fill, r));
            } // odd ones drop immediately → order queues → merged/reused
        }
        for (fill, r) in &kept {
            prop_assert!(r.as_slice().iter().all(|b| b == fill),
                "buddy churn corrupted a live block");
        }
        drop(kept);
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    /// Frozen-block data written through the classed fast path reads back
    /// intact while unrelated alloc/free churn reuses neighbouring slots.
    #[test]
    fn classed_blocks_keep_data_under_churn(vals in proptest::collection::vec(any::<u64>(), 1..24)) {
        let seg = SharedSegment::with_classes(1 << 14, &[192]).unwrap();
        let mut kept = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            let mut b = seg.allocate(192).unwrap();
            b.write_pod(&[v; 24]);
            let r = b.freeze();
            if i % 2 == 0 {
                kept.push((v, r));
            } // odd ones drop immediately → class queue → reused
        }
        for (v, r) in &kept {
            prop_assert_eq!(r.as_pod::<u64>(), &[*v; 24][..]);
        }
        drop(kept);
        prop_assert_eq!(seg.used_bytes(), 0);
    }
}
