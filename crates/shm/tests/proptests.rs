//! Property tests for the segment allocator and the message queue.

use damaris_shm::{Block, MessageQueue, SharedSegment};
use proptest::prelude::*;

/// A scripted allocator operation.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a block of the given size (bytes).
    Alloc(usize),
    /// Free the i-th oldest live block (modulo live count).
    Free(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..2048).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
        ],
        1..200,
    )
}

proptest! {
    /// The allocator never hands out overlapping ranges, and after freeing
    /// everything the free list coalesces back to full capacity.
    #[test]
    fn allocator_disjoint_and_coalescing(ops in ops_strategy()) {
        let capacity = 1 << 16;
        let seg = SharedSegment::new(capacity).unwrap();
        let mut live: Vec<Block> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(b) = seg.allocate(size) {
                        // Check disjointness against every live block.
                        let (s, e) = (b.offset(), b.offset() + b.len());
                        for other in &live {
                            let (os, oe) = (other.offset(), other.offset() + other.len());
                            prop_assert!(e <= os || oe <= s,
                                "overlap: [{s},{e}) vs [{os},{oe})");
                        }
                        live.push(b);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
        }
        drop(live);
        prop_assert_eq!(seg.used_bytes(), 0);
        prop_assert_eq!(seg.largest_free_block(), seg.capacity());
    }

    /// Data written into a block reads back identically after freeze.
    #[test]
    fn block_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let seg = SharedSegment::new(1 << 14).unwrap();
        let mut b = seg.allocate(data.len()).unwrap();
        b.write_bytes(&data);
        let r = b.freeze();
        prop_assert_eq!(r.as_slice(), &data[..]);
    }

    /// f64 payloads survive the pod round-trip bit-exactly (including NaN
    /// payloads and signed zeros).
    #[test]
    fn pod_roundtrip_f64(data in proptest::collection::vec(any::<u64>(), 1..512)) {
        let floats: Vec<f64> = data.iter().map(|&bits| f64::from_bits(bits)).collect();
        let seg = SharedSegment::new(1 << 14).unwrap();
        let mut b = seg.allocate(floats.len() * 8).unwrap();
        b.write_pod(&floats);
        let r = b.freeze();
        let back: Vec<u64> = r.as_pod::<f64>().iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(back, data);
    }

    /// Single-threaded queue use preserves exact FIFO content.
    #[test]
    fn queue_fifo(content in proptest::collection::vec(any::<u32>(), 0..128)) {
        let q = MessageQueue::bounded(content.len().max(1));
        for &x in &content {
            q.send(x).unwrap();
        }
        q.close();
        let mut out = Vec::new();
        while let Ok(x) = q.recv() {
            out.push(x);
        }
        prop_assert_eq!(out, content);
    }
}
