//! Process-mode Damaris: one dedicated core and three clients as separate
//! OS **processes**, exchanging events over Unix-domain sockets while the
//! block payloads flow through a file-backed shared-memory segment — the
//! paper's actual architecture (every core an MPI process, a POSIX shm
//! segment per node), not a thread approximation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example process_mode
//! ```
//!
//! The binary re-executes itself once per rank (watch `ps` while it runs):
//! rank 0 serves as the dedicated core, ranks 1..3 simulate compute cores
//! writing two variables per iteration.

use damaris::core::prelude::*;
use damaris::core::process::{ProcessClient, ProcessServer, StatsSink, DEDICATED_RANK};
use damaris::mpi::World;

const XML: &str = r#"
  <simulation name="process-mode-example">
    <architecture>
      <dedicated cores="1"/>
      <buffer size="8388608"/>
      <queue capacity="256"/>
    </architecture>
    <data>
      <parameter name="n" value="4096"/>
      <layout name="field" type="f64" dimensions="n"/>
      <variable name="pressure" layout="field"/>
      <variable name="energy" layout="field"/>
    </data>
  </simulation>"#;

const RANKS: usize = 4; // 1 dedicated core + 3 clients
const ITERATIONS: u64 = 20;

fn main() {
    let results = World::run_spawned(RANKS, "process-mode-example", &[], |comm, _| {
        let cfg = Configuration::from_str(XML).expect("embedded config is valid");
        let dir = World::spawn_dir().expect("ranks run inside the spawned world");
        if comm.rank() == DEDICATED_RANK {
            // ---- dedicated core process -------------------------------
            let server = ProcessServer::new(comm, cfg, &dir).expect("server setup");
            let mut sink = StatsSink::new();
            let report = server.serve(comm, &mut sink).expect("serve");
            let pressure = server.config().registry().var_id("pressure").unwrap();
            let (count, sum, ..) = sink
                .summary(ITERATIONS - 1, pressure)
                .expect("last iteration analyzed");
            println!(
                "[dedicated] {} iterations, {} blocks, {:.1} MiB through shared memory; \
                 pressure@{}: count={count} mean={:.3}",
                report.iterations_completed,
                report.blocks_received,
                report.bytes_received as f64 / (1024.0 * 1024.0),
                ITERATIONS - 1,
                sum / count as f64,
            );
            report.iterations_completed.to_le_bytes().to_vec()
        } else {
            // ---- compute core process ---------------------------------
            let mut client = ProcessClient::new(comm, cfg, &dir).expect("client setup");
            let n = 4096;
            for it in 0..ITERATIONS {
                let base = comm.rank() as f64 + it as f64 / 100.0;
                let pressure: Vec<f64> = (0..n).map(|i| base + (i as f64).sin()).collect();
                let energy: Vec<f64> = (0..n).map(|i| base * 0.5 + (i as f64).cos()).collect();
                client
                    .write(comm, "pressure", it, &pressure)
                    .expect("write");
                client.write(comm, "energy", it, &energy).expect("write");
                client.end_iteration(comm, it).expect("end iteration");
            }
            let stats = client.slice_stats();
            println!(
                "[client {}] {} allocations, {} class hits, slice peak {} KiB",
                comm.rank(),
                stats.allocations,
                stats.class_hits,
                stats.peak / 1024,
            );
            client.finalize(comm).expect("finalize");
            Vec::new()
        }
    });
    match results {
        Ok(out) => {
            let completed = u64::from_le_bytes(out[DEDICATED_RANK][..8].try_into().unwrap());
            assert_eq!(completed, ITERATIONS);
            println!("process-mode node finished: {completed} iterations across {RANKS} processes");
        }
        Err(e) => {
            eprintln!("process-mode example failed: {e}");
            std::process::exit(1);
        }
    }
}
