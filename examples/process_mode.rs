//! Process-mode Damaris through the **unified facade**: the simulation is
//! one generic function over [`SimHandle`], and [`Damaris::launch`] stands
//! up whichever world the XML names — here `<world kind="processes"/>`:
//! one dedicated core and three clients as separate OS **processes**,
//! exchanging descriptors over Unix-domain sockets while block payloads
//! flow through a file-backed shared-memory segment (the paper's actual
//! architecture). Flip the XML to `<world kind="threads"/>` and the same
//! `simulate` function runs against an in-process node, untouched.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example process_mode
//! ```
//!
//! The binary re-executes itself once per rank (watch `ps` while it runs):
//! rank 0 serves as the dedicated core, ranks 1..3 simulate compute cores
//! writing two variables per iteration.

use damaris::core::prelude::*;

const XML: &str = r#"
  <simulation name="process-mode-example">
    <architecture>
      <dedicated cores="1"/>
      <clients count="3"/>
      <buffer size="8388608"/>
      <queue capacity="256"/>
      <world kind="processes"/>
    </architecture>
    <data>
      <parameter name="n" value="4096"/>
      <layout name="field" type="f64" dimensions="n"/>
      <variable name="pressure" layout="field"/>
      <variable name="energy" layout="field"/>
    </data>
  </simulation>"#;

const ITERATIONS: u64 = 20;

/// Written once against the facade; knows nothing about worlds.
fn simulate<H: SimHandle>(h: &mut H) -> Vec<u8> {
    let n = 4096;
    let pressure_id = h.var_id("pressure").expect("declared variable");
    for it in 0..ITERATIONS {
        let base = h.id() as f64 + it as f64 / 100.0;
        let pressure: Vec<f64> = (0..n).map(|i| base + (i as f64).sin()).collect();
        // Copy write through the interned id (zero name lookups in
        // steady state)…
        h.write_id(pressure_id, it, &pressure).expect("write");
        // …and the zero-copy path: compute energy directly into the
        // shared segment (thread mode) / shared mapping (process mode).
        let mut w = h.alloc("energy", it).expect("alloc");
        for (i, slot) in w.as_mut_slice().chunks_exact_mut(8).enumerate() {
            slot.copy_from_slice(&(base * 0.5 + (i as f64).cos()).to_le_bytes());
        }
        h.commit(w).expect("commit");
        h.end_iteration(it).expect("end iteration");
    }
    h.finalize().expect("finalize");
    let stats = h.stats();
    println!(
        "[client {}] {} writes, {:.1} MiB through shared memory, mean write {:.1} µs",
        h.id(),
        stats.writes,
        stats.bytes_written as f64 / (1024.0 * 1024.0),
        stats.mean_write_seconds() * 1e6,
    );
    stats.writes.to_le_bytes().to_vec()
}

fn main() {
    let cfg = Configuration::from_str(XML).expect("embedded config is valid");
    let report = Damaris::launch(cfg, "process-mode-example", &[], |h, _| simulate(h))
        .expect("launch succeeds");
    println!(
        "[dedicated] {} iterations, {} blocks, {:.1} MiB consumed out of shared memory",
        report.iterations_completed,
        report.blocks_received,
        report.bytes_received as f64 / (1024.0 * 1024.0),
    );
    assert_eq!(report.iterations_completed, ITERATIONS);
    assert_eq!(report.blocks_received, ITERATIONS * 2 * 3);
    for out in &report.outputs {
        let writes = u64::from_le_bytes(out[..8].try_into().unwrap());
        assert_eq!(writes, ITERATIONS * 2);
    }
    println!(
        "process-mode node finished: {} iterations across 4 processes \
         (same simulate() runs on <world kind=\"threads\"/> unchanged)",
        report.iterations_completed
    );
}
