//! Live dashboard consumer: watch a running simulation over the
//! subscriber streaming tier.
//!
//! One SMP "node" with 2 compute cores runs a toy heat field while the
//! `<serve>` element stands up a TCP endpoint beside the dedicated core.
//! A dashboard thread — which could just as well be a separate process on
//! another machine — connects with [`damaris::serve::Subscriber`],
//! subscribes to the `temperature` variable only, and renders a one-line
//! summary (min/mean/max plus a sparkline) per iteration as frames
//! arrive. The compute loop never waits for it: a dashboard that falls
//! behind is lagged past (LAG frame), never a source of backpressure.
//!
//! Run with: `cargo run --release --example live_dashboard`

use damaris::core::prelude::*;
use damaris::serve::{Subscriber, SubscriberEvent};

const CONFIG: &str = r#"
<simulation name="dashboard">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="8388608"/>
    <queue capacity="256"/>
    <serve listen="127.0.0.1:0" queue_frames="64"/>
  </architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="grid" type="f64" dimensions="n,n"/>
    <variable name="temperature" layout="grid" unit="K"/>
    <variable name="pressure" layout="grid" unit="Pa"/>
  </data>
</simulation>"#;

const N: usize = 64;
const ITERATIONS: u64 = 20;

/// The dashboard: subscribe to one variable and print a rolling summary.
fn dashboard(addr: std::net::SocketAddr) {
    let mut sub = Subscriber::connect(addr).expect("dashboard connects");
    println!("dashboard: attached to '{}' at {addr}", sub.simulation());
    // Only temperature — the server filters pressure frames out for us.
    sub.subscribe(&["temperature"]).expect("subscribe");
    let spark = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    loop {
        match sub.next_event().expect("stream healthy") {
            SubscriberEvent::Data {
                variable,
                iteration,
                source,
                bytes,
            } => {
                let field: Vec<f64> = bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
                for &v in &field {
                    lo = lo.min(v);
                    hi = hi.max(v);
                    sum += v;
                }
                let mean = sum / field.len() as f64;
                // Sparkline over one row through the middle of the grid.
                let row = &field[N * (N / 2)..N * (N / 2) + N];
                let line: String = row
                    .iter()
                    .step_by(8)
                    .map(|&v| {
                        let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                        spark[(t * (spark.len() - 1) as f64).round() as usize]
                    })
                    .collect();
                println!(
                    "  it {iteration:>3} {variable} rank{source}: \
                     min {lo:7.2} mean {mean:7.2} max {hi:7.2}  {line}"
                );
            }
            SubscriberEvent::IterationEnd { .. } => {}
            SubscriberEvent::Lag {
                dropped_frames,
                resume_iteration,
            } => println!(
                "  (lagged: {dropped_frames} frames dropped, resuming at it {resume_iteration})"
            ),
            SubscriberEvent::Bye => {
                println!("dashboard: simulation finished, detaching");
                break;
            }
        }
    }
}

/// A blob of heat diffusing across the grid, drifting with time.
fn temperature(rank: usize, it: u64) -> Vec<f64> {
    let (cx, cy) = (
        N as f64 * (0.25 + 0.5 * (it as f64 / ITERATIONS as f64)),
        N as f64 * (0.35 + 0.3 * rank as f64),
    );
    (0..N * N)
        .map(|i| {
            let (x, y) = ((i % N) as f64, (i / N) as f64);
            let d2 = (x - cx).powi(2) + (y - cy).powi(2);
            280.0 + 60.0 * (-d2 / 80.0).exp()
        })
        .collect()
}

fn main() {
    let node = DamarisNode::builder()
        .config_str(CONFIG)
        .expect("valid configuration")
        .clients(2)
        .output_dir(std::env::temp_dir().join("damaris-dashboard"))
        .build()
        .expect("node starts");

    // The streaming tier was auto-registered from <serve>; hand its
    // (ephemeral) address to the dashboard.
    let addr = node.serve_addr().expect("streaming tier bound");
    let dash = std::thread::spawn(move || dashboard(addr));

    // The simulation: entirely unaware of the dashboard.
    std::thread::scope(|scope| {
        for client in node.clients() {
            scope.spawn(move || {
                let rank = client.id();
                for it in 0..ITERATIONS {
                    client
                        .write("temperature", it, &temperature(rank, it))
                        .expect("write temperature");
                    client
                        .write("pressure", it, &vec![101_325.0f64; N * N])
                        .expect("write pressure");
                    client.end_iteration(it).expect("end iteration");
                    // A compute phase, so the stream is visibly "live".
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                client.finalize().expect("finalize");
            });
        }
    });

    let stats = node.serve_stats().expect("serve stats");
    let report = node.shutdown().expect("clean shutdown");
    dash.join().expect("dashboard thread");
    println!(
        "served {} iterations as {} DATA frames ({} bytes on the wire) to {} subscriber(s)",
        stats.iterations_published,
        stats.data_frames_published,
        stats.bytes_sent,
        stats.subscribers_connected,
    );
    println!(
        "simulation: {} iterations, {} blocks received",
        report.iterations_completed, report.blocks_received
    );
}
