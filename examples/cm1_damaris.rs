//! CM1 through Damaris vs the two state-of-the-art baselines — the
//! laptop-scale twin of the paper's §IV Kraken campaign.
//!
//! Eight "cores" simulate a warm-bubble atmosphere. Three I/O strategies
//! persist every iteration's five 3-D fields:
//!
//! * file-per-process (synchronous, one file per rank per dump),
//! * collective two-phase (synchronous, one shared file per dump),
//! * Damaris (asynchronous: 7 compute clients + 1 dedicated core, one
//!   node file per dump, compression in the dedicated core's spare time).
//!
//! The program prints what the *simulation* saw: per-iteration write cost,
//! total run time, files produced, bytes stored.
//!
//! Run with: `cargo run --release --example cm1_damaris`

use std::sync::Arc;

use damaris::apps::{Cm1, Cm1Config, ProxyApp};
use damaris::core::baseline;
use damaris::core::plugins::{CompressPlugin, H5Writer};
use damaris::core::prelude::*;
use damaris::mpi::World;

const NX: usize = 48;
const NY: usize = 48;
const NZ: usize = 24;
const ITERATIONS: u64 = 4;

fn config(clients: usize) -> String {
    // Five variables per client, one layout.
    let _ = clients;
    format!(
        r#"<simulation name="cm1">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="{}"/>
               <queue capacity="512"/>
               <skip mode="block" high-watermark="0.95"/>
             </architecture>
             <data>
               <layout name="vol" type="f64" dimensions="{NZ},{NY},{NX}"/>
               <mesh name="atmosphere" type="rectilinear">
                 <coord name="x" unit="m"/>
                 <coord name="y" unit="m"/>
                 <coord name="z" unit="m"/>
               </mesh>
               <variable name="u" layout="vol" mesh="atmosphere" unit="m/s"/>
               <variable name="v" layout="vol" mesh="atmosphere" unit="m/s"/>
               <variable name="w" layout="vol" mesh="atmosphere" unit="m/s"/>
               <variable name="theta" layout="vol" mesh="atmosphere" unit="K"/>
               <variable name="qv" layout="vol" mesh="atmosphere" unit="kg/kg"/>
             </data>
             <actions>
               <action name="dump" plugin="hdf5" event="end-of-iteration">
                 <param name="codec" value="xor-delta8,shuffle8,rle,lzss"/>
               </action>
               <action name="pack" plugin="compress" event="end-of-iteration"/>
             </actions>
           </simulation>"#,
        64 << 20
    )
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The instrumented simulation, written once against the [`SimHandle`]
/// facade: the same function drives a thread-mode client here and would
/// drive a process-mode rank unchanged (see `examples/process_mode.rs`).
fn run_rank<H: SimHandle>(h: &mut H) -> ClientStats {
    let mut sim = Cm1::new(Cm1Config {
        nx: NX,
        ny: NY,
        nz: NZ,
        seed: h.id() as u64,
        ..Default::default()
    });
    for it in 0..ITERATIONS {
        sim.step();
        for (name, values) in sim.fields() {
            h.write(name, it, values).expect("write");
        }
        h.end_iteration(it).expect("end iteration");
    }
    h.finalize().expect("finalize");
    h.stats()
}

fn damaris_run(out: &std::path::Path) {
    let clients = 7usize; // 8 cores: 7 compute + 1 dedicated
    let node = DamarisNode::builder()
        .config_str(&config(clients))
        .expect("valid config")
        .clients(clients)
        .output_dir(out)
        .build()
        .expect("node starts");
    let h5 = Arc::new(H5Writer::new());
    let pack = Arc::new(CompressPlugin::new());
    node.register_plugin(h5.clone());
    node.register_plugin(pack.clone());

    let t0 = std::time::Instant::now();
    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            std::thread::spawn(move || {
                let mut h = Damaris::threads(client);
                run_rank(&mut h)
            })
        })
        .collect();
    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let report = node.shutdown().expect("shutdown");
    let wall = t0.elapsed().as_secs_f64();

    let total_writes: u64 = stats.iter().map(|s| s.writes).sum();
    let total_write_s: f64 = stats.iter().map(|s| s.total_write_seconds).sum();
    let worst_write_s = stats
        .iter()
        .map(|s| s.max_write_seconds)
        .fold(0.0, f64::max);
    let (logical, stored) = h5.totals();
    println!("--- damaris (7 compute + 1 dedicated) ---");
    println!(
        "wall: {wall:.2}s  iterations: {}",
        report.iterations_completed
    );
    println!(
        "sim-visible write cost: mean {:.3} ms, max {:.3} ms",
        if total_writes == 0 {
            0.0
        } else {
            total_write_s / total_writes as f64 * 1e3
        },
        worst_write_s * 1e3
    );
    println!(
        "files: {} (one per node per dump)  bytes: {logical} logical → {stored} stored ({:.1}:1)",
        h5.written().len(),
        logical as f64 / stored.max(1) as f64
    );
    println!(
        "spare-time compression ratio: {:.1}:1  dedicated idle: {:.0} %",
        pack.overall_ratio(),
        report.dedicated_idle_fraction * 100.0
    );
}

fn baseline_run(which: &str, out: std::path::PathBuf) {
    let ranks = 8usize;
    let which_owned = which.to_string();
    let t0 = std::time::Instant::now();
    let reports = World::run(ranks, move |comm| {
        let mut sim = Cm1::new(Cm1Config {
            nx: NX,
            ny: NY,
            nz: NZ,
            seed: comm.rank() as u64,
            ..Default::default()
        });
        let mut write_secs = Vec::new();
        let mut files = 0usize;
        for it in 0..ITERATIONS {
            sim.step();
            let fields = sim.fields();
            let vars: Vec<(&str, &[f64])> = fields.iter().map(|&(n, v)| (n, v)).collect();
            let report = if which_owned == "file-per-process" {
                baseline::file_per_process(comm, &out, "cm1", it, &vars).expect("fpp dump")
            } else {
                baseline::collective(comm, &out, "cm1", it, &vars, 2).expect("collective dump")
            };
            write_secs.push(report.seconds);
            files += report.files_created;
        }
        (write_secs, files)
    });
    let wall = t0.elapsed().as_secs_f64();
    let all_writes: Vec<f64> = reports
        .iter()
        .flat_map(|(w, _)| w.iter().copied())
        .collect();
    let files: usize = reports.iter().map(|(_, f)| f).sum();
    println!("--- {which} (8 ranks, synchronous) ---");
    println!("wall: {wall:.2}s");
    println!(
        "sim-visible write cost: mean {:.3} ms, max {:.3} ms",
        mean(&all_writes) * 1e3,
        all_writes.iter().cloned().fold(0.0, f64::max) * 1e3
    );
    println!("files: {files}");
}

fn main() {
    let base = std::env::temp_dir().join(format!("damaris-cm1-{}", std::process::id()));
    println!(
        "CM1 warm bubble, {NX}x{NY}x{NZ} per rank, {ITERATIONS} iterations, 5 variables/dump\n"
    );
    damaris_run(&base.join("damaris"));
    baseline_run("file-per-process", base.join("fpp"));
    baseline_run("collective", base.join("collective"));
    println!(
        "\nNote: at laptop scale the file system is a local disk — the paper's\n\
         contention effects live in the cluster model (see `cargo bench`).\n\
         What this example demonstrates for real: the sim-visible write cost\n\
         of Damaris stays at shared-memory speed and does not include any\n\
         file I/O, while both baselines block the simulation for every dump."
    );
    std::fs::remove_dir_all(&base).ok();
}
