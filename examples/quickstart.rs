//! Quickstart: the smallest complete Damaris session.
//!
//! One SMP "node" with 3 compute cores (threads) and 1 dedicated core.
//! Each compute core writes a temperature grid every iteration — one line
//! of instrumentation per variable — and the dedicated core aggregates all
//! blocks into one HDF5-like file per iteration, entirely off the
//! simulation's critical path.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use damaris::core::plugins::{H5Writer, StatsPlugin};
use damaris::core::prelude::*;

const CONFIG: &str = r#"
<simulation name="quickstart">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="8388608"/>
    <queue capacity="256"/>
  </architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="grid" type="f64" dimensions="n,n"/>
    <mesh name="plane" type="rectilinear">
      <coord name="x" unit="m"/>
      <coord name="y" unit="m"/>
    </mesh>
    <variable name="temperature" layout="grid" mesh="plane" unit="K"/>
  </data>
  <actions>
    <action name="dump" plugin="hdf5" event="end-of-iteration" frequency="1">
      <param name="codec" value="xor-delta8,shuffle8,rle"/>
    </action>
  </actions>
</simulation>"#;

fn main() {
    let out_dir = std::env::temp_dir().join("damaris-quickstart");
    let node = DamarisNode::builder()
        .config_str(CONFIG)
        .expect("valid configuration")
        .clients(3)
        .output_dir(&out_dir)
        .build()
        .expect("node starts");

    // The HDF5 writer is auto-registered from the <actions> section; add a
    // statistics plugin to show multiple services sharing the dedicated core.
    let h5 = Arc::new(H5Writer::new());
    let stats = Arc::new(StatsPlugin::new());
    node.register_plugin(h5.clone());
    node.register_plugin(stats.clone());

    let iterations = 5u64;
    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            std::thread::spawn(move || {
                let id = client.id() as f64;
                for it in 0..iterations {
                    // A toy "simulation": a drifting warm patch.
                    let field: Vec<f64> = (0..64 * 64)
                        .map(|p| {
                            let (x, y) = ((p % 64) as f64, (p / 64) as f64);
                            300.0
                                + id
                                + ((x - 32.0 - it as f64).powi(2) + (y - 32.0).powi(2))
                                    .sqrt()
                                    .recip()
                                    .min(1.0)
                        })
                        .collect();
                    // The single line of Damaris instrumentation:
                    client.write("temperature", it, &field).expect("write");
                    client.end_iteration(it).expect("end iteration");
                }
                client.finalize().expect("finalize");
                client.stats()
            })
        })
        .collect();

    let client_stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let report = node.shutdown().expect("clean shutdown");

    println!(
        "quickstart: {} iterations completed",
        report.iterations_completed
    );
    println!(
        "dedicated core idle: {:.1} %",
        report.dedicated_idle_fraction * 100.0
    );
    for (i, s) in client_stats.iter().enumerate() {
        println!(
            "client {i}: {} writes, mean sim-visible cost {:.3} ms (p99 {:.3} ms)",
            s.writes,
            s.mean_write_seconds() * 1e3,
            s.p99_write_seconds() * 1e3
        );
    }
    for f in h5.written() {
        println!(
            "wrote {:?}: {} datasets, {} B logical → {} B stored",
            f.path.file_name().expect("named file"),
            f.datasets,
            f.logical_bytes,
            f.stored_bytes
        );
    }
    let last = stats
        .summary(iterations - 1, "temperature")
        .expect("stats ran");
    println!(
        "temperature @ last iteration: min {:.2} K, max {:.2} K, mean {:.2} K",
        last.min, last.max, last.mean
    );
    std::fs::remove_dir_all(&out_dir).ok();
}
