//! Nek5000 with in-situ visualization, both ways — the §V.C experiment.
//!
//! The same spectral-element proxy is coupled to the same analysis kernels
//! (isosurface, histogram, renderer) through:
//!
//! 1. **VisIt-libsim-style synchronous coupling** — the simulation must
//!    implement the full adaptor surface (simulation/mesh/variable
//!    metadata, mesh and variable production, command handling) and stop
//!    at every step while analysis runs. The required instrumentation is
//!    marked with `BEGIN/END-INSTRUMENTATION(visit)` and exceeds one
//!    hundred lines — the paper's §V.C.2 observation.
//! 2. **Damaris dedicated-core coupling** — the simulation's ordinary
//!    `write` calls (marked `BEGIN/END-INSTRUMENTATION(damaris)`, fewer
//!    than ten lines) plus an external XML description; analysis runs on
//!    the dedicated core, off the simulation's critical path.
//!
//! The `e9_usability` bench counts exactly these marked regions.
//!
//! Run with: `cargo run --release --example nek_insitu`

use std::sync::Arc;

use damaris::apps::{Nek, NekConfig, ProxyApp};
use damaris::core::prelude::*;
use damaris::insitu::{
    InSituPlugin, LibSimAdaptor, MeshData, SimulationMetaData, SyncVisItSession, VariableData,
};

const ELEMENTS: usize = 48;
const ORDER: usize = 8;
const STEPS: u64 = 6;

// =====================================================================
// Coupling 1: VisIt-libsim style. Everything between the markers is code
// the simulation developer must write and maintain.
// =====================================================================

// BEGIN-INSTRUMENTATION(visit)
struct NekVisItAdaptor {
    sim: Nek,
    halted: bool,
}

impl NekVisItAdaptor {
    fn new(sim: Nek) -> Self {
        NekVisItAdaptor { sim, halted: false }
    }

    fn grid_shape(&self) -> (usize, usize, usize) {
        let p = self.sim.config().order;
        (p, p, self.sim.config().elements * p)
    }
}

impl LibSimAdaptor for NekVisItAdaptor {
    fn get_metadata(&self) -> SimulationMetaData {
        let meshes = vec![damaris::insitu::libsim::MeshMetaData {
            name: "spectral-elements".to_string(),
            topological_dim: 3,
            num_domains: 1,
            axis_labels: ["x".to_string(), "y".to_string(), "z".to_string()],
            axis_units: ["m".to_string(), "m".to_string(), "m".to_string()],
        }];
        let variables = vec![damaris::insitu::libsim::VariableMetaData {
            name: "velocity_magnitude".to_string(),
            mesh: "spectral-elements".to_string(),
            units: "m/s".to_string(),
            nodal: true,
        }];
        SimulationMetaData {
            name: "nek5000-proxy".to_string(),
            cycle: self.sim.iteration(),
            time: self.sim.iteration() as f64 * 0.01,
            meshes,
            variables,
            commands: vec!["halt".to_string(), "step".to_string(), "run".to_string()],
        }
    }

    fn get_mesh(&self, name: &str) -> Option<MeshData> {
        if name != "spectral-elements" {
            return None;
        }
        let (nx, ny, nz) = self.grid_shape();
        let axis = |n: usize| (0..n).map(|i| i as f64 / n as f64).collect::<Vec<f64>>();
        Some(MeshData {
            x: axis(nx),
            y: axis(ny),
            z: axis(nz),
        })
    }

    fn get_variable(&self, name: &str) -> Option<VariableData> {
        if name != "velocity_magnitude" {
            return None;
        }
        let (nx, ny, nz) = self.grid_shape();
        Some(VariableData {
            values: self.sim.values().to_vec(),
            shape: (nx, ny, nz),
        })
    }

    fn get_domain_list(&self, mesh: &str) -> Vec<usize> {
        if mesh == "spectral-elements" {
            vec![0] // single-process run: one domain
        } else {
            Vec::new()
        }
    }

    fn execute_command(&mut self, command: &str) {
        match command {
            "halt" => self.halted = true,
            "run" | "step" => self.halted = false,
            _ => {}
        }
    }
}

/// What libsim's `VisItDetectInput` reports each time around the loop.
enum VisItInput {
    /// No connection activity: run the next simulation step.
    Idle,
    /// The viewer wants a synchronous visualization update.
    EngineUpdate,
    /// The viewer sent a console command.
    #[allow(dead_code)] // part of the faithful libsim input set
    Command(&'static str),
}

/// The libsim main loop the simulation must restructure itself around:
/// instead of a plain time loop, every cycle polls the visualization
/// engine, dispatches commands, and runs synchronous updates.
fn visit_mainloop(adaptor: &mut NekVisItAdaptor, session: &mut SyncVisItSession, steps: u64) {
    let mut completed = 0u64;
    // The real libsim multiplexes a listen socket here; the proxy's
    // "viewer" requests an update after every step (the paper's periodic
    // image regime).
    let mut pending: Vec<VisItInput> = Vec::new();
    while completed < steps {
        let input = pending.pop().unwrap_or(VisItInput::Idle);
        match input {
            VisItInput::Idle => {
                if adaptor.halted {
                    // A halted simulation still has to service the viewer.
                    pending.push(VisItInput::EngineUpdate);
                    continue;
                }
                adaptor.sim.step();
                completed += 1;
                pending.push(VisItInput::EngineUpdate);
            }
            VisItInput::EngineUpdate => {
                // The simulation is stopped for the whole update.
                session.timestep(adaptor);
            }
            VisItInput::Command(cmd) => {
                adaptor.execute_command(cmd);
            }
        }
    }
}

fn run_visit_coupled() -> (f64, f64) {
    let sim = Nek::new(NekConfig {
        elements: ELEMENTS,
        order: ORDER,
        ..Default::default()
    });
    let mut adaptor = NekVisItAdaptor::new(sim);
    let mut session = SyncVisItSession::new();
    // libsim prerequisite: environment setup + .sim2 connection file.
    session.initialize("nek5000-proxy");
    let t0 = std::time::Instant::now();
    visit_mainloop(&mut adaptor, &mut session, STEPS);
    let wall = t0.elapsed().as_secs_f64();
    (wall, session.total_blocked_seconds())
}
// END-INSTRUMENTATION(visit)

// =====================================================================
// Coupling 2: Damaris. The data description lives in XML; the simulation
// code change is the marked region inside the loop below.
// =====================================================================

fn damaris_config() -> String {
    let p = ORDER;
    let nz = ELEMENTS * p;
    format!(
        r#"<simulation name="nek">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="{}"/>
               <queue capacity="64"/>
             </architecture>
             <data>
               <layout name="gll" type="f64" dimensions="{nz},{p},{p}"/>
               <mesh name="spectral-elements" type="rectilinear">
                 <coord name="x" unit="m"/>
                 <coord name="y" unit="m"/>
                 <coord name="z" unit="m"/>
               </mesh>
               <variable name="velocity_magnitude" layout="gll" mesh="spectral-elements" unit="m/s"/>
             </data>
             <actions>
               <action name="viz" plugin="insitu" event="end-of-iteration">
                 <param name="iso_fraction" value="0.5"/>
                 <param name="bins" value="32"/>
               </action>
             </actions>
           </simulation>"#,
        32 << 20
    )
}

/// The instrumented solver loop, written once against the [`SimHandle`]
/// facade — the usability artifact E9 counts: one `write` per variable,
/// one `end_iteration` per step, identical on either world.
fn run_solver<H: SimHandle>(h: &mut H) -> f64 {
    let t0 = std::time::Instant::now();
    let mut sim = Nek::new(NekConfig {
        elements: ELEMENTS,
        order: ORDER,
        ..Default::default()
    });
    for it in 0..STEPS {
        sim.step();
        // BEGIN-INSTRUMENTATION(damaris)
        h.write("velocity_magnitude", it, sim.values())
            .expect("write");
        h.end_iteration(it).expect("end iteration");
        // END-INSTRUMENTATION(damaris)
    }
    h.finalize().expect("finalize");
    t0.elapsed().as_secs_f64()
}

fn run_damaris_coupled() -> (f64, f64) {
    let node = DamarisNode::builder()
        .config_str(&damaris_config())
        .expect("valid config")
        .clients(1)
        .build()
        .expect("node starts");
    let viz = Arc::new(InSituPlugin::new());
    node.register_plugin(viz.clone());
    let mut h = Damaris::threads(node.client(0).expect("client 0"));
    let sim_wall = run_solver(&mut h);
    node.shutdown().expect("shutdown");
    (sim_wall, viz.total_seconds())
}

fn main() {
    println!(
        "Nek5000 proxy, {ELEMENTS} elements of order {ORDER}, {STEPS} steps, \
         isosurface + histogram + render every step\n"
    );
    let (visit_wall, visit_blocked) = run_visit_coupled();
    println!("--- synchronous VisIt-style coupling ---");
    println!("simulation wall: {visit_wall:.3}s");
    println!(
        "of which stopped for visualization: {visit_blocked:.3}s ({:.0} %)",
        visit_blocked / visit_wall * 100.0
    );

    let (damaris_wall, dedicated_seconds) = run_damaris_coupled();
    println!("\n--- Damaris dedicated-core coupling ---");
    println!("simulation wall: {damaris_wall:.3}s (analysis off the critical path)");
    println!("dedicated-core analysis time: {dedicated_seconds:.3}s (overlapped)");

    // E9: count the instrumentation each coupling required.
    let source = include_str!("nek_insitu.rs");
    let visit_loc = damaris_bench_count(source, "visit");
    let damaris_loc = damaris_bench_count(source, "damaris");
    println!("\n--- usability (§V.C.2) ---");
    println!("VisIt-style instrumentation: {visit_loc} lines (paper: >100)");
    println!("Damaris instrumentation:     {damaris_loc} lines (paper: <10, plus XML)");
}

/// Inline copy of the bench crate's counter so the example stays
/// self-contained (the bench target uses the shared implementation).
fn damaris_bench_count(source: &str, tag: &str) -> usize {
    let begin = format!("BEGIN-INSTRUMENTATION({tag})");
    let end = format!("END-INSTRUMENTATION({tag})");
    let mut counting = false;
    let mut count = 0;
    for line in source.lines() {
        if line.contains(&begin) {
            counting = true;
            continue;
        }
        if line.contains(&end) {
            counting = false;
            continue;
        }
        if counting {
            let t = line.trim();
            if !t.is_empty() && !t.starts_with("//") {
                count += 1;
            }
        }
    }
    count
}
