//! Replay the paper's Kraken campaign in the cluster model and print the
//! headline numbers next to the paper's — a fast tour of every §IV result.
//!
//! Run with: `cargo run --release --example kraken_replay`

use damaris::cluster::experiments;

fn main() {
    let dumps = 3;
    let seed = 42;

    println!("Replaying the §IV Kraken campaign (CM1, weak scaling, {dumps} dumps)\n");

    println!("E1 — weak scaling (application run time, virtual seconds)");
    println!(
        "{:>6}  {:<18} {:>10} {:>8} {:>12}",
        "cores", "strategy", "wall", "I/O %", "io/dump"
    );
    for row in experiments::e1_scalability(dumps, seed) {
        println!(
            "{:>6}  {:<18} {:>9.0}s {:>7.0}% {:>11.1}s",
            row.ranks,
            row.strategy,
            row.wall_seconds,
            row.io_fraction * 100.0,
            row.io_per_dump
        );
    }
    println!(
        "\nheadline speedup damaris vs collective at 9216 cores: {:.2}x (paper: 3.5x)",
        experiments::e1_speedup(dumps, seed)
    );

    println!("\nE3 — aggregate throughput at 9216 cores (paper: 0.5 / <1.7 / ~10 GB/s)");
    for row in experiments::e3_throughput(dumps, seed) {
        println!(
            "  {:<18} {:>6.2} GB/s  ({} files/dump)",
            row.strategy, row.throughput_gbps, row.files_per_dump
        );
    }

    println!("\nE4 — dedicated-core idle time (paper: 92-99 %)");
    for (ranks, idle) in experiments::e4_idle_time(dumps, seed) {
        println!("  {ranks:>6} cores: {:.1} % idle", idle * 100.0);
    }

    println!("\nE6 — I/O scheduling (paper: 10 -> 12.7 GB/s)");
    for row in experiments::e6_scheduling(dumps, seed) {
        println!("  {:<14} {:>6.2} GB/s", row.scheduler, row.throughput_gbps);
    }

    println!("\nE7 — in-situ coupling on Grid'5000 (paper: sync VisIt does not scale)");
    println!(
        "{:>6} {:>14} {:>16}",
        "cores", "sync stall", "damaris stall"
    );
    for row in experiments::e7_insitu(dumps, 1.0, seed) {
        println!(
            "{:>6} {:>12.2}s {:>14.2}s",
            row.ranks, row.sync_overhead_s, row.damaris_overhead_s
        );
    }
}
