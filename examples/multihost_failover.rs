//! Multi-host rendezvous and failure survival, end to end:
//!
//! 1. The process world bootstraps from a **seed list** instead of a
//!    shared directory — `<world seeds="host:port,…"/>` names a registry
//!    endpoint, every rank dials it, registers its own data address, and
//!    receives the full peer table back (rank 0 runs the registry
//!    in-process). `"127.0.0.1:0"` below picks a free port; on a real
//!    cluster the list names the head node, and no shared filesystem is
//!    needed for rendezvous.
//! 2. `heartbeat_ms` switches the mesh into **reliable mode**: every link
//!    exchanges PING/PONG, sequenced frames are retained until acked and
//!    retransmitted after a reconnect, and a silent peer is declared dead
//!    after `heartbeat_timeout_ms`. Death is relayed to every survivor,
//!    so all members converge on the same view of who died.
//! 3. One client **crash-stops mid-run** (plain `std::process::exit` —
//!    no goodbye). The dedicated core closes the dead rank's staged
//!    iterations, the survivors keep writing, and the final [`SimReport`]
//!    comes back `degraded` with the dead world rank named.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example multihost_failover
//! ```

use damaris::core::prelude::*;

const XML: &str = r#"
  <simulation name="multihost-failover-example">
    <architecture>
      <dedicated cores="1"/>
      <clients count="3"/>
      <buffer size="8388608"/>
      <queue capacity="256"/>
      <world kind="processes" seeds="127.0.0.1:0"
             heartbeat_ms="100" heartbeat_timeout_ms="1000"/>
    </architecture>
    <data>
      <parameter name="n" value="4096"/>
      <layout name="field" type="f64" dimensions="n"/>
      <variable name="pressure" layout="field"/>
    </data>
  </simulation>"#;

const ITERATIONS: u64 = 12;
/// 0-based client id that crash-stops (world rank VICTIM + 1).
const VICTIM: usize = 1;
/// The victim dies right before this iteration.
const DEATH_ITERATION: u64 = 4;

/// Written once against the facade; knows nothing about worlds — except
/// that one unlucky client pulls the plug on itself.
fn simulate<H: SimHandle>(h: &mut H) -> Vec<u8> {
    let n = 4096;
    let pressure_id = h.var_id("pressure").expect("declared variable");
    for it in 0..ITERATIONS {
        if h.id() == VICTIM && it == DEATH_ITERATION {
            println!("[client {}] crash-stopping before iteration {it}", h.id());
            std::process::exit(1);
        }
        let base = h.id() as f64 + it as f64 / 100.0;
        let pressure: Vec<f64> = (0..n).map(|i| base + (i as f64).sin()).collect();
        h.write_id(pressure_id, it, &pressure).expect("write");
        h.end_iteration(it).expect("end iteration");
    }
    h.finalize().expect("finalize");
    let stats = h.stats();
    println!(
        "[client {}] survived: {} writes, {:.1} MiB through shared memory",
        h.id(),
        stats.writes,
        stats.bytes_written as f64 / (1024.0 * 1024.0),
    );
    stats.writes.to_le_bytes().to_vec()
}

fn main() {
    let cfg = Configuration::from_str(XML).expect("embedded config is valid");
    let report = Damaris::launch(cfg, "multihost-failover-example", &[], |h, _| simulate(h))
        .expect("a client death with heartbeats on must not fail the launch");
    println!(
        "[dedicated] {} iterations, {} blocks; degraded = {}, dead world ranks = {:?}",
        report.iterations_completed, report.blocks_received, report.degraded, report.dead_ranks,
    );
    assert_eq!(report.iterations_completed, ITERATIONS);
    assert!(report.degraded, "the run must be flagged degraded");
    assert_eq!(report.dead_ranks, vec![VICTIM + 1]);
    assert!(
        report.outputs[VICTIM].is_empty(),
        "the victim left no result"
    );
    for (id, out) in report.outputs.iter().enumerate() {
        if id != VICTIM {
            let writes = u64::from_le_bytes(out[..8].try_into().unwrap());
            assert_eq!(writes, ITERATIONS);
        }
    }
    println!(
        "multi-host node survived a client crash: {} of {} clients finished all \
         {} iterations, membership converged on rank {} dead",
        report.outputs.len() - 1,
        report.outputs.len(),
        ITERATIONS,
        VICTIM + 1,
    );
}
