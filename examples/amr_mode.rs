//! AMR mode: variable-size blocks through dynamic layouts and the buddy
//! allocator.
//!
//! Real in-situ pipelines rarely emit fixed-size blocks: adaptive mesh
//! refinement changes each rank's patch sizes every few steps, particle
//! counts drift per iteration, and data-reduction output shrinks with the
//! field's entropy. This example runs a toy refinement workload — every
//! rank's block size varies per iteration, no two ranks agree — over a
//! `dimensions="dynamic"` layout, with `<buffer allocator="buddy">` so
//! the odd sizes allocate from the lock-free per-order queues instead of
//! the first-fit mutex.
//!
//! Run with: `cargo run --release --example amr_mode`

use damaris::core::prelude::*;

const CONFIG: &str = r#"
<simulation name="amr-mode">
  <architecture>
    <dedicated cores="1"/>
    <clients count="4"/>
    <buffer size="8388608" allocator="buddy"/>
    <queue capacity="512"/>
  </architecture>
  <data>
    <!-- A refinement patch: extents arrive with every write; one block
         never exceeds max_size bytes (65536 / 8 = 8192 f64 cells). -->
    <layout name="patch" type="f64" dimensions="dynamic" max_size="65536"/>
    <variable name="density" layout="patch"/>
    <variable name="energy" layout="patch"/>
  </data>
</simulation>"#;

/// Deterministic per-rank refinement level: a few smooth cycles so block
/// sizes grow and shrink like a patch being refined and coarsened.
fn cells_this_step(rank: usize, iteration: u64) -> usize {
    let level = (iteration as usize + rank) % 4; // refinement level 0..3
    let base = 64 << (2 * level); // 64, 256, 1024, 4096 cells
    base + 17 * rank + iteration as usize % 13 // never a round number
}

fn main() {
    let cfg = Configuration::from_str(CONFIG).expect("valid configuration");
    let iterations = 50u64;

    let report = Damaris::launch(cfg, "amr_mode", &[], |h, _| {
        let rank = h.id();
        for it in 0..iterations {
            // Copy path: the density patch of this step's size.
            let cells = cells_this_step(rank, it);
            let density: Vec<f64> = (0..cells).map(|c| (c + rank) as f64 * 0.5).collect();
            h.write("density", it, &density).expect("write density");

            // Zero-copy path: compute energy straight into shared memory
            // (a different size again — refinement is per-variable too).
            let cells = cells_this_step(rank, it.wrapping_add(2));
            let mut w = h
                .alloc_sized("energy", it, cells * 8)
                .expect("alloc energy");
            for (c, cell) in w.as_mut_slice().chunks_exact_mut(8).enumerate() {
                cell.copy_from_slice(&((c * rank) as f64).to_le_bytes());
            }
            h.commit(w).expect("commit energy");

            h.end_iteration(it).expect("end iteration");
        }
        h.finalize().expect("finalize");
        let s = h.stats();
        let mut out = s.writes.to_le_bytes().to_vec();
        out.extend(s.bytes_written.to_le_bytes());
        out.extend(s.p50_write_seconds().to_le_bytes());
        out
    })
    .expect("amr session");

    println!(
        "amr_mode: {} iterations, {} blocks ({} bytes) consumed by the dedicated core",
        report.iterations_completed, report.blocks_received, report.bytes_received
    );
    for (rank, out) in report.outputs.iter().enumerate() {
        let writes = u64::from_le_bytes(out[..8].try_into().expect("writes"));
        let bytes = u64::from_le_bytes(out[8..16].try_into().expect("bytes"));
        let p50 = f64::from_le_bytes(out[16..24].try_into().expect("p50"));
        println!(
            "rank {rank}: {writes} variable-size writes, {bytes} bytes, p50 {:.2} µs",
            p50 * 1e6
        );
    }
    assert_eq!(report.iterations_completed, iterations);
    assert_eq!(report.blocks_received, iterations * 4 * 2);
    println!("every block size differed per (rank, iteration) — no fixed layout anywhere");
}
