//! Explore the calibrated Lustre model behind the cluster results: the
//! interference curve, the MDS create storm, and the three I/O patterns'
//! per-OST load — the "why" behind E3's 0.5 / 1.7 / 10 GB/s.
//!
//! Run with: `cargo run --release --example pfs_explorer`

use damaris::pfs::{FileSpec, Pfs, PfsConfig, WriteRequest};

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

fn main() {
    let cfg = PfsConfig::kraken_lustre();
    println!(
        "Kraken-class Lustre model: {} OSTs x {:.0} MB/s  (ceiling {:.1} GB/s)\n",
        cfg.n_osts,
        cfg.ost_bandwidth / 1e6,
        cfg.peak_bandwidth() / 1e9
    );

    println!("interference efficiency vs concurrent streams per OST");
    println!(
        "(knee {} streams, floor {:.0} %)",
        cfg.interference_knee,
        cfg.interference_floor * 100.0
    );
    for streams in [1usize, 2, 3, 4, 6, 9, 14, 27, 55, 110, 300] {
        let eff = cfg.efficiency(streams);
        println!(
            "{streams:>4} streams  {}  {:>5.1} %",
            bar(eff, 40),
            eff * 100.0
        );
    }

    println!("\nwho puts how many streams on each OST at 9216 cores:");
    println!(
        "  file-per-process : 9216 files / 336 OSTs ≈ 27 streams → eff {:>5.1} %",
        cfg.efficiency(27) * 100.0
    );
    println!("  collective       : 1 shared file, every OST sees ~300 writers → eff {:>5.1} % + lock handoffs",
        cfg.efficiency(300) * 100.0);
    println!(
        "  damaris          : 768 node files ≈ 2–3 streams → eff {:>5.1} % (below the knee)",
        cfg.efficiency(3) * 100.0
    );

    // MDS create storm: the metadata cost of file-per-process.
    println!(
        "\nMDS create storm (one create per file, {:.0} creates/s):",
        1.0 / cfg.mds_create_s
    );
    for files in [768u64, 2304, 9216, 36864] {
        let mut pfs = Pfs::new(cfg.clone().without_jitter(), 1);
        let reqs: Vec<WriteRequest> = (0..files)
            .map(|c| WriteRequest::new(0.0, c, 0, FileSpec::private(c, true)))
            .collect();
        let phase = pfs.simulate_writes(&reqs);
        let last = phase
            .outcomes
            .iter()
            .map(|o| o.mds_done)
            .fold(0.0f64, f64::max);
        println!("  {files:>6} files → last create finishes at {last:>6.2} s");
    }

    // A single 495 MiB node file vs the same bytes as 11 per-core files
    // on one OST: the aggregation benefit in isolation.
    println!("\none OST, same 495 MiB of data:");
    let one_ost = cfg.clone().with_osts(1).without_jitter();
    let node_file = {
        let mut pfs = Pfs::new(one_ost.clone(), 2);
        pfs.simulate_writes(&[WriteRequest::new(
            0.0,
            0,
            495 << 20,
            FileSpec::private(0, true),
        )])
        .span()
    };
    let per_core = {
        let mut pfs = Pfs::new(one_ost, 2);
        let reqs: Vec<WriteRequest> = (0..11)
            .map(|c| WriteRequest::new(0.0, c, 45 << 20, FileSpec::private(c, true)))
            .collect();
        pfs.simulate_writes(&reqs).span()
    };
    println!("  1 node file (damaris)      : {node_file:>6.1} s");
    println!(
        "  11 per-core files (FPP)    : {per_core:>6.1} s  ({:.1}x slower)",
        per_core / node_file
    );
}
