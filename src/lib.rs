//! # Damaris-RS
//!
//! A Rust reproduction of **Damaris** — the dedicated-core I/O middleware for
//! large-scale HPC simulations described in *"Efficient I/O using Dedicated
//! Cores in Large-Scale HPC Simulations"* (Matthieu Dorier, IPDPS 2013 PhD
//! Forum) and the underlying IEEE Cluster 2012 paper.
//!
//! The headline idea: instead of having every core of an SMP node write its
//! own output synchronously (file-per-process) or participate in collective
//! two-phase I/O, **dedicate one core per node** to data management. Compute
//! cores publish variables into a node-local shared-memory segment (a single
//! memcpy, ~0.1 s) and post an event to a shared message queue; the dedicated
//! core drains the queue asynchronously, aggregates the node's blocks into
//! one file per node, and runs user plugins (HDF5 output, compression,
//! statistics, in-situ visualization) fully overlapped with the next compute
//! phase.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`shm`] — shared-memory segment, block allocator, message queue.
//! * [`mpi`] — `mini-mpi`, an in-process MPI-like runtime (thread ranks).
//! * [`xml`] — minimal XML parser + the Damaris configuration schema.
//! * [`codec`] — compression codecs used by the compression plugin.
//! * [`h5`] — `h5lite`, an HDF5-like hierarchical file format.
//! * [`core`] — the middleware itself: client API, dedicated-core server,
//!   plugins, iteration-skip policy, I/O schedulers, synchronous baselines.
//! * [`serve`] — the subscriber streaming tier: completed iterations served
//!   live over TCP to many concurrent consumers (`<serve listen="…"/>`).
//! * [`apps`] — CM1-like and Nek5000-like proxy applications.
//! * [`insitu`] — in-situ analysis kernels and the VisIt-style synchronous
//!   coupling used as the usability baseline.
//! * [`pfs`] — a queueing model of a Lustre-like parallel file system.
//! * [`cluster`] — a discrete-event simulator that replays the paper's
//!   evaluation at 576–9216 cores.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use damaris::core::prelude::*;
//!
//! let xml = r#"
//!   <simulation name="quickstart">
//!     <architecture>
//!       <dedicated cores="1"/>
//!       <buffer size="8388608"/>
//!       <queue capacity="256"/>
//!     </architecture>
//!     <data>
//!       <layout name="grid" type="f64" dimensions="16,16"/>
//!       <variable name="temperature" layout="grid"/>
//!     </data>
//!   </simulation>"#;
//!
//! let node = DamarisNode::builder()
//!     .config_str(xml).unwrap()
//!     .clients(3)
//!     .build().unwrap();
//!
//! let stats = std::sync::Arc::new(damaris::core::plugins::StatsPlugin::new());
//! node.register_plugin(stats.clone());
//!
//! let handles: Vec<_> = node.clients().map(|client| {
//!     std::thread::spawn(move || {
//!         let field = vec![300.15_f64; 16 * 16];
//!         for it in 0..4 {
//!             client.write("temperature", it, &field).unwrap();
//!             client.end_iteration(it).unwrap();
//!         }
//!         client.finalize().unwrap();
//!     })
//! }).collect();
//! for h in handles { h.join().unwrap(); }
//! node.shutdown().unwrap();
//! assert_eq!(stats.iterations_seen(), 4);
//! ```

pub use cluster_sim as cluster;
pub use codec;
pub use damaris_core as core;
pub use damaris_serve as serve;
pub use damaris_shm as shm;
pub use damaris_xml as xml;
pub use h5lite as h5;
pub use insitu;
pub use mini_mpi as mpi;
pub use pfs_sim as pfs;
pub use sim_apps as apps;
