#!/usr/bin/env python3
"""Fail CI when a benchmark JSON regresses against its committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json
                              [--threshold 0.25] [--strict] [--report-only]
                              [--bound "metric<=1.10"] [--bound "metric>=4.0"]

Both files must be records produced by the `damaris_bench` bench targets
(`BENCH_transport.json`, `BENCH_write_path.json`, …): an object with a
"samples" array of flat objects. Samples are matched on their identity
keys (strings and integers, e.g. allocator/transport + clients); floats
are metrics.

Gating tiers — absolute timings are machine-dependent (a committed
baseline usually comes from a different box than the CI runner), so:

* metrics ending in `_ratio` (within-run comparisons such as the
  size-class scaling factor) are machine-independent and always gated at
  THRESHOLD;
* absolute metrics (`…_ns…`, `…_seconds…` lower-better; `…_meps…`,
  `…_throughput…` higher-better) are gated only with `--strict` — use it
  when baseline and current run came from the same machine;
* tail latencies (`_p90`/`_p99`) and hit fractions (`_frac…`) are
  recorded for trend reading but never gated.

Missing samples and missing metrics (layout changes) always fail, so a
bench cannot silently drop coverage. Metrics measured as 0 in the
baseline are skipped. A file whose "samples" array carries no measured
metric at all (a bench that crashed mid-write, or an empty baseline)
makes every comparison vacuous: that is a hard failure in gating mode
and a loud stderr warning under --report-only.

`--bound "metric<=VAL"` / `--bound "metric>=VAL"` (repeatable) add
absolute acceptance bounds checked against CURRENT only — for
machine-independent invariants such as a deterministic compression
factor or a within-run overhead ratio, where the claim itself (not
drift from a baseline) is what CI must enforce. A bound whose metric
appears in no current sample fails, so a renamed metric cannot
silently disarm its gate.

`--report-only` prints every violation but always exits 0 — for gates
whose precondition the runner cannot meet (e.g. a parallel-scaling
bound on a single-core CI box), where the numbers are still worth a
line in the log.

Stdlib only; exit code 0 = pass, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("_ns", "_seconds", "_ratio")
HIGHER_IS_BETTER = ("_meps", "_throughput")
# Too scheduler/machine-sensitive to gate on at all.
UNGATED = ("_p90", "_p99", "_frac")


def is_metric(value):
    # JSON integers are identity coordinates (clients, producers, sizes);
    # measured values are emitted with decimals and parse as floats.
    return isinstance(value, float)


def sample_key(sample):
    return tuple(sorted((k, v) for k, v in sample.items() if not is_metric(v)))


def direction(metric, strict):
    if any(s in metric for s in UNGATED):
        return None
    if not strict and not metric.endswith("_ratio"):
        return None  # absolute metric, cross-machine comparison
    if any(s in metric for s in LOWER_IS_BETTER):
        return "lower"
    if any(s in metric for s in HIGHER_IS_BETTER):
        return "higher"
    return None  # uninterpreted metric: informational only


def parse_bound(spec):
    """Split "metric<=1.10" / "metric>=4.0" into (metric, op, limit)."""
    for op in ("<=", ">="):
        if op in spec:
            metric, _, limit = spec.partition(op)
            try:
                return metric.strip(), op, float(limit)
            except ValueError:
                break
    raise argparse.ArgumentTypeError(
        f"bound must look like 'metric<=1.10' or 'metric>=4.0', got {spec!r}"
    )


def check_bounds(bounds, samples, failures):
    for metric, op, limit in bounds:
        found = False
        for sample in samples:
            if metric not in sample:
                continue
            found = True
            val = sample[metric]
            ok = val <= limit if op == "<=" else val >= limit
            if not ok:
                ident = ", ".join(
                    f"{k}={v}" for k, v in sample_key(sample)
                )
                failures.append(
                    f"{ident}: bound violated: {metric} = {val:g}, "
                    f"required {op} {limit:g}"
                )
        if not found:
            failures.append(f"bound has no matching metric: {metric} {op} {limit:g}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare a bench JSON against its committed baseline."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also gate absolute metrics (same-machine baselines only)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print violations but exit 0 (gate precondition not met here)",
    )
    parser.add_argument(
        "--bound",
        action="append",
        default=[],
        type=parse_bound,
        metavar="METRIC<=VAL",
        help="absolute acceptance bound on the current JSON (repeatable)",
    )
    args = parser.parse_args(argv[1:])

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load bench JSON: {e}", file=sys.stderr)
        return 2

    # An empty sample set passes every per-sample check below by never
    # running any of them — catch that before it reads as a green gate.
    def has_metrics(samples):
        return any(is_metric(v) for s in samples for v in s.values())

    name = current.get("benchmark", args.current)
    vacuous = []
    if not has_metrics(current.get("samples", [])):
        vacuous.append(f"current '{args.current}' contains no measured samples")
    if not has_metrics(baseline.get("samples", [])):
        vacuous.append(f"baseline '{args.baseline}' contains no measured samples")
    if vacuous:
        for msg in vacuous:
            print(
                f"WARNING: {msg} — every regression check on '{name}' is vacuous",
                file=sys.stderr,
            )
        if not args.report_only:
            print(f"bench '{name}': empty sample set fails in gating mode")
            return 1

    base_by_key = {sample_key(s): s for s in baseline.get("samples", [])}
    cur_by_key = {sample_key(s): s for s in current.get("samples", [])}

    failures = []
    checked = 0
    for key, base in base_by_key.items():
        cur = cur_by_key.get(key)
        ident = ", ".join(f"{k}={v}" for k, v in key)
        if cur is None:
            failures.append(f"sample disappeared: {ident}")
            continue
        for metric, base_val in base.items():
            if not is_metric(base_val):
                continue
            if metric not in cur:
                # A renamed/dropped metric silently loses coverage the
                # same way a dropped sample would — fail loudly.
                failures.append(f"{ident}: metric disappeared: {metric}")
                continue
            sense = direction(metric, args.strict)
            if sense is None or base_val == 0:
                continue
            cur_val = cur[metric]
            delta = (
                (cur_val - base_val) / base_val
                if sense == "lower"
                else (base_val - cur_val) / base_val
            )
            checked += 1
            if delta > args.threshold:
                failures.append(
                    f"{ident}: {metric} {base_val:g} -> {cur_val:g} "
                    f"({delta * 100:+.0f}% worse, limit {args.threshold * 100:.0f}%)"
                )

    check_bounds(args.bound, current.get("samples", []), failures)
    checked += len(args.bound)

    if failures:
        print(f"bench regression in '{name}' ({len(failures)} failures):")
        for f in failures:
            print(f"  {f}")
        if args.report_only:
            print("report-only: violations listed above are not enforced here")
            return 0
        return 1
    print(
        f"bench '{name}': {checked} metrics within "
        f"{args.threshold * 100:.0f}% of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
