#!/usr/bin/env bash
# Run the damaris_shm stress tests under ThreadSanitizer.
#
# Needs nightly with the rust-src component (TSan instruments std via
# -Zbuild-std). If either is missing the script says so and exits 0, so
# it is safe to call from environments without the components (CI treats
# the step as report-only in that case).
#
# Usage: scripts/tsan.sh [extra cargo test args...]
set -u

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
  echo "tsan: nightly toolchain not installed; skipping (report-only)."
  exit 0
fi
if ! rustup component list --toolchain nightly --installed 2>/dev/null \
    | grep -q rust-src; then
  echo "tsan: rust-src component missing on nightly; skipping (report-only)."
  echo "      rustup component add --toolchain nightly rust-src"
  exit 0
fi

HOST=$(rustc -vV | sed -n 's/^host: //p')
echo "tsan: running damaris_shm tests with ThreadSanitizer on $HOST"
# halt_on_error so a race fails the run rather than scrolling past.
export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
exec cargo +nightly test -p damaris_shm \
  -Zbuild-std --target "$HOST" "$@"
