#!/usr/bin/env python3
"""Audit: every `unsafe` site in crates/ must carry a SAFETY comment.

Scans all Rust sources under crates/ (in-tree shims under crates/support/
included) for `unsafe` blocks, `unsafe fn` declarations, and
`unsafe impl` blocks, and fails (exit 1) listing every site that does not
have a `// SAFETY:` (or `Safety:`) comment either on the same line, in
the contiguous comment/attribute block immediately above it, or — for
`unsafe fn` — a `# Safety` section in its doc comment.

Run from the repo root:  python3 scripts/unsafe_audit.py
CI runs this on every push (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# `unsafe` as a code token. Excludes lint-config mentions such as
# `unsafe_op_in_unsafe_fn` via the word boundary and the attr filter below.
UNSAFE_RE = re.compile(r"\bunsafe\b")
SAFETY_RE = re.compile(r"(?://|/\*)[/!]?\s*SAFETY\b|#\s*Safety\b", re.IGNORECASE)

# How far above an unsafe site its justification may start: the whole
# contiguous run of comments/attributes is searched, so this only bounds
# degenerate files.
MAX_LOOKBACK = 40


def is_comment(line: str) -> bool:
    s = line.strip()
    return s.startswith("//") or s.startswith("/*") or s.startswith("*")


def is_attr_or_blank(line: str) -> bool:
    s = line.strip()
    return s == "" or s.startswith("#[") or s.startswith("#![")


# A code line that does not terminate its statement: the `unsafe` on the
# next line belongs to it, so the justification may sit above this line.
CONTINUATION_RE = re.compile(r"[=(,.&|+\-*/<>]\s*$")


def has_safety_above(lines: list[str], idx: int) -> bool:
    """Search the contiguous comment/attribute block above lines[idx]."""
    for back in range(1, MAX_LOOKBACK + 1):
        i = idx - back
        if i < 0:
            return False
        line = lines[i]
        if is_comment(line):
            if SAFETY_RE.search(line):
                return True
            continue
        if is_attr_or_blank(line):
            # Attributes sit between a doc comment and its item; blanks
            # end the block except between attrs.
            if line.strip() == "":
                return False
            continue
        # One SAFETY comment conventionally covers an adjacent group of
        # `unsafe impl` lines (e.g. Send + Sync for the same type).
        if line.strip().startswith("unsafe impl"):
            continue
        # The statement the `unsafe` belongs to starts higher up.
        if CONTINUATION_RE.search(line.rstrip()):
            continue
        return False
    return False


def audit_file(path: Path) -> list[tuple[int, str]]:
    lines = path.read_text(encoding="utf-8").splitlines()
    missing = []
    for idx, line in enumerate(lines):
        if is_comment(line):
            continue
        stripped = line.strip()
        # Lint configuration, not an unsafe site.
        if "unsafe_op_in_unsafe_fn" in stripped or "unsafe_code" in stripped:
            continue
        m = UNSAFE_RE.search(line)
        if not m:
            continue
        # `unsafe` inside a trailing comment only.
        comment_pos = line.find("//")
        if 0 <= comment_pos < m.start():
            continue
        if SAFETY_RE.search(line):  # same-line justification
            continue
        if has_safety_above(lines, idx):
            continue
        missing.append((idx + 1, stripped))
    return missing


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = 0
    sites = 0
    for path in sorted((root / "crates").rglob("*.rs")):
        if "target" in path.parts:
            continue
        text = path.read_text(encoding="utf-8")
        if "unsafe" not in text:
            continue
        missing = audit_file(path)
        sites += len(UNSAFE_RE.findall(text))
        for lineno, snippet in missing:
            rel = path.relative_to(root)
            print(f"{rel}:{lineno}: unsafe without SAFETY comment: {snippet}")
            failures += 1
    if failures:
        print(
            f"\nunsafe audit FAILED: {failures} site(s) lack a SAFETY comment.\n"
            "Add a `// SAFETY: <why the invariants hold>` comment directly\n"
            "above each (or a `# Safety` doc section on an `unsafe fn`)."
        )
        return 1
    print("unsafe audit passed: every unsafe site carries a SAFETY comment.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
