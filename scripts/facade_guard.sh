#!/usr/bin/env bash
# Policy guard: concurrency primitives in the migrated damaris_shm sources
# must go through the damaris_sync facade (crates/check), never through
# core/std atomics or parking_lot directly — otherwise the model checker
# silently stops seeing them. See README "Concurrency correctness".
#
# Run from the repo root: scripts/facade_guard.sh
set -u

MIGRATED=(
  crates/shm/src/spsc.rs
  crates/shm/src/queue.rs
  crates/shm/src/arena.rs
  crates/shm/src/segment.rs
  crates/shm/src/transport.rs
)

status=0
for f in "${MIGRATED[@]}"; do
  if grep -nE '(core|std)::sync::atomic|parking_lot|std::hint::spin_loop' "$f"; then
    echo "error: $f bypasses the damaris_sync facade (matches above)" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo >&2
  echo "Import atomics/Mutex/Condvar/spin_loop from damaris_sync instead," >&2
  echo "so new synchronization stays visible to the model checker." >&2
  exit 1
fi
echo "facade guard passed: migrated files use damaris_sync exclusively."
