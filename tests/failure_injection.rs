//! Integration: failure paths across crate boundaries — misconfigured
//! writes, failing plugins, corrupt files, shutdown misuse. The service
//! must degrade loudly but never hang or corrupt data.

use std::sync::Arc;

use damaris::core::plugins::{FnPlugin, H5Writer};
use damaris::core::prelude::*;
use damaris::h5::{FileReader, H5Error};

const XML: &str = r#"
<simulation name="faults">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="1048576"/>
    <queue capacity="32"/>
  </architecture>
  <data>
    <layout name="row" type="f64" dimensions="64"/>
    <variable name="u" layout="row"/>
  </data>
</simulation>"#;

#[test]
fn bad_writes_fail_fast_without_poisoning_the_session() {
    let node = DamarisNode::builder()
        .config_str(XML)
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    let client = node.client(0).expect("client");

    assert!(matches!(
        client.write("ghost", 0, &[1.0f64; 64]),
        Err(DamarisError::UnknownVariable(_))
    ));
    assert!(matches!(
        client.write("u", 0, &[1.0f64; 63]),
        Err(DamarisError::LayoutMismatch { .. })
    ));
    // The session is still healthy after both failures.
    assert_eq!(
        client.write("u", 0, &[1.0f64; 64]).expect("good write"),
        WriteStatus::Written
    );
    client.end_iteration(0).expect("end");
    client.finalize().expect("finalize");
    let report = node.shutdown().expect("shutdown");
    assert_eq!(report.iterations_completed, 1);
}

#[test]
fn failing_plugin_is_reported_but_not_fatal() {
    let node = DamarisNode::builder()
        .config_str(XML)
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    node.register_plugin(Arc::new(FnPlugin::new("faulty", |ctx| {
        if ctx.iteration % 2 == 0 {
            Err(format!("induced failure at {}", ctx.iteration))
        } else {
            Ok(())
        }
    })));
    let client = node.client(0).expect("client");
    for it in 0..4 {
        client.write("u", it, &[0.5f64; 64]).expect("write");
        client.end_iteration(it).expect("end");
    }
    client.finalize().expect("finalize");
    let report = node.shutdown().expect("shutdown");
    assert_eq!(
        report.iterations_completed, 4,
        "service survived the failures"
    );
    assert_eq!(report.plugin_errors.len(), 2);
    assert!(report.plugin_errors[0].contains("induced failure"));
}

#[test]
fn bad_plugin_parameter_surfaces_as_error() {
    let xml = XML.replace(
        "</simulation>",
        r#"<actions>
             <action name="dump" plugin="hdf5" event="end-of-iteration">
               <param name="codec" value="no-such-codec"/>
             </action>
           </actions></simulation>"#,
    );
    let node = DamarisNode::builder()
        .config_str(&xml)
        .expect("config")
        .clients(1)
        .output_dir(std::env::temp_dir().join("damaris-fault-codec"))
        .build()
        .expect("node");
    let client = node.client(0).expect("client");
    client.write("u", 0, &[1.0f64; 64]).expect("write");
    client.end_iteration(0).expect("end");
    client.finalize().expect("finalize");
    let report = node.shutdown().expect("shutdown");
    assert_eq!(report.plugin_errors.len(), 1);
    assert!(
        report.plugin_errors[0].contains("no-such-codec"),
        "{:?}",
        report.plugin_errors
    );
}

#[test]
fn corrupt_output_detected_on_read() {
    let dir = std::env::temp_dir().join(format!("damaris-fault-corrupt-{}", std::process::id()));
    let node = DamarisNode::builder()
        .config_str(&XML.replace(
            "</simulation>",
            r#"<actions><action name="dump" plugin="hdf5"/></actions></simulation>"#,
        ))
        .expect("config")
        .clients(1)
        .output_dir(&dir)
        .build()
        .expect("node");
    let h5 = Arc::new(H5Writer::new());
    node.register_plugin(h5.clone());
    let client = node.client(0).expect("client");
    client.write("u", 0, &[3.0f64; 64]).expect("write");
    client.end_iteration(0).expect("end");
    client.finalize().expect("finalize");
    node.shutdown().expect("shutdown");

    let path = h5.written()[0].path.clone();
    // Flip a byte in the trailer.
    let mut bytes = std::fs::read(&path).expect("read back");
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    std::fs::write(&path, &bytes).expect("write corruption");
    match FileReader::open(&path) {
        Err(H5Error::Corrupt(_)) => {}
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("corruption must be detected"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn double_shutdown_and_post_shutdown_writes_error() {
    // Declare the "snap" event so the post-shutdown signal actually posts
    // (undeclared event names are filtered at the client edge and never
    // reach the queue).
    let xml = XML.replace(
        "</simulation>",
        r#"<actions><action name="s" plugin="viz" event="snap"/></actions></simulation>"#,
    );
    let node = DamarisNode::builder()
        .config_str(&xml)
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    let client = node.client(0).expect("client");
    client.finalize().expect("finalize");
    node.shutdown().expect("first shutdown");
    assert!(matches!(
        node.shutdown(),
        Err(DamarisError::InvalidState(_))
    ));
    assert!(matches!(
        client.write("u", 0, &[0.0f64; 64]),
        Err(DamarisError::QueueClosed)
    ));
    assert!(matches!(
        client.end_iteration(0),
        Err(DamarisError::QueueClosed)
    ));
    assert!(matches!(
        client.signal("snap", 0),
        Err(DamarisError::QueueClosed)
    ));
}

#[test]
fn oversized_variable_rejected_at_configuration_time() {
    let xml = XML.replace("size=\"1048576\"", "size=\"256\"");
    assert!(matches!(
        DamarisNode::builder().config_str(&xml),
        Err(DamarisError::Config(_))
    ));
}
