//! Integration: the §V.C.1 backpressure behaviour on the real middleware —
//! a slow plugin, a small segment, and the two policies.

use std::sync::Arc;
use std::time::{Duration, Instant};

use damaris::core::plugins::FnPlugin;
use damaris::core::prelude::*;

fn config(mode: &str) -> String {
    format!(
        r#"<simulation name="pressure">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="131072"/>
               <queue capacity="8"/>
               <skip mode="{mode}" high-watermark="0.5"/>
             </architecture>
             <data>
               <layout name="slab" type="f64" dimensions="2048"/>
               <variable name="field" layout="slab"/>
             </data>
           </simulation>"#
    )
}

fn run(
    mode: &str,
    iterations: u64,
    plugin_ms: u64,
    compute_ms: u64,
) -> (f64, damaris::core::node::NodeReport) {
    let node = DamarisNode::builder()
        .config_str(&config(mode))
        .expect("config")
        .clients(2)
        .build()
        .expect("node");
    node.register_plugin(Arc::new(FnPlugin::new("slow", move |_| {
        std::thread::sleep(Duration::from_millis(plugin_ms));
        Ok(())
    })));
    // Real simulations advance in lockstep (the MPI timestep synchronizes
    // ranks), so model that with a per-iteration barrier. Without it,
    // free-running clients can skew further apart than the segment holds
    // (8 slabs here); in block mode the leader then owns every slot with
    // blocks of iterations that cannot complete without the laggard — a
    // genuine deadlock until the 60 s allocation timeout, seen on
    // single-core runners.
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let t0 = Instant::now();
    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let data = vec![2.5f64; 2048];
                for it in 0..iterations {
                    // Stand-in for the compute phase between dumps.
                    if compute_ms > 0 {
                        std::thread::sleep(Duration::from_millis(compute_ms));
                    }
                    barrier.wait();
                    client.write("field", it, &data).expect("write");
                    client.end_iteration(it).expect("end");
                }
                client.finalize().expect("finalize");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client");
    }
    let report = node.shutdown().expect("shutdown");
    (t0.elapsed().as_secs_f64(), report)
}

#[test]
fn drop_mode_skips_under_pressure_and_keeps_sim_fast() {
    let (wall, report) = run("drop-iteration", 60, 10, 0);
    assert!(
        report.skipped_client_iterations > 0,
        "slow plugin must force skips: {report:?}"
    );
    // All iterations still complete from the sim's point of view
    // (every end_iteration is acknowledged, data may be partial).
    assert_eq!(report.iterations_completed, 60);
    // The simulation never waits for the plugin: it finishes long before
    // 60 × 10 ms of serialized analysis would take.
    assert!(
        wall < 1.2,
        "drop mode must not serialize on the plugin: {wall:.2}s"
    );
}

#[test]
fn block_mode_loses_nothing() {
    let (_, report) = run("block", 30, 5, 0);
    assert_eq!(report.skipped_client_iterations, 0);
    assert_eq!(report.iterations_completed, 30);
}

#[test]
fn quiet_runs_never_skip_in_drop_mode() {
    // Fast plugin AND a real compute phase between dumps: the dedicated
    // core keeps up, so drop mode behaves exactly like block mode. (With
    // zero compute time an infinitely fast producer must skip — that case
    // is covered above.)
    let (_, report) = run("drop-iteration", 20, 0, 2);
    assert_eq!(report.skipped_client_iterations, 0);
    assert_eq!(report.iterations_completed, 20);
}

#[test]
fn occupancy_returns_to_zero_after_drain() {
    let node = DamarisNode::builder()
        .config_str(&config("drop-iteration"))
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    let client = node.client(0).expect("client");
    let data = vec![1.0f64; 2048];
    for it in 0..5 {
        client.write("field", it, &data).expect("write");
        client.end_iteration(it).expect("end");
    }
    client.finalize().expect("finalize");
    node.shutdown().expect("shutdown");
    assert_eq!(node.segment_occupancy(), 0.0, "all blocks reclaimed");
    assert_eq!(node.queue_pressure(), 0.0, "queue drained");
}
