//! Integration: the cluster model must keep reproducing the paper's
//! qualitative shape — who wins, by what factor, where the crossovers are.
//! (Exact calibration is asserted inside `cluster-sim`'s own tests; these
//! are the cross-crate contract.)

use damaris::cluster::{experiments, run, Platform, Strategy, Workload};

#[test]
fn headline_numbers_land_in_paper_bands() {
    let rows = experiments::e3_throughput(2, 7);
    let by_name = |n: &str| {
        rows.iter()
            .find(|r| r.strategy == n)
            .map(|r| r.throughput_gbps)
            .expect("strategy present")
    };
    let coll = by_name("collective");
    let fpp = by_name("file-per-process");
    let dam = by_name("damaris/greedy");
    // Paper: 0.5 / <1.7 / ~10 GB/s. Bands are generous: the jittered model
    // varies with seed, the ordering and rough factors must not.
    assert!((0.2..1.0).contains(&coll), "collective {coll:.2} GB/s");
    assert!((0.9..2.2).contains(&fpp), "fpp {fpp:.2} GB/s");
    assert!((7.0..13.0).contains(&dam), "damaris {dam:.2} GB/s");
    assert!(
        dam / coll > 10.0,
        "damaris/collective factor {:.1}",
        dam / coll
    );
    assert!(dam / fpp > 4.0, "damaris/fpp factor {:.1}", dam / fpp);
}

#[test]
fn speedup_band() {
    let speedup = experiments::e1_speedup(2, 11);
    assert!(
        (2.5..4.5).contains(&speedup),
        "paper 3.5x, model {speedup:.2}x"
    );
}

#[test]
fn jitter_collapse() {
    let rows = experiments::e2_variability(2304, 2, 13);
    let damaris = rows
        .iter()
        .find(|r| r.strategy.starts_with("damaris"))
        .expect("damaris row");
    let fpp = rows
        .iter()
        .find(|r| r.strategy == "file-per-process")
        .expect("fpp row");
    assert!(damaris.spread < 1.01, "damaris writes are constant-time");
    assert!(
        fpp.max / damaris.max > 20.0,
        "baselines are orders of magnitude worse"
    );
}

#[test]
fn idle_band_across_scales() {
    for (ranks, idle) in experiments::e4_idle_time(2, 17) {
        assert!(
            (0.80..1.0).contains(&idle),
            "idle at {ranks} cores: {:.1} % (paper: 92–99 %)",
            idle * 100.0
        );
    }
}

#[test]
fn scheduling_improves_throughput() {
    let rows = experiments::e6_scheduling(2, 19);
    let greedy = rows
        .iter()
        .find(|r| r.scheduler == "greedy")
        .expect("greedy")
        .throughput_gbps;
    let balanced = rows
        .iter()
        .find(|r| r.scheduler == "balanced")
        .expect("balanced")
        .throughput_gbps;
    assert!(
        balanced > greedy * 1.1,
        "balanced {balanced:.1} vs greedy {greedy:.1}"
    );
}

#[test]
fn insitu_shape() {
    let rows = experiments::e7_insitu(2, 1.0, 23);
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    assert!(
        last.sync_overhead_s > first.sync_overhead_s,
        "sync coupling degrades with scale"
    );
    assert!(last.damaris_overhead_s < first.sync_overhead_s / 5.0);
}

#[test]
fn damaris_weak_scaling_flat_while_collective_grows() {
    let p = Platform::kraken().without_jitter();
    let w = Workload::cm1(2);
    let damaris_small = run(&p, &w, 576, Strategy::damaris_greedy(), 29);
    let damaris_large = run(&p, &w, 9216, Strategy::damaris_greedy(), 29);
    let coll_small = run(&p, &w, 576, Strategy::Collective, 29);
    let coll_large = run(&p, &w, 9216, Strategy::Collective, 29);
    assert!(
        damaris_large.wall_seconds / damaris_small.wall_seconds < 1.1,
        "damaris: {:.0}s → {:.0}s",
        damaris_small.wall_seconds,
        damaris_large.wall_seconds
    );
    assert!(
        coll_large.wall_seconds / coll_small.wall_seconds > 2.0,
        "collective: {:.0}s → {:.0}s",
        coll_small.wall_seconds,
        coll_large.wall_seconds
    );
}
