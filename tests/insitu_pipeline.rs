//! Integration: CM1 proxy → Damaris → in-situ analysis plugin, checking
//! that the analysis sees physically meaningful data.

use std::sync::Arc;

use damaris::apps::{Cm1, Cm1Config, ProxyApp};
use damaris::core::plugins::StatsPlugin;
use damaris::core::prelude::*;
use damaris::insitu::InSituPlugin;

const NX: usize = 24;
const NY: usize = 24;
const NZ: usize = 16;

/// The simulation loop both tests drive, written once against the
/// [`SimHandle`] facade (the same function would run a process-mode rank
/// unchanged).
fn run_sim<H: SimHandle>(h: &mut H, steps: u64) -> ClientStats {
    let mut sim = Cm1::new(Cm1Config {
        nx: NX,
        ny: NY,
        nz: NZ,
        ..Default::default()
    });
    for it in 0..steps {
        sim.step();
        h.write("theta", it, sim.field("theta").expect("theta"))
            .expect("write");
        h.write("w", it, sim.field("w").expect("w")).expect("write");
        h.end_iteration(it).expect("end");
    }
    h.finalize().expect("finalize");
    h.stats()
}

fn config() -> String {
    format!(
        r#"<simulation name="cm1-insitu">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="33554432"/>
               <queue capacity="128"/>
             </architecture>
             <data>
               <layout name="vol" type="f64" dimensions="{NZ},{NY},{NX}"/>
               <variable name="theta" layout="vol" unit="K"/>
               <variable name="w" layout="vol" unit="m/s"/>
             </data>
             <actions>
               <action name="viz" plugin="insitu" event="end-of-iteration">
                 <param name="iso_fraction" value="0.5"/>
               </action>
               <action name="summary" plugin="stats" event="end-of-iteration"/>
             </actions>
           </simulation>"#
    )
}

#[test]
fn analysis_tracks_the_simulation() {
    const STEPS: u64 = 6;
    let node = DamarisNode::builder()
        .config_str(&config())
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    let viz = Arc::new(InSituPlugin::new());
    let stats = Arc::new(StatsPlugin::new());
    node.register_plugin(viz.clone());
    node.register_plugin(stats.clone());

    let client = node.client(0).expect("client");
    let worker = std::thread::spawn(move || {
        let mut h = Damaris::threads(client);
        run_sim(&mut h, STEPS);
    });
    worker.join().expect("sim thread");
    let report = node.shutdown().expect("shutdown");
    assert!(
        report.plugin_errors.is_empty(),
        "{:?}",
        report.plugin_errors
    );

    // Analysis ran for every step.
    let records = viz.records();
    assert_eq!(records.len(), STEPS as usize);
    for r in &records {
        // Two 3-D variables analyzed per iteration.
        assert_eq!(r.isosurfaces.len(), 2, "iteration {}", r.iteration);
        assert_eq!(r.image_means.len(), 2);
        // The warm bubble's theta isosurface at mid-range must exist.
        let theta_iso = r
            .isosurfaces
            .iter()
            .find(|(tag, _)| tag.starts_with("theta"))
            .map(|(_, census)| *census)
            .expect("theta analyzed");
        assert!(
            theta_iso.active_cells > 0,
            "bubble surface missing at iteration {}",
            r.iteration
        );
    }

    // Statistics agree with physics: theta stays near the base state and
    // the updraft strengthens over the early steps.
    let first_w = stats.summary(0, "w").expect("w stats");
    let last_w = stats.summary(STEPS - 1, "w").expect("w stats");
    assert!(last_w.max > first_w.max, "updraft should strengthen");
    let theta = stats.summary(STEPS - 1, "theta").expect("theta stats");
    assert!(
        (299.0..305.0).contains(&theta.mean),
        "theta mean {:.2}",
        theta.mean
    );
}

#[test]
fn analysis_cost_stays_off_the_write_path() {
    // Writes must cost shared-memory time even while the dedicated core
    // crunches isosurfaces — the whole point of the architecture.
    const STEPS: u64 = 4;
    let node = DamarisNode::builder()
        .config_str(&config())
        .expect("config")
        .clients(1)
        .build()
        .expect("node");
    node.register_plugin(Arc::new(InSituPlugin::new()));
    let client = node.client(0).expect("client");
    let stats = std::thread::spawn(move || {
        let mut h = Damaris::threads(client);
        run_sim(&mut h, STEPS)
    })
    .join()
    .expect("sim thread");
    node.shutdown().expect("shutdown");
    let worst = stats.max_write_seconds;
    // A 24×24×16 f64 block is 73 KB; its memcpy is microseconds. Allow
    // generous scheduler noise; anything near the analysis cost (ms+)
    // would mean the write path is coupled to the plugin.
    assert!(
        worst < 0.02,
        "write should be memcpy-fast, worst {worst:.4}s"
    );
}
