//! End-to-end integration: a full Damaris session on real threads and a
//! real file system, verified by reading the output back; plus content
//! equivalence between Damaris node files and both synchronous baselines.

use std::sync::Arc;

use damaris::core::baseline;
use damaris::core::plugins::H5Writer;
use damaris::core::prelude::*;
use damaris::h5::FileReader;
use damaris::mpi::World;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("damaris-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn config(n: usize) -> String {
    format!(
        r#"<simulation name="e2e">
             <architecture>
               <dedicated cores="1"/>
               <buffer size="8388608"/>
               <queue capacity="128"/>
             </architecture>
             <data>
               <layout name="row" type="f64" dimensions="{n}"/>
               <variable name="u" layout="row" unit="m/s"/>
               <variable name="theta" layout="row" unit="K"/>
             </data>
             <actions>
               <action name="dump" plugin="hdf5" event="end-of-iteration"/>
             </actions>
           </simulation>"#
    )
}

/// The deterministic per-rank data every path writes.
fn rank_data(rank: usize, it: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let u: Vec<f64> = (0..n)
        .map(|i| (rank * 1000 + i) as f64 + it as f64 * 0.5)
        .collect();
    let theta: Vec<f64> = (0..n).map(|i| 300.0 + (rank + i) as f64 * 0.25).collect();
    (u, theta)
}

#[test]
fn damaris_session_files_verified_by_reader() {
    const N: usize = 256;
    const CLIENTS: usize = 4;
    const ITERATIONS: u64 = 3;
    let dir = tmpdir("session");
    let node = DamarisNode::builder()
        .config_str(&config(N))
        .expect("config")
        .clients(CLIENTS)
        .node_id(7)
        .output_dir(&dir)
        .build()
        .expect("node");
    let h5 = Arc::new(H5Writer::new());
    node.register_plugin(h5.clone());

    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            std::thread::spawn(move || {
                for it in 0..ITERATIONS {
                    let (u, theta) = rank_data(client.id(), it, N);
                    assert_eq!(client.write("u", it, &u).expect("u"), WriteStatus::Written);
                    assert_eq!(
                        client.write("theta", it, &theta).expect("theta"),
                        WriteStatus::Written
                    );
                    client.end_iteration(it).expect("end");
                }
                client.finalize().expect("finalize");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let report = node.shutdown().expect("shutdown");
    assert_eq!(report.iterations_completed, ITERATIONS);
    assert!(
        report.plugin_errors.is_empty(),
        "{:?}",
        report.plugin_errors
    );

    // One file per iteration, each holding every client's blocks.
    let written = h5.written();
    assert_eq!(written.len(), ITERATIONS as usize);
    for it in 0..ITERATIONS {
        let path = dir.join(format!("e2e_node7_it{it:06}.dh5"));
        let mut reader = FileReader::open(&path).expect("file readable");
        assert_eq!(
            reader.attr("", "iteration").and_then(|a| a.as_i64()),
            Some(it as i64)
        );
        for rank in 0..CLIENTS {
            let (u, theta) = rank_data(rank, it, N);
            assert_eq!(
                reader.read_pod::<f64>(&format!("u/rank{rank}")).expect("u"),
                u
            );
            assert_eq!(
                reader
                    .read_pod::<f64>(&format!("theta/rank{rank}"))
                    .expect("theta"),
                theta
            );
            assert_eq!(
                reader
                    .attr(&format!("u/rank{rank}"), "unit")
                    .and_then(|a| a.as_str()),
                Some("m/s")
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_three_paths_persist_identical_values() {
    const N: usize = 128;
    const RANKS: usize = 4;
    let dir = tmpdir("equivalence");

    // Damaris path.
    {
        let node = DamarisNode::builder()
            .config_str(&config(N))
            .expect("config")
            .clients(RANKS)
            .output_dir(dir.join("damaris"))
            .build()
            .expect("node");
        let handles: Vec<_> = node
            .clients()
            .map(|client| {
                std::thread::spawn(move || {
                    let (u, theta) = rank_data(client.id(), 0, N);
                    client.write("u", 0, &u).expect("u");
                    client.write("theta", 0, &theta).expect("theta");
                    client.end_iteration(0).expect("end");
                    client.finalize().expect("finalize");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
        node.shutdown().expect("shutdown");
    }

    // Baselines over mini-mpi.
    let d2 = dir.clone();
    World::run(RANKS, move |comm| {
        let (u, theta) = rank_data(comm.rank(), 0, N);
        let vars: Vec<(&str, &[f64])> = vec![("u", &u), ("theta", &theta)];
        baseline::file_per_process(comm, &d2.join("fpp"), "e2e", 0, &vars).expect("fpp");
        baseline::collective(comm, &d2.join("coll"), "e2e", 0, &vars, 2).expect("collective");
    });

    // Compare all three representations value for value.
    let mut damaris =
        FileReader::open(dir.join("damaris/e2e_node0_it000000.dh5")).expect("damaris file");
    let mut shared =
        FileReader::open(dir.join("coll/e2e_shared_it000000.dh5")).expect("shared file");
    for rank in 0..RANKS {
        let mut own = FileReader::open(dir.join(format!("fpp/e2e_rank{rank:05}_it000000.dh5")))
            .expect("fpp file");
        for var in ["u", "theta"] {
            let from_fpp = own.read_pod::<f64>(var).expect("fpp data");
            let from_damaris = damaris
                .read_pod::<f64>(&format!("{var}/rank{rank}"))
                .expect("damaris data");
            let from_shared = shared
                .read_pod::<f64>(&format!("{var}/rank{rank}"))
                .expect("shared data");
            assert_eq!(
                from_fpp, from_damaris,
                "{var} rank {rank}: damaris diverged"
            );
            assert_eq!(
                from_fpp, from_shared,
                "{var} rank {rank}: collective diverged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_nodes_write_disjoint_files() {
    const N: usize = 64;
    let dir = tmpdir("multinode");
    let mut nodes = Vec::new();
    for node_id in 0..2 {
        let node = DamarisNode::builder()
            .config_str(&config(N))
            .expect("config")
            .clients(2)
            .node_id(node_id)
            .output_dir(&dir)
            .build()
            .expect("node");
        nodes.push(node);
    }
    let mut handles = Vec::new();
    for node in &nodes {
        for client in node.clients() {
            handles.push(std::thread::spawn(move || {
                let (u, theta) = rank_data(client.id(), 0, N);
                client.write("u", 0, &u).expect("u");
                client.write("theta", 0, &theta).expect("theta");
                client.end_iteration(0).expect("end");
                client.finalize().expect("finalize");
            }));
        }
    }
    for h in handles {
        h.join().expect("client");
    }
    for node in &nodes {
        node.shutdown().expect("shutdown");
    }
    // One file per node — "the output of dedicated cores can be easily
    // post-processed" (a handful of node files, not one per rank).
    for node_id in 0..2 {
        let path = dir.join(format!("e2e_node{node_id}_it000000.dh5"));
        let reader = FileReader::open(&path).expect("node file exists");
        assert_eq!(
            reader.list(""),
            vec![("theta".to_string(), false), ("u".to_string(), false)]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_copy_path_equals_copy_path() {
    const N: usize = 128;
    let dir = tmpdir("zerocopy");
    let node = DamarisNode::builder()
        .config_str(&config(N))
        .expect("config")
        .clients(2)
        .output_dir(&dir)
        .build()
        .expect("node");
    let h5 = Arc::new(H5Writer::new());
    node.register_plugin(h5.clone());
    let handles: Vec<_> = node
        .clients()
        .map(|client| {
            std::thread::spawn(move || {
                let (u, theta) = rank_data(client.id(), 0, N);
                if client.id() == 0 {
                    // Copy path.
                    client.write("u", 0, &u).expect("u");
                    client.write("theta", 0, &theta).expect("theta");
                } else {
                    // Zero-copy path: fill shared memory in place.
                    let mut w = client.alloc("u", 0).expect("alloc u");
                    w.fill_pod(&u);
                    w.commit().expect("commit u");
                    let mut w = client.alloc("theta", 0).expect("alloc theta");
                    w.fill_pod(&theta);
                    w.commit().expect("commit theta");
                }
                client.end_iteration(0).expect("end");
                client.finalize().expect("finalize");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client");
    }
    node.shutdown().expect("shutdown");
    let mut reader = FileReader::open(dir.join("e2e_node0_it000000.dh5")).expect("file");
    for rank in 0..2 {
        let (u, _) = rank_data(rank, 0, N);
        assert_eq!(
            reader.read_pod::<f64>(&format!("u/rank{rank}")).expect("u"),
            u
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
